//! Structured span/event tracing for the verification engines.
//!
//! The stack's only window into a run used to be the final
//! [`EngineStats`](../mc/struct.EngineStats.html) blob — a stuck PDR
//! generalization, a portfolio entrant that never got cancelled and a
//! scheduler group starving behind the in-flight cap were all
//! indistinguishable from "still working".  This crate adds a lightweight,
//! deterministic instrumentation layer:
//!
//! * [`Telemetry`] — a cheap, cloneable handle the engines thread through
//!   their call stacks.  A disabled handle ([`Telemetry::off`], the
//!   default) is a single `Option` check per call site: no allocation, no
//!   formatting, no lock.
//! * [`TelemetrySink`] — the consumer trait.  [`MemorySink`] records into
//!   a vector (tests, batch export), [`JsonlSink`] streams newline-
//!   delimited JSON (`itpseq-trace/v1`) to any writer.
//! * [`write_chrome_trace`] — renders recorded events in the Chrome
//!   trace-event format, so a portfolio race or a parallel-PDR run opens
//!   in [Perfetto](https://ui.perfetto.dev) / `chrome://tracing` as named
//!   per-entrant tracks.
//! * [`report`] — span-tree analytics over a recorded stream: per-track
//!   aggregate timings, counter rates, portfolio wasted-work attribution
//!   and a CI-gateable baseline (`itpseq-report/v1`), consumed by the
//!   `trace-report` binary.
//! * [`folded`] — inferno-compatible collapsed-stack export for
//!   flamegraphs.
//!
//! # Event model
//!
//! Every [`Event`] carries a monotonic per-run sequence number (the
//! determinism anchor: at `threads = 1` the sequence of structural fields
//! is identical across runs), a microsecond timestamp relative to the
//! handle's creation, a *track* (one timeline in the trace viewer — e.g.
//! one portfolio entrant), a name and a kind:
//!
//! * [`EventKind::Begin`] / [`EventKind::End`] — a span.  Spans are
//!   emitted through the RAII [`Span`] guard so early returns still close
//!   them, and must nest properly *within a track*.
//! * [`EventKind::Instant`] — a point marker (entrant won, property
//!   retired, fixpoint hit).
//! * [`EventKind::Counter`] — a progress sample (conflicts, decisions,
//!   propagations, restarts so far).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use telemetry::{ArgValue, MemorySink, Telemetry};
//!
//! let sink = Arc::new(MemorySink::new());
//! let telemetry = Telemetry::new(sink.clone());
//! {
//!     let _run = telemetry.span("run");
//!     telemetry.instant_args("bound", || vec![("k", ArgValue::U64(3))]);
//! } // the guard closes the span here
//! let events = sink.snapshot();
//! assert_eq!(events.len(), 3); // Begin, Instant, End
//! assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
//! ```

pub mod folded;
pub mod report;

use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema identifier written as the header line of every JSONL trace.
pub const TRACE_SCHEMA: &str = "itpseq-trace/v1";

/// A value attached to an event under a named key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned counter or index.
    U64(u64),
    /// A label (engine name, verdict kind, stop reason, ...).
    Str(String),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(n) => write!(f, "{n}"),
            ArgValue::Str(s) => f.write_str(s),
        }
    }
}

/// Event payload: named values, in emission order.
pub type Args = Vec<(&'static str, ArgValue)>;

/// What an [`Event`] marks (the Chrome trace-event phase).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens (`ph: "B"`).
    Begin,
    /// A span closes (`ph: "E"`).
    End,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A progress sample (`ph: "C"`).
    Counter,
}

impl EventKind {
    /// The single-letter Chrome trace-event phase code.
    pub fn phase(self) -> &'static str {
        match self {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        }
    }
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotonic per-run sequence number; the total order of emission
    /// and the determinism anchor (timestamps vary between runs, `seq`
    /// ordering at `threads = 1` does not).
    pub seq: u64,
    /// Microseconds since the [`Telemetry`] handle was created.
    pub ts_us: u64,
    /// The timeline this event belongs to (one named track per portfolio
    /// entrant / scheduler backend in the trace viewer).
    pub track: Arc<str>,
    /// Event name (span or marker label).
    pub name: String,
    /// Span begin/end, instant marker or counter sample.
    pub kind: EventKind,
    /// Named payload values.
    pub args: Args,
}

/// Consumer of trace events.
///
/// Implementations must be cheap and non-blocking where possible: sinks
/// are called from inside engine loops (though never from the innermost
/// SAT propagation loop — solver progress arrives as periodic
/// [`EventKind::Counter`] samples).
pub trait TelemetrySink: Send + Sync {
    /// Records one event.  Events arrive in `seq` order per handle when
    /// the producing run is single-threaded; concurrent producers (a
    /// portfolio race) interleave tracks but each still carries its
    /// globally unique `seq`.
    fn record(&self, event: Event);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

struct Inner {
    sink: Arc<dyn TelemetrySink>,
    seq: AtomicU64,
    epoch: Instant,
}

/// A cheap, cloneable tracing handle.
///
/// The disabled handle ([`Telemetry::off`], also `Default`) reduces every
/// call site to a single `None` check — argument closures are never
/// invoked, nothing allocates.  Clones share the sink, the sequence
/// counter and the epoch; [`Telemetry::scoped`] re-labels the track so
/// concurrent subsystems (portfolio entrants, scheduler backends) render
/// as separate timelines.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    track: Arc<str>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::off()
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.inner.is_some() {
            write!(f, "Telemetry(on, track={:?})", self.track)
        } else {
            f.write_str("Telemetry(off)")
        }
    }
}

/// Handles are equal when they feed the same sink (or are both
/// disabled) and label the same track — the notion of "same
/// configuration" that keeps `Options: PartialEq` meaningful.
impl PartialEq for Telemetry {
    fn eq(&self, other: &Telemetry) -> bool {
        let same_sink = match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        same_sink && self.track == other.track
    }
}

impl Telemetry {
    /// The disabled handle: every emission is a no-op.
    pub fn off() -> Telemetry {
        Telemetry {
            inner: None,
            track: Arc::from("main"),
        }
    }

    /// A handle recording into `sink`, on the default track `"main"`.
    pub fn new(sink: Arc<dyn TelemetrySink>) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                sink,
                seq: AtomicU64::new(0),
                epoch: Instant::now(),
            })),
            track: Arc::from("main"),
        }
    }

    /// Returns `true` when events are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The track label events from this handle carry.
    pub fn track(&self) -> &str {
        &self.track
    }

    /// A clone of this handle that emits onto the track `track`
    /// (sharing the sink, sequence counter and epoch).  The portfolio
    /// hands each entrant `scoped(entrant_name)` so the race renders as
    /// parallel named timelines.
    pub fn scoped(&self, track: &str) -> Telemetry {
        Telemetry {
            inner: self.inner.clone(),
            track: Arc::from(track),
        }
    }

    fn emit(&self, kind: EventKind, name: &str, args: Args) {
        if let Some(inner) = &self.inner {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            let ts_us = inner.epoch.elapsed().as_micros() as u64;
            inner.sink.record(Event {
                seq,
                ts_us,
                track: self.track.clone(),
                name: name.to_string(),
                kind,
                args,
            });
        }
    }

    /// Opens a span; the returned guard closes it on drop (early returns
    /// included).
    pub fn span(&self, name: &str) -> Span {
        self.span_args(name, Vec::new)
    }

    /// Opens a span with arguments; `args` is only invoked when the
    /// handle is enabled.
    pub fn span_args(&self, name: &str, args: impl FnOnce() -> Args) -> Span {
        if self.inner.is_none() {
            return Span { owner: None };
        }
        self.emit(EventKind::Begin, name, args());
        Span {
            owner: Some((self.clone(), name.to_string())),
        }
    }

    /// Emits a point-in-time marker.
    pub fn instant(&self, name: &str) {
        self.instant_args(name, Vec::new);
    }

    /// Emits a point-in-time marker with arguments; `args` is only
    /// invoked when the handle is enabled.
    pub fn instant_args(&self, name: &str, args: impl FnOnce() -> Args) {
        if self.inner.is_some() {
            self.emit(EventKind::Instant, name, args());
        }
    }

    /// Emits a progress sample; `args` is only invoked when the handle
    /// is enabled.
    pub fn counter(&self, name: &str, args: impl FnOnce() -> Args) {
        if self.inner.is_some() {
            self.emit(EventKind::Counter, name, args());
        }
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// RAII guard of an open span: emits the matching [`EventKind::End`]
/// when dropped.
#[must_use = "dropping the guard immediately closes the span"]
pub struct Span {
    owner: Option<(Telemetry, String)>,
}

impl Span {
    /// Closes the span now (equivalent to dropping the guard).
    pub fn end(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((telemetry, name)) = self.owner.take() {
            telemetry.emit(EventKind::End, &name, Vec::new());
        }
    }
}

/// A sink that records events into memory — the test sink, and the
/// staging buffer behind batch exporters ([`write_chrome_trace`]).
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TelemetrySink for MemorySink {
    fn record(&self, event: Event) {
        self.events.lock().unwrap().push(event);
    }
}

/// Bytes of formatted lines a [`JsonlSink`] accumulates before handing
/// them to the writer in one call.
const JSONL_BUFFER_LIMIT: usize = 32 * 1024;

/// A sink that streams events as newline-delimited JSON
/// (`itpseq-trace/v1`): a header line, then one object per event.
///
/// Lines are batched in an internal buffer and written out once it
/// crosses a 32 KiB limit, on [`TelemetrySink::flush`], and on
/// drop — an engine loop never pays a write syscall per event, and a
/// streaming consumer (the future daemon) sees whole lines only.
pub struct JsonlSink {
    state: Mutex<JsonlState>,
}

struct JsonlState {
    writer: Box<dyn Write + Send>,
    buffer: String,
}

impl JsonlState {
    /// Hands the accumulated lines to the writer.  A full disk mid-trace
    /// must not take the verification run down with it, so errors are
    /// swallowed (the final flush in `Drop` surfaces nothing either, by
    /// the same argument).
    fn drain(&mut self) {
        if !self.buffer.is_empty() {
            let _ = self.writer.write_all(self.buffer.as_bytes());
            self.buffer.clear();
        }
    }
}

impl JsonlSink {
    /// Streams to an arbitrary writer, emitting the schema header line
    /// immediately (so even an empty trace identifies itself).
    pub fn new(mut writer: Box<dyn Write + Send>) -> io::Result<JsonlSink> {
        writeln!(writer, "{{\"schema\":\"{TRACE_SCHEMA}\"}}")?;
        Ok(JsonlSink {
            state: Mutex::new(JsonlState {
                writer,
                buffer: String::with_capacity(JSONL_BUFFER_LIMIT + 256),
            }),
        })
    }

    /// Creates (truncating) the file at `path` and streams to it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        JsonlSink::new(Box::new(File::create(path)?))
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, event: Event) {
        let line = event_to_jsonl(&event);
        let mut state = self.state.lock().unwrap();
        state.buffer.push_str(&line);
        state.buffer.push('\n');
        if state.buffer.len() >= JSONL_BUFFER_LIMIT {
            state.drain();
        }
    }

    fn flush(&self) {
        let mut state = self.state.lock().unwrap();
        state.drain();
        let _ = state.writer.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut state) = self.state.lock() {
            state.drain();
            let _ = state.writer.flush();
        }
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn args_json(args: &Args) -> String {
    let fields: Vec<String> = args
        .iter()
        .map(|(key, value)| match value {
            ArgValue::U64(n) => format!("\"{key}\":{n}"),
            ArgValue::Str(s) => format!("\"{key}\":\"{}\"", json_escape(s)),
        })
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// The `itpseq-trace/v1` JSONL line of one event (no trailing newline).
pub fn event_to_jsonl(event: &Event) -> String {
    format!(
        "{{\"seq\":{},\"ts_us\":{},\"track\":\"{}\",\"ph\":\"{}\",\"name\":\"{}\",\"args\":{}}}",
        event.seq,
        event.ts_us,
        json_escape(&event.track),
        event.kind.phase(),
        json_escape(&event.name),
        args_json(&event.args)
    )
}

/// Writes a full `itpseq-trace/v1` JSONL document (header plus one line
/// per event) — the batch counterpart of [`JsonlSink`].
pub fn write_jsonl(events: &[Event], writer: &mut impl Write) -> io::Result<()> {
    writeln!(writer, "{{\"schema\":\"{TRACE_SCHEMA}\"}}")?;
    for event in events {
        writeln!(writer, "{}", event_to_jsonl(event))?;
    }
    Ok(())
}

/// Writes the events as a Chrome trace-event JSON document that loads in
/// Perfetto / `chrome://tracing`.
///
/// Each distinct track becomes a named thread (tid assigned in order of
/// first appearance), so a portfolio race renders as one timeline per
/// entrant with the begin/end spans nested and the instant markers
/// (start/cancel/win) pinned at their emission times.
pub fn write_chrome_trace(events: &[Event], writer: &mut impl Write) -> io::Result<()> {
    let mut tracks: Vec<Arc<str>> = Vec::new();
    let mut entries: Vec<String> = Vec::new();
    for event in events {
        let tid = match tracks.iter().position(|t| *t == event.track) {
            Some(i) => i + 1,
            None => {
                tracks.push(event.track.clone());
                let tid = tracks.len();
                entries.push(format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    json_escape(&event.track)
                ));
                tid
            }
        };
        let name = json_escape(&event.name);
        let ts = event.ts_us;
        entries.push(match event.kind {
            EventKind::Begin => format!(
                "{{\"ph\":\"B\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\",\
                 \"args\":{}}}",
                args_json(&event.args)
            ),
            EventKind::End => {
                format!("{{\"ph\":\"E\",\"pid\":1,\"tid\":{tid},\"ts\":{ts}}}")
            }
            EventKind::Instant => format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\",\
                 \"s\":\"t\",\"args\":{}}}",
                args_json(&event.args)
            ),
            EventKind::Counter => {
                // Chrome counter tracks plot numbers only; labels would
                // corrupt the series, so keep the numeric samples.
                let numeric: Args = event
                    .args
                    .iter()
                    .filter(|(_, v)| matches!(v, ArgValue::U64(_)))
                    .cloned()
                    .collect();
                format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\",\
                     \"args\":{}}}",
                    args_json(&numeric)
                )
            }
        });
    }
    writeln!(writer, "{{\"traceEvents\":[")?;
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        writeln!(writer, "{entry}{comma}")?;
    }
    writeln!(writer, "]}}")
}

/// Asserts the span tree of `events` is well-formed: every
/// [`EventKind::End`] matches the innermost open [`EventKind::Begin`] of
/// its track, and no span stays open.  Returns the number of complete
/// spans, or a description of the first violation.
///
/// This is the structural invariant the trace viewers rely on; the
/// telemetry tests check it on every engine.
pub fn check_span_nesting(events: &[Event]) -> Result<usize, String> {
    let mut open: Vec<(Arc<str>, String)> = Vec::new();
    let mut complete = 0;
    for event in events {
        match event.kind {
            EventKind::Begin => open.push((event.track.clone(), event.name.clone())),
            EventKind::End => {
                let innermost = open
                    .iter()
                    .rposition(|(track, _)| *track == event.track)
                    .ok_or_else(|| {
                        format!(
                            "seq {}: end of \"{}\" on track \"{}\" with no open span",
                            event.seq, event.name, event.track
                        )
                    })?;
                let (_, name) = open.remove(innermost);
                if name != event.name {
                    return Err(format!(
                        "seq {}: end of \"{}\" on track \"{}\" but innermost open span is \"{}\"",
                        event.seq, event.name, event.track, name
                    ));
                }
                complete += 1;
            }
            EventKind::Instant | EventKind::Counter => {}
        }
    }
    if let Some((track, name)) = open.first() {
        return Err(format!("span \"{name}\" on track \"{track}\" never closed"));
    }
    Ok(complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recording() -> (Arc<MemorySink>, Telemetry) {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        (sink, telemetry)
    }

    #[test]
    fn disabled_handle_is_inert_and_never_builds_args() {
        let telemetry = Telemetry::off();
        assert!(!telemetry.is_enabled());
        let span = telemetry.span_args("run", || panic!("args built while disabled"));
        telemetry.instant_args("marker", || panic!("args built while disabled"));
        telemetry.counter("progress", || panic!("args built while disabled"));
        drop(span);
        telemetry.flush();
    }

    #[test]
    fn sequence_numbers_are_monotonic_across_scoped_clones() {
        let (sink, telemetry) = recording();
        let scoped = telemetry.scoped("worker");
        telemetry.instant("a");
        scoped.instant("b");
        telemetry.instant("c");
        let events = sink.snapshot();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(&*events[1].track, "worker");
        assert_eq!(&*events[0].track, "main");
    }

    #[test]
    fn span_guard_closes_on_early_return() {
        let (sink, telemetry) = recording();
        fn inner(telemetry: &Telemetry, bail: bool) -> u32 {
            let _span = telemetry.span("inner");
            if bail {
                return 1;
            }
            2
        }
        inner(&telemetry, true);
        inner(&telemetry, false);
        let events = sink.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(check_span_nesting(&events), Ok(2));
    }

    #[test]
    fn nesting_checker_rejects_mismatches() {
        let (sink, telemetry) = recording();
        let outer = telemetry.span("outer");
        let inner = telemetry.span("inner");
        drop(outer); // wrong order: outer closes while inner is open
        drop(inner);
        let events = sink.snapshot();
        assert!(check_span_nesting(&events).is_err());
    }

    #[test]
    fn nesting_is_tracked_per_track() {
        let (sink, telemetry) = recording();
        let worker = telemetry.scoped("worker");
        let main_span = telemetry.span("main-work");
        let worker_span = worker.span("worker-work");
        drop(main_span); // fine: different track than worker's open span
        drop(worker_span);
        assert_eq!(check_span_nesting(&sink.snapshot()), Ok(2));
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let (sink, telemetry) = recording();
        let span = telemetry.span_args("run", || {
            vec![
                ("engine", ArgValue::Str("BMC \"quoted\"".into())),
                ("k", ArgValue::U64(7)),
            ]
        });
        span.end();
        let events = sink.snapshot();
        let line = event_to_jsonl(&events[0]);
        assert!(line.starts_with("{\"seq\":0,"));
        assert!(line.contains("\"ph\":\"B\""));
        assert!(line.contains("\"engine\":\"BMC \\\"quoted\\\"\""));
        assert!(line.contains("\"k\":7"));
        let mut buffer = Vec::new();
        write_jsonl(&events, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("{\"schema\":\"itpseq-trace/v1\"}"));
        assert_eq!(lines.count(), events.len());
    }

    #[test]
    fn jsonl_sink_streams_header_and_events() {
        // Route the sink into a shared buffer to check the stream shape.
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let buffer = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::new(JsonlSink::new(Box::new(Shared(buffer.clone()))).unwrap());
        let telemetry = Telemetry::new(sink.clone());
        telemetry.instant_args("marker", || vec![("k", ArgValue::U64(1))]);
        telemetry.flush();
        let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("{\"schema\":\"itpseq-trace/v1\"}"));
        let event_line = lines.next().unwrap();
        assert!(event_line.contains("\"ph\":\"i\""));
        assert!(event_line.contains("\"name\":\"marker\""));
    }

    #[test]
    fn jsonl_sink_batches_lines_until_flush_or_drop() {
        #[derive(Clone)]
        struct CountingWriter {
            data: Arc<Mutex<Vec<u8>>>,
            writes: Arc<AtomicU64>,
        }
        impl Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.data.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let writer = CountingWriter {
            data: Arc::new(Mutex::new(Vec::new())),
            writes: Arc::new(AtomicU64::new(0)),
        };
        let (data, writes) = (writer.data.clone(), writer.writes.clone());
        let sink = Arc::new(JsonlSink::new(Box::new(writer)).unwrap());
        let telemetry = Telemetry::new(sink.clone());
        let header_writes = writes.load(Ordering::Relaxed);
        for _ in 0..100 {
            telemetry.instant("tick");
        }
        // 100 short lines fit well inside the buffer: no writes yet.
        assert_eq!(writes.load(Ordering::Relaxed), header_writes);
        telemetry.flush();
        assert_eq!(writes.load(Ordering::Relaxed), header_writes + 1);
        for _ in 0..100 {
            telemetry.instant("tock");
        }
        drop(telemetry);
        drop(sink); // drop drains the tail without an explicit flush
        let text = String::from_utf8(data.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 201); // header + 200 events
        assert!(text.ends_with('\n'));

        // A sustained stream does cross the limit and drains mid-run.
        let writer = CountingWriter {
            data: Arc::new(Mutex::new(Vec::new())),
            writes: Arc::new(AtomicU64::new(0)),
        };
        let writes = writer.writes.clone();
        let sink = Arc::new(JsonlSink::new(Box::new(writer)).unwrap());
        let telemetry = Telemetry::new(sink);
        let before = writes.load(Ordering::Relaxed);
        for _ in 0..2_000 {
            telemetry.instant("a-somewhat-longer-event-name-to-fill-the-buffer");
        }
        assert!(writes.load(Ordering::Relaxed) > before);
    }

    #[test]
    fn chrome_trace_names_tracks_and_drops_counter_labels() {
        let (sink, telemetry) = recording();
        let entrant = telemetry.scoped("PDR");
        let span = entrant.span("run");
        entrant.counter("progress", || {
            vec![
                ("conflicts", ArgValue::U64(10)),
                ("engine", ArgValue::Str("PDR".into())),
            ]
        });
        span.end();
        telemetry.instant("win");
        let mut buffer = Vec::new();
        write_chrome_trace(&sink.snapshot(), &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"thread_name\",\"args\":{\"name\":\"PDR\"}"));
        assert!(text.contains("\"thread_name\",\"args\":{\"name\":\"main\"}"));
        // The counter sample keeps the number, drops the label.
        let counter_line = text.lines().find(|l| l.contains("\"ph\":\"C\"")).unwrap();
        assert!(counter_line.contains("\"conflicts\":10"));
        assert!(!counter_line.contains("engine"));
    }

    #[test]
    fn equality_tracks_sink_identity_and_track() {
        let (_, a) = recording();
        let (_, b) = recording();
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
        assert_ne!(a, a.scoped("other"));
        assert_eq!(Telemetry::off(), Telemetry::off());
        assert_ne!(a, Telemetry::off());
    }
}
