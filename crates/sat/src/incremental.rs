//! Incremental solving with activation-literal clause retirement.
//!
//! The base [`Solver`](crate::Solver) only ever *adds* clauses.  That is
//! enough for the one-shot refutations of the interpolation engines, but
//! IC3/PDR-style engines issue thousands of queries against a slowly
//! growing clause database and need *temporary* clauses: the `¬cube` part
//! of a relative-induction query must disappear once the query is
//! answered.
//!
//! [`IncrementalSolver`] implements the classic activation-literal scheme:
//!
//! * a *permanent* clause `C` is added as-is,
//! * a *retirable* clause `C` is added as `(¬a ∨ C)` for a fresh
//!   activation variable `a`; the clause is only in force while `a` is
//!   assumed true,
//! * [`retire`](IncrementalSolver::retire) adds the unit `¬a`, which
//!   permanently satisfies (and thereby deactivates) the guarded clause,
//! * [`solve`](IncrementalSolver::solve) automatically assumes every
//!   live activation literal, so callers only pass their own assumptions,
//! * [`assumption_core`](IncrementalSolver::assumption_core) filters the
//!   activation literals back out, so callers see a core over *their*
//!   assumptions only.
//!
//! ```
//! use cnf::Lit;
//! use sat::{IncrementalSolver, SolveResult};
//!
//! let mut solver = IncrementalSolver::new();
//! let x = Lit::positive(solver.new_var());
//! solver.add_clause([x]);
//! let guard = solver.add_retirable_clause([!x]);
//! assert_eq!(solver.solve(&[]), SolveResult::Unsat);
//! solver.retire(guard);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! ```

use crate::solver::{SolveResult, Solver, SolverStats};
use cnf::{Cnf, Lit, Var};

/// Handle of a retirable clause: the activation literal guarding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClauseGuard(Lit);

/// A [`Solver`] wrapper supporting temporary clauses through activation
/// literals.
///
/// See the [module documentation](self) for the scheme and an example.
#[derive(Clone, Debug, Default)]
pub struct IncrementalSolver {
    solver: Solver,
    /// Activation literals of clauses that are still in force.
    live: Vec<Lit>,
    /// Count of clauses retired so far (statistics only).
    retired: u64,
}

impl IncrementalSolver {
    /// Creates an empty incremental solver.
    pub fn new() -> IncrementalSolver {
        IncrementalSolver::default()
    }

    /// Creates an incremental solver preloaded with a base formula.
    pub fn with_base(cnf: &Cnf) -> IncrementalSolver {
        let mut solver = IncrementalSolver::new();
        solver.solver.add_cnf(cnf);
        solver
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        self.solver.new_var()
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.solver.num_vars()
    }

    /// Number of retirable clauses still in force.
    pub fn num_live(&self) -> usize {
        self.live.len()
    }

    /// Number of clauses retired so far.
    pub fn num_retired(&self) -> u64 {
        self.retired
    }

    /// Returns the accumulated search statistics.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Adds a permanent clause (partition 0: incremental queries take no
    /// part in interpolation).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.solver.add_clause(lits, 0);
    }

    /// Adds a clause that can later be retired; returns its guard.
    ///
    /// The clause is in force for every [`solve`](Self::solve) call until
    /// [`retire`](Self::retire) is called on the guard.
    pub fn add_retirable_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> ClauseGuard {
        let activation = Lit::positive(self.solver.new_var());
        let guarded: Vec<Lit> = std::iter::once(!activation).chain(lits).collect();
        self.solver.add_clause(guarded, 0);
        self.live.push(activation);
        ClauseGuard(activation)
    }

    /// Permanently deactivates the clause behind `guard`.
    ///
    /// The guarded clause stays in the solver but is satisfied by the unit
    /// `¬a`, so it never constrains or propagates again.
    pub fn retire(&mut self, guard: ClauseGuard) {
        if let Some(position) = self.live.iter().position(|&a| a == guard.0) {
            self.live.swap_remove(position);
            self.solver.add_clause([!guard.0], 0);
            self.retired += 1;
        }
    }

    /// Solves under `assumptions` with every live retirable clause active.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        // Activation literals go first: they are unconditionally true, so a
        // core caused by the caller's assumptions stays expressed in terms
        // of the trailing (caller) positions.
        let mut all = self.live.clone();
        all.extend_from_slice(assumptions);
        self.solver.solve_with_assumptions(&all)
    }

    /// Returns the subset of the *caller's* assumptions responsible for the
    /// last `Unsat` answer, with activation literals filtered out.
    pub fn assumption_core(&self) -> Vec<Lit> {
        self.solver
            .assumption_core()
            .iter()
            .copied()
            .filter(|l| !self.live.contains(l) && !self.live.contains(&!*l))
            .collect()
    }

    /// Returns the value assigned to `var` by the most recent satisfiable
    /// call, or `None` when unassigned.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.solver.value(var)
    }

    /// Returns the value of a literal under the current assignment.
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.solver.lit_value(lit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut IncrementalSolver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::positive(solver.new_var())).collect()
    }

    #[test]
    fn retired_clauses_stop_constraining() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        let g1 = s.add_retirable_clause([!v[0]]);
        let g2 = s.add_retirable_clause([!v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        s.retire(g1);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.lit_value(v[1]), Some(false));
        assert_eq!(s.lit_value(v[0]), Some(true));
        s.retire(g2);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.num_retired(), 2);
        assert_eq!(s.num_live(), 0);
    }

    #[test]
    fn double_retire_is_harmless() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 1);
        let g = s.add_retirable_clause([v[0]]);
        s.retire(g);
        s.retire(g);
        assert_eq!(s.num_retired(), 1);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn cores_hide_activation_literals() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 3);
        // Retirable clause (¬x0 ∨ ¬x1) plus irrelevant assumption x2.
        let _g = s.add_retirable_clause([!v[0], !v[1]]);
        assert_eq!(s.solve(&[v[2], v[0], v[1]]), SolveResult::Unsat);
        let core = s.assumption_core();
        assert!(!core.is_empty());
        for l in &core {
            assert!(
                [v[0], v[1], v[2]].contains(l),
                "core literal {l} must be a caller assumption"
            );
        }
    }

    #[test]
    fn live_clauses_survive_interleaved_queries() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 2);
        let _keep = s.add_retirable_clause([v[0]]);
        let drop = s.add_retirable_clause([v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.lit_value(v[0]), Some(true));
        s.retire(drop);
        assert_eq!(s.solve(&[!v[1]]), SolveResult::Sat);
        assert_eq!(s.lit_value(v[0]), Some(true));
        assert_eq!(s.lit_value(v[1]), Some(false));
    }

    #[test]
    fn with_base_loads_the_formula() {
        let mut builder = cnf::CnfBuilder::new();
        let x = builder.new_lit();
        builder.add_clause([x]);
        let mut s = IncrementalSolver::with_base(&builder.into_cnf());
        assert_eq!(s.solve(&[!x]), SolveResult::Unsat);
        assert_eq!(s.assumption_core(), vec![!x]);
    }
}
