//! Criterion group comparing the PDR engine against ITPSEQCBA — the
//! paper's strongest interpolation engine — across the full benchmark
//! suite (mid-size plus industrial-like halves).

use criterion::{criterion_group, criterion_main, Criterion};
use mc::{Engine, Options};
use std::time::Duration;

fn fig_pdr_engines(c: &mut Criterion) {
    let options = Options::default()
        .with_timeout(Duration::from_secs(5))
        .with_max_bound(40);
    let mut group = c.benchmark_group("fig_pdr");
    group.sample_size(10);
    for benchmark in workloads::suite::full() {
        for engine in [Engine::Pdr, Engine::ItpSeqCba] {
            group.bench_function(format!("{}/{}", engine.name(), benchmark.name), |b| {
                b.iter(|| engine.verify(&benchmark.aig, 0, &options))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig_pdr_engines);
criterion_main!(benches);
