//! Experiment harness shared by the figure/table regenerator binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation section:
//!
//! * `fig6` — sorted run-time curves of the four engines over the suite,
//! * `table1` — the per-benchmark table with BDD diameters and
//!   `Time / k_fp / j_fp` per engine (now including the racing
//!   portfolio); `--suite` selects a benchmark subset and `--json`
//!   additionally emits the machine-readable records CI archives
//!   (schema `itpseq-table1/v6`, which adds the fault-isolation counters
//!   `panics_contained`/`memlimit_hits`/`faults_injected`/
//!   `pool_seq_reruns` on top of v5's preprocessing reduction
//!   counters),
//! * `fig7` — the exact-k versus assume-k scatter for ITPSEQ,
//! * `ablation_alpha` — the `αs` sweep for the serial sequences.
//!
//! The criterion benches under `benches/` add `fig_pdr` (PDR vs
//! ITPSEQCBA) and `fig_portfolio` (the portfolio against its own
//! entrants, plus sequential-vs-parallel PDR).
//!
//! Absolute run times obviously differ from the paper's 2011 hardware and
//! benchmark set; the *shapes* (which engine wins, where overflows appear,
//! how `k_fp`/`j_fp` relate) are the reproduction target.

use mc::{Engine, EngineResult, MultiResult, Options, PropertyStatus, StopReason, Verdict};
use std::sync::Arc;
use std::time::Duration;
use telemetry::{MemorySink, Telemetry};
use workloads::Benchmark;

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Result of one engine on one benchmark.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Benchmark name.
    pub benchmark: String,
    /// Engine used.
    pub engine: Engine,
    /// Engine outcome and statistics.
    pub result: EngineResult,
}

impl RunRecord {
    /// Run time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.result.stats.time.as_secs_f64() * 1e3
    }

    /// Time spent building/extending CNF encodings, in milliseconds —
    /// the number the unrolling cache shrinks, reported separately so the
    /// perf-smoke artifacts make the speedup visible.
    pub fn encode_millis(&self) -> f64 {
        self.result.stats.encode_time.as_secs_f64() * 1e3
    }

    /// `k_fp` as reported in Table I (bound reached on overflow).
    pub fn k_fp(&self) -> usize {
        match &self.result.verdict {
            Verdict::Proved { k_fp, .. } => *k_fp,
            Verdict::Falsified { depth } => *depth,
            Verdict::Inconclusive { bound_reached, .. } => *bound_reached,
        }
    }

    /// `j_fp` as reported in Table I (0 on failure, `-` on overflow).
    pub fn j_fp(&self) -> Option<usize> {
        match &self.result.verdict {
            Verdict::Proved { j_fp, .. } => Some(*j_fp),
            Verdict::Falsified { .. } => Some(0),
            Verdict::Inconclusive { .. } => None,
        }
    }

    /// Learned clauses the run's SAT cores deleted (DB reductions plus
    /// retirement sweeps) — one of the schema-v3 solver counters.
    pub fn learned_deleted(&self) -> u64 {
        self.result.stats.learned_deleted
    }

    /// One flat JSON object per record, for the machine-readable artifact
    /// CI uploads next to the text table.
    pub fn to_json(&self) -> String {
        let (verdict, k_fp, j_fp, depth, bound, reason) = match &self.result.verdict {
            Verdict::Proved { k_fp, j_fp } => {
                ("proved", Some(*k_fp), Some(*j_fp), None, None, None)
            }
            Verdict::Falsified { depth } => ("falsified", None, None, Some(*depth), None, None),
            Verdict::Inconclusive {
                bound_reached,
                reason,
            } => (
                "inconclusive",
                None,
                None,
                None,
                Some(*bound_reached),
                Some(reason.to_string()),
            ),
        };
        let opt = |v: Option<usize>| v.map_or("null".to_string(), |v| v.to_string());
        let opt_str =
            |v: Option<&str>| v.map_or("null".to_string(), |s| format!("\"{}\"", json_escape(s)));
        format!(
            concat!(
                r#"{{"benchmark":"{}","engine":"{}","verdict":"{}","time_ms":{:.3},"#,
                r#""encode_time_ms":{:.3},"k_fp":{},"j_fp":{},"depth":{},"bound_reached":{},"#,
                r#""reason":{},"sat_calls":{},"conflicts":{},"decisions":{},"#,
                r#""propagations":{},"restarts":{},"clauses_encoded":{},"#,
                r#""learned_deleted":{},"minimized_literals":{},"db_reductions":{},"#,
                r#""preprocess_time_ms":{:.3},"ands_removed":{},"latches_removed":{},"#,
                r#""inputs_removed":{},"cert_clauses_subsumed":{},"#,
                r#""panics_contained":{},"memlimit_hits":{},"faults_injected":{},"#,
                r#""pool_seq_reruns":{},"winner":{}}}"#
            ),
            json_escape(&self.benchmark),
            self.engine.name(),
            verdict,
            self.millis(),
            self.encode_millis(),
            opt(k_fp),
            opt(j_fp),
            opt(depth),
            opt(bound),
            opt_str(reason.as_deref()),
            self.result.stats.sat_calls,
            self.result.stats.conflicts,
            self.result.stats.decisions,
            self.result.stats.propagations,
            self.result.stats.restarts,
            self.result.stats.clauses_encoded,
            self.result.stats.learned_deleted,
            self.result.stats.minimized_literals,
            self.result.stats.db_reductions,
            self.result.stats.preprocess_time.as_secs_f64() * 1e3,
            self.result.stats.ands_removed,
            self.result.stats.latches_removed,
            self.result.stats.inputs_removed,
            self.result.stats.cert_clauses_subsumed,
            self.result.stats.panics_contained,
            self.result.stats.memlimit_hits,
            self.result.stats.faults_injected,
            self.result.stats.pool_seq_reruns,
            opt_str(self.result.stats.winner),
        )
    }

    /// Table-friendly rendering of the verdict cells.
    pub fn cells(&self) -> (String, String, String) {
        match &self.result.verdict {
            Verdict::Proved { k_fp, j_fp } => (
                format!("{:.0}", self.millis()),
                k_fp.to_string(),
                j_fp.to_string(),
            ),
            Verdict::Falsified { depth } => (
                format!("{:.0}", self.millis()),
                depth.to_string(),
                "0".to_string(),
            ),
            Verdict::Inconclusive {
                bound_reached,
                reason,
            } => (
                short_reason(reason).to_string(),
                format!("({bound_reached})"),
                "-".to_string(),
            ),
        }
    }
}

/// Table-cell code for an inconclusive run's reason: `t/o` (wall-clock
/// budget), `ovf` (bound exhausted), `cxl` (cancelled or retired, e.g. a
/// portfolio loser), `mem` (memory budget), `pnc` (a contained panic),
/// `inc` for anything else (e.g. an interpolation failure).
pub fn short_reason(reason: &StopReason) -> &'static str {
    match reason {
        StopReason::Timeout => "t/o",
        StopReason::BoundExhausted => "ovf",
        StopReason::Cancelled | StopReason::Retired => "cxl",
        StopReason::MemLimit => "mem",
        StopReason::Panic(_) => "pnc",
        StopReason::Other(_) => "inc",
    }
}

/// One design's outcome in an HWMCC-style directory run: the parsed
/// design's shape, `verify_all`'s per-property statuses — or the parse
/// error that kept the design out of the run.
#[derive(Clone, Debug)]
pub struct HwmccRecord {
    /// File name within the benchmark directory (e.g. `counter.aag`).
    pub file: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of latches.
    pub latches: usize,
    /// Number of AND gates.
    pub ands: usize,
    /// Whether the properties came from the pre-AIGER-1.9 fallback
    /// (outputs promoted to bad-state literals because `B` was absent).
    pub promoted_outputs: bool,
    /// The multi-property result, or `Err(message)` when the file did not
    /// parse.
    pub result: Result<MultiResult, String>,
    /// Per-pass preprocessing reduction statistics, when the runner's
    /// staged pipeline preprocessed the design (`None` with preprocessing
    /// off or on a parse error).
    pub preprocess: Option<aig::passes::PipelineStats>,
}

impl HwmccRecord {
    /// Renders the preprocessing pipeline statistics as a JSON object
    /// (`null` when the design was not preprocessed).
    fn preprocess_json(&self) -> String {
        let Some(stats) = &self.preprocess else {
            return "null".to_string();
        };
        let passes: Vec<String> = stats
            .passes
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        r#"{{"pass":"{}","ands_removed":{},"latches_removed":{},"#,
                        r#""inputs_removed":{}}}"#
                    ),
                    p.pass.name(),
                    p.ands_removed,
                    p.latches_removed,
                    p.inputs_removed,
                )
            })
            .collect();
        format!(
            concat!(
                r#"{{"ands_removed":{},"latches_removed":{},"inputs_removed":{},"#,
                r#""final_ands":{},"final_latches":{},"final_inputs":{},"passes":[{}]}}"#
            ),
            stats.ands_removed(),
            stats.latches_removed(),
            stats.inputs_removed(),
            stats.final_ands,
            stats.final_latches,
            stats.final_inputs,
            passes.join(","),
        )
    }

    /// Renders one property's status as a flat JSON object.
    fn property_json(index: usize, status: &PropertyStatus) -> String {
        let (kind, depth, k_fp, j_fp, bound, reason, has_cex) = match status {
            PropertyStatus::Proved { k_fp, j_fp, .. } => {
                ("proved", None, Some(*k_fp), Some(*j_fp), None, None, false)
            }
            PropertyStatus::Falsified { depth, cex } => (
                "falsified",
                Some(*depth),
                None,
                None,
                None,
                None,
                cex.is_some(),
            ),
            PropertyStatus::Inconclusive {
                reason,
                bound_reached,
            } => (
                "inconclusive",
                None,
                None,
                None,
                Some(*bound_reached),
                Some(reason.to_string()),
                false,
            ),
        };
        let opt = |v: Option<usize>| v.map_or("null".to_string(), |v| v.to_string());
        let opt_str =
            |v: Option<&str>| v.map_or("null".to_string(), |s| format!("\"{}\"", json_escape(s)));
        format!(
            concat!(
                r#"{{"index":{},"status":"{}","depth":{},"k_fp":{},"j_fp":{},"#,
                r#""bound_reached":{},"reason":{},"has_cex":{}}}"#
            ),
            index,
            kind,
            opt(depth),
            opt(k_fp),
            opt(j_fp),
            opt(bound),
            opt_str(reason.as_deref()),
            has_cex,
        )
    }

    /// One flat JSON object per design, properties nested.
    pub fn to_json(&self) -> String {
        match &self.result {
            Ok(result) => {
                let properties: Vec<String> = result
                    .statuses
                    .iter()
                    .enumerate()
                    .map(|(index, status)| Self::property_json(index, status))
                    .collect();
                format!(
                    concat!(
                        r#"{{"file":"{}","inputs":{},"latches":{},"ands":{},"#,
                        r#""promoted_outputs":{},"time_ms":{:.3},"sat_calls":{},"#,
                        r#""conflicts":{},"clauses_encoded":{},"preprocess":{},"#,
                        r#""properties":[{}]}}"#
                    ),
                    json_escape(&self.file),
                    self.inputs,
                    self.latches,
                    self.ands,
                    self.promoted_outputs,
                    result.stats.time.as_secs_f64() * 1e3,
                    result.stats.sat_calls,
                    result.stats.conflicts,
                    result.stats.clauses_encoded,
                    self.preprocess_json(),
                    properties.join(","),
                )
            }
            Err(message) => format!(
                r#"{{"file":"{}","error":"{}"}}"#,
                json_escape(&self.file),
                json_escape(message),
            ),
        }
    }
}

/// Renders an HWMCC directory run as the machine-readable JSON document
/// (schema `itpseq-hwmcc/v2`, which adds the per-design `preprocess`
/// reduction report to v1) the `hwmcc` binary writes and CI archives.
pub fn hwmcc_records_to_json(engine: Engine, records: &[HwmccRecord]) -> String {
    let body: Vec<String> = records
        .iter()
        .map(|record| format!("    {}", record.to_json()))
        .collect();
    format!(
        "{{\n  \"schema\": \"itpseq-hwmcc/v2\",\n  \"engine\": \"{}\",\n  \"designs\": [\n{}\n  ]\n}}\n",
        engine.name(),
        body.join(",\n")
    )
}

/// The output files a [`TraceCapture`] writes at exit, one per flag of
/// the experiment binaries.
#[derive(Clone, Debug, Default)]
pub struct TracePaths {
    /// `--trace`: the raw `itpseq-trace/v1` JSONL stream.
    pub jsonl: Option<String>,
    /// `--chrome-trace`: a Chrome trace-event file (loadable in
    /// Perfetto / `chrome://tracing`).
    pub chrome: Option<String>,
    /// `--report`: the `itpseq-report/v1` span-tree analysis (span
    /// aggregates, counter rates, portfolio wasted work).
    pub report: Option<String>,
    /// `--folded`: inferno-compatible collapsed stacks for flamegraphs.
    pub folded: Option<String>,
}

impl TracePaths {
    fn any(&self) -> bool {
        self.jsonl.is_some()
            || self.chrome.is_some()
            || self.report.is_some()
            || self.folded.is_some()
    }
}

/// Telemetry capture behind the binaries' `--trace`/`--chrome-trace`/
/// `--report`/`--folded` flags: events from every run accumulate in one
/// in-memory sink and are written out once at exit in each requested
/// form.
pub struct TraceCapture {
    sink: Arc<MemorySink>,
    paths: TracePaths,
}

impl TraceCapture {
    /// A capture for the requested output paths; `None` when no tracing
    /// output was requested (so the no-op telemetry handle stays in
    /// place).
    pub fn new(paths: TracePaths) -> Option<TraceCapture> {
        if !paths.any() {
            return None;
        }
        Some(TraceCapture {
            sink: Arc::new(MemorySink::new()),
            paths,
        })
    }

    /// The recording telemetry handle to install via
    /// [`Options::with_telemetry`].
    pub fn telemetry(&self) -> Telemetry {
        Telemetry::new(self.sink.clone())
    }

    /// Writes the requested trace files.  On failure the returned message
    /// names the path that could not be written — the binaries report it
    /// to stderr and exit nonzero instead of panicking.
    pub fn write(&self) -> Result<(), String> {
        let events = self.sink.snapshot();
        if let Some(path) = &self.paths.jsonl {
            let mut out = Vec::new();
            telemetry::write_jsonl(&events, &mut out)
                .map_err(|e| format!("cannot encode trace for {path}: {e}"))?;
            std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {} trace events to {path}", events.len());
        }
        if let Some(path) = &self.paths.chrome {
            let mut out = Vec::new();
            telemetry::write_chrome_trace(&events, &mut out)
                .map_err(|e| format!("cannot encode trace for {path}: {e}"))?;
            std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote Chrome trace ({} events) to {path}", events.len());
        }
        if self.paths.report.is_some() || self.paths.folded.is_some() {
            let report = telemetry::report::TraceReport::from_events(&events);
            if let Some(path) = &self.paths.report {
                // The baseline comparison is `trace-report --baseline`'s
                // job; the inline report documents the run itself.
                std::fs::write(path, report.to_json(None))
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!(
                    "wrote span report ({} span aggregates) to {path}",
                    report.spans.len()
                );
            }
            if let Some(path) = &self.paths.folded {
                let mut out = Vec::new();
                telemetry::folded::write_folded(&events, &mut out)
                    .map_err(|e| format!("cannot encode folded stacks for {path}: {e}"))?;
                std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))?;
                eprintln!("wrote folded stacks to {path}");
            }
        }
        Ok(())
    }
}

/// Installs a capture's recording handle on `options` (the identity when
/// tracing was not requested).
pub fn with_capture(options: Options, capture: Option<&TraceCapture>) -> Options {
    match capture {
        Some(capture) => options.with_telemetry(capture.telemetry()),
        None => options,
    }
}

/// Runs one engine on one benchmark with the given per-instance budget,
/// through the staged pipeline: preprocess the design, solve on the
/// reduced model, reconstruct verdict/certificate back to the original
/// (equivalent to [`Engine::verify`], spelled out stage by stage).
pub fn run_engine(benchmark: &Benchmark, engine: Engine, options: &Options) -> RunRecord {
    let result = if options.preprocess.enabled() {
        mc::prepare_property(&benchmark.aig, 0, options).verify(engine, 0, options)
    } else {
        engine.verify(&benchmark.aig, 0, options)
    };
    RunRecord {
        benchmark: benchmark.name.clone(),
        engine,
        result,
    }
}

/// The per-instance options used by the experiment binaries: a small time
/// budget per run (scaled-down analogue of the paper's 1800 s limit) and a
/// generous bound.
pub fn experiment_options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(5))
        .with_max_bound(40)
}

/// Renders a batch of records as the machine-readable JSON document CI
/// uploads as a build artifact.
pub fn records_to_json(records: &[RunRecord]) -> String {
    let body: Vec<String> = records
        .iter()
        .map(|record| format!("    {}", record.to_json()))
        .collect();
    format!(
        "{{\n  \"schema\": \"itpseq-table1/v6\",\n  \"records\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

/// The perf-smoke selection: the fastest mid-size instances, small enough
/// for CI to rerun on every push and still produce comparable curves.
pub fn smoke_suite() -> Vec<Benchmark> {
    workloads::suite::mid_size()
        .into_iter()
        .filter(|b| b.aig.num_latches() <= 8)
        .collect()
}

/// Resolves the benchmark selections the experiment binaries accept with
/// `--suite`: `full`, `mid`, `industrial` or `smoke`.
pub fn suite_by_name(name: &str) -> Option<Vec<Benchmark>> {
    match name {
        "full" => Some(workloads::suite::full()),
        "mid" => Some(workloads::suite::mid_size()),
        "industrial" => Some(workloads::suite::industrial()),
        "smoke" => Some(smoke_suite()),
        _ => None,
    }
}

/// Sanitizes a benchmark name into a file stem for certificate bundles.
pub fn cert_file_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes one design's certificate bundle into `dir`: the design as
/// `<stem>.aag` next to its `itpseq-cert/v1` document `<stem>.certs.json`.
/// The independent checker (`cargo run --bin certify`) re-parses the
/// `.aag` rather than trusting any in-memory state, so the design written
/// here must be exactly the one the engines ran on (for the hwmcc runner
/// that means *after* output promotion).
pub fn write_cert_bundle(
    dir: &std::path::Path,
    stem: &str,
    aig: &aig::Aig,
    records: &[mc::CertRecord],
) -> std::io::Result<()> {
    let design_file = format!("{stem}.aag");
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(&design_file), aig::to_aag(aig))?;
    std::fs::write(
        dir.join(format!("{stem}.certs.json")),
        mc::certificate::document_json(&design_file, records),
    )?;
    Ok(())
}

/// Formats a monotone (sorted) run-time curve like Fig. 6: the i-th value
/// is the i-th smallest solved-instance time; unsolved instances are
/// reported as the timeout value.
pub fn sorted_curve(records: &[RunRecord], timeout: Duration) -> Vec<f64> {
    let mut times: Vec<f64> = records
        .iter()
        .map(|r| {
            if r.result.verdict.is_conclusive() {
                r.millis()
            } else {
                timeout.as_secs_f64() * 1e3
            }
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_cells_render_all_verdicts() {
        let suite = workloads::suite::mid_size();
        let options = Options::default()
            .with_timeout(Duration::from_secs(2))
            .with_max_bound(20);
        let record = run_engine(&suite[0], Engine::ItpSeq, &options);
        let (time, k, j) = record.cells();
        assert!(!time.is_empty() && !k.is_empty() && !j.is_empty());
    }

    #[test]
    fn json_records_cover_all_verdict_shapes() {
        let mk = |verdict: Verdict| RunRecord {
            benchmark: "counter \"quoted\"".to_string(),
            engine: Engine::Portfolio,
            result: mc::EngineResult {
                verdict,
                stats: mc::EngineStats {
                    sat_calls: 3,
                    decisions: 11,
                    propagations: 13,
                    restarts: 4,
                    learned_deleted: 7,
                    minimized_literals: 9,
                    db_reductions: 2,
                    winner: Some("PDR"),
                    ands_removed: 5,
                    latches_removed: 2,
                    inputs_removed: 1,
                    cert_clauses_subsumed: 1,
                    panics_contained: 1,
                    memlimit_hits: 2,
                    faults_injected: 3,
                    pool_seq_reruns: 4,
                    ..Default::default()
                },
                certificate: None,
            },
        };
        let proved = mk(Verdict::Proved { k_fp: 4, j_fp: 2 }).to_json();
        assert!(proved.contains(r#""verdict":"proved""#), "{proved}");
        assert!(proved.contains(r#""k_fp":4"#), "{proved}");
        assert!(proved.contains(r#""winner":"PDR""#), "{proved}");
        assert!(proved.contains(r#"counter \"quoted\""#), "{proved}");
        assert!(proved.contains(r#""encode_time_ms":"#), "{proved}");
        assert!(proved.contains(r#""clauses_encoded":0"#), "{proved}");
        assert!(proved.contains(r#""learned_deleted":7"#), "{proved}");
        assert!(proved.contains(r#""minimized_literals":9"#), "{proved}");
        assert!(proved.contains(r#""db_reductions":2"#), "{proved}");
        assert!(proved.contains(r#""decisions":11"#), "{proved}");
        assert!(proved.contains(r#""propagations":13"#), "{proved}");
        assert!(proved.contains(r#""restarts":4"#), "{proved}");
        assert!(proved.contains(r#""preprocess_time_ms":"#), "{proved}");
        assert!(proved.contains(r#""ands_removed":5"#), "{proved}");
        assert!(proved.contains(r#""latches_removed":2"#), "{proved}");
        assert!(proved.contains(r#""inputs_removed":1"#), "{proved}");
        assert!(proved.contains(r#""cert_clauses_subsumed":1"#), "{proved}");
        assert!(proved.contains(r#""panics_contained":1"#), "{proved}");
        assert!(proved.contains(r#""memlimit_hits":2"#), "{proved}");
        assert!(proved.contains(r#""faults_injected":3"#), "{proved}");
        assert!(proved.contains(r#""pool_seq_reruns":4"#), "{proved}");
        let falsified = mk(Verdict::Falsified { depth: 7 }).to_json();
        assert!(falsified.contains(r#""depth":7"#), "{falsified}");
        assert!(falsified.contains(r#""k_fp":null"#), "{falsified}");
        let inconclusive = mk(Verdict::Inconclusive {
            reason: StopReason::Timeout,
            bound_reached: 9,
        })
        .to_json();
        assert!(
            inconclusive.contains(r#""bound_reached":9"#),
            "{inconclusive}"
        );
        assert!(
            inconclusive.contains(r#""reason":"timeout""#),
            "{inconclusive}"
        );
        let panicked = mk(Verdict::Inconclusive {
            reason: StopReason::Panic("index out of \"bounds\"".to_string()),
            bound_reached: 0,
        })
        .to_json();
        assert!(
            panicked.contains(r#""reason":"panic:index out of \"bounds\"""#),
            "{panicked}"
        );
        assert!(proved.contains(r#""reason":null"#), "{proved}");
        let document = records_to_json(&[
            mk(Verdict::Proved { k_fp: 1, j_fp: 1 }),
            mk(Verdict::Falsified { depth: 2 }),
        ]);
        assert!(document.contains("itpseq-table1/v6"));
        assert_eq!(document.matches("\"benchmark\"").count(), 2);
        let opens = document.matches('{').count();
        assert_eq!(opens, document.matches('}').count());
    }

    #[test]
    fn hwmcc_json_covers_all_status_shapes() {
        let ok = HwmccRecord {
            file: "counter.aag".to_string(),
            inputs: 1,
            latches: 4,
            ands: 9,
            promoted_outputs: true,
            result: Ok(MultiResult {
                statuses: vec![
                    PropertyStatus::Proved {
                        k_fp: 3,
                        j_fp: 2,
                        cert: None,
                    },
                    PropertyStatus::Falsified {
                        depth: 5,
                        cex: Some(vec![vec![true]; 6]),
                    },
                    PropertyStatus::Inconclusive {
                        reason: StopReason::BoundExhausted,
                        bound_reached: 40,
                    },
                ],
                stats: mc::EngineStats {
                    sat_calls: 12,
                    ..Default::default()
                },
            }),
            preprocess: Some(aig::passes::PipelineStats {
                passes: vec![aig::passes::PassStats {
                    pass: aig::passes::PassKind::Coi,
                    ands_removed: 3,
                    latches_removed: 2,
                    inputs_removed: 0,
                }],
                orig_ands: 12,
                orig_latches: 6,
                orig_inputs: 1,
                final_ands: 9,
                final_latches: 4,
                final_inputs: 1,
            }),
        };
        let broken = HwmccRecord {
            file: "broken \"quoted\".aag".to_string(),
            inputs: 0,
            latches: 0,
            ands: 0,
            promoted_outputs: false,
            result: Err("invalid aag header: nope".to_string()),
            preprocess: None,
        };
        let document = hwmcc_records_to_json(Engine::Portfolio, &[ok, broken]);
        assert!(
            document.contains(r#""schema": "itpseq-hwmcc/v2""#),
            "{document}"
        );
        assert!(
            document.contains(r#""preprocess":{"ands_removed":3,"latches_removed":2"#),
            "{document}"
        );
        assert!(document.contains(r#""pass":"coi""#), "{document}");
        assert!(document.contains(r#""engine": "PORTFOLIO""#));
        assert!(document.contains(r#""status":"proved""#));
        assert!(document.contains(r#""status":"falsified""#));
        assert!(document.contains(r#""depth":5"#));
        assert!(document.contains(r#""has_cex":true"#));
        assert!(document.contains(r#""reason":"bound exhausted""#));
        assert!(document.contains(r#""promoted_outputs":true"#));
        assert!(document.contains(r#""error":"invalid aag header: nope""#));
        assert!(document.contains(r#"broken \"quoted\".aag"#));
        assert_eq!(document.matches('{').count(), document.matches('}').count());
    }

    #[test]
    fn inconclusive_cells_surface_the_reason() {
        let mk = |reason: StopReason| RunRecord {
            benchmark: "b".to_string(),
            engine: Engine::Bmc,
            result: mc::EngineResult {
                verdict: Verdict::Inconclusive {
                    reason,
                    bound_reached: 9,
                },
                stats: Default::default(),
                certificate: None,
            },
        };
        assert_eq!(mk(StopReason::Timeout).cells().0, "t/o");
        assert_eq!(mk(StopReason::BoundExhausted).cells().0, "ovf");
        assert_eq!(mk(StopReason::Cancelled).cells().0, "cxl");
        assert_eq!(mk(StopReason::Retired).cells().0, "cxl");
        assert_eq!(mk(StopReason::MemLimit).cells().0, "mem");
        assert_eq!(mk(StopReason::panic("boom")).cells().0, "pnc");
        assert_eq!(
            mk(StopReason::other("interpolation failed")).cells().0,
            "inc"
        );
        assert_eq!(mk(StopReason::Timeout).cells().1, "(9)");
    }

    #[test]
    fn trace_capture_records_and_exports() {
        assert!(TraceCapture::new(TracePaths::default()).is_none());
        let dir = std::env::temp_dir().join("itpseq-bench-trace-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let jsonl = dir.join("t.jsonl").to_string_lossy().into_owned();
        let chrome = dir.join("t.json").to_string_lossy().into_owned();
        let report = dir.join("t.report.json").to_string_lossy().into_owned();
        let folded = dir.join("t.folded").to_string_lossy().into_owned();
        let capture = TraceCapture::new(TracePaths {
            jsonl: Some(jsonl.clone()),
            chrome: Some(chrome.clone()),
            report: Some(report.clone()),
            folded: Some(folded.clone()),
        })
        .expect("capture");
        let suite = workloads::suite::mid_size();
        let options = with_capture(
            Options::default()
                .with_timeout(Duration::from_secs(2))
                .with_max_bound(20),
            Some(&capture),
        );
        let record = run_engine(&suite[0], Engine::ItpSeq, &options);
        assert!(record.result.verdict.is_conclusive());
        capture.write().expect("trace written");
        let trace = std::fs::read_to_string(&jsonl).expect("jsonl written");
        assert!(
            trace.starts_with(r#"{"schema":"itpseq-trace/v1"}"#),
            "{trace}"
        );
        assert!(trace.contains(r#""name":"ITPSEQ.run""#), "{trace}");
        let chrome_doc = std::fs::read_to_string(&chrome).expect("chrome written");
        assert!(chrome_doc.contains(r#""traceEvents""#), "{chrome_doc}");
        // The report written at exit matches a trace-report run over the
        // recorded JSONL exactly (same events, same aggregates).
        let report_doc = std::fs::read_to_string(&report).expect("report written");
        assert!(
            report_doc.contains(r#""schema": "itpseq-report/v1""#),
            "{report_doc}"
        );
        assert!(
            report_doc.contains(r#""name":"ITPSEQ.run""#),
            "{report_doc}"
        );
        assert!(report_doc.contains(r#""baseline": null"#), "{report_doc}");
        let from_jsonl = telemetry::report::TraceReport::from_jsonl(&trace).expect("parses");
        assert_eq!(report_doc, from_jsonl.to_json(None));
        let folded_doc = std::fs::read_to_string(&folded).expect("folded written");
        assert!(folded_doc.contains("main;ITPSEQ.run"), "{folded_doc}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_names_resolve() {
        assert!(suite_by_name("bogus").is_none());
        for name in ["full", "mid", "industrial", "smoke"] {
            let suite = suite_by_name(name).unwrap_or_else(|| panic!("{name} must resolve"));
            assert!(!suite.is_empty(), "{name} must not be empty");
        }
        let smoke = smoke_suite();
        assert!(smoke.len() < workloads::suite::full().len());
        assert!(smoke.iter().all(|b| b.aig.num_latches() <= 8));
    }

    #[test]
    fn sorted_curve_is_monotone() {
        let suite: Vec<workloads::Benchmark> =
            workloads::suite::mid_size().into_iter().take(4).collect();
        let options = Options::default()
            .with_timeout(Duration::from_secs(2))
            .with_max_bound(20);
        let records: Vec<RunRecord> = suite
            .iter()
            .map(|b| run_engine(b, Engine::SerialItpSeq, &options))
            .collect();
        let curve = sorted_curve(&records, options.timeout);
        assert_eq!(curve.len(), 4);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
    }
}
