//! Multi-property verification: `verify_all` and its amortized backends.
//!
//! Real AIGER designs carry many bad-state properties, and the engines of
//! this workspace pay their big fixed costs — the unrolled CNF, the PDR
//! frame trace, the learned clauses — per *run*.  Checking `P` properties
//! by looping [`Engine::verify`] re-pays those costs `P` times; this
//! module pays them once:
//!
//! * [`bmc`] — **multi-BMC**: one [`cnf::IncrementalUnroller`] and one
//!   long-lived [`sat::IncrementalSolver`] serve every property.  Each
//!   bound extends the shared unrolling by one frame (`O(K)` frame
//!   encodings total instead of the loop's `O(K·P)`) and checks every
//!   live property's target as a per-property *assumption*; a satisfiable
//!   answer retires that property with its counterexample trace while the
//!   solver — learned clauses and all — keeps serving the survivors.
//! * [`pdr`] — **multi-PDR**: one frame trace and one per-frame solver
//!   family serve every property.  Frame lemmas are facts about
//!   reachability (not about any particular property), so cubes blocked
//!   while working on one property strengthen the trace for all of them;
//!   properties retire individually on counterexamples, and a converged
//!   frame proves every surviving property at once.
//! * [`scheduler`] — the **property scheduler** behind
//!   [`Engine::Portfolio`]: properties are grouped by sequential
//!   cone-of-influence overlap ([`aig::coi::group_bads_by_coi`] — groups
//!   that share no latches gain nothing from a shared trace), each group
//!   races multi-PDR against multi-BMC on its own threads, and a shared
//!   retirement board gives per-property cancellation: the moment one
//!   backend decides a property, the other stops spending work on it.
//!
//! # Determinism contract
//!
//! Amortization is pure speed: for every property, the status *kind*
//! (proved / falsified / inconclusive-within-budget) and the falsified
//! *depth* are identical to the per-property [`Engine::verify`] loop —
//! depths are structurally minimal in every backend, so not even racing
//! can change them.  Proof bookkeeping (`k_fp`/`j_fp`), inconclusive
//! reasons and counterexample traces may differ between backends; compare
//! statuses with [`PropertyStatus::kind_and_depth`].  The contract is
//! pinned by `tests/multi_property.rs` over the whole benchmark suite.
//!
//! # Example
//!
//! ```
//! use mc::{verify_all, Options, PropertyStatus};
//!
//! // A 2-bit counter wrapping at 3, with one property per threshold:
//! // value 2 is reached at depth 2, value 3 never.
//! let mut aig = aig::Aig::new();
//! let (ids, bits) = aig::builder::latch_word(&mut aig, 2, 0);
//! let wrap = aig::builder::word_equals_const(&mut aig, &bits, 2);
//! let inc = aig::builder::word_increment(&mut aig, &bits, aig::Lit::TRUE);
//! let zero = aig::builder::word_const(2, 0);
//! let next = aig::builder::word_mux(&mut aig, wrap, &zero, &inc);
//! for (id, n) in ids.iter().zip(next.iter()) {
//!     aig.set_next(*id, *n);
//! }
//! for threshold in [2u64, 3] {
//!     let bad = aig::builder::word_equals_const(&mut aig, &bits, threshold);
//!     aig.add_bad(bad);
//! }
//!
//! let result = verify_all(&aig, &Options::default());
//! assert_eq!(result.statuses[0].depth(), Some(2));
//! assert!(result.statuses[1].is_proved());
//! ```

pub mod bmc;
pub mod pdr;
pub mod scheduler;

use crate::engines::CancelToken;
use crate::{Engine, EngineStats, MultiResult, Options, PropertyStatus, StopReason};
use aig::Aig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use telemetry::{ArgValue, Telemetry};

/// Verifies every bad-state property of `aig` with the property
/// scheduler (COI grouping + racing multi-PDR/multi-BMC) — the
/// [`Engine::Portfolio`] flavour of [`Engine::verify_all`].
pub fn verify_all(aig: &Aig, options: &Options) -> MultiResult {
    Engine::Portfolio.verify_all(aig, options)
}

/// The dispatch behind [`Engine::verify_all_with_cancel`]: the staged
/// pipeline entry.  The design is reduced once by the preprocessing
/// passes, the backends run on the reduced model (the scheduler reusing
/// the pipeline's per-property COIs), and statuses are reconstructed to
/// original-design coordinates.
pub(crate) fn verify_all_with_engine(
    aig: &Aig,
    engine: Engine,
    options: &Options,
    cancel: &CancelToken,
) -> MultiResult {
    if !options.preprocess.enabled() {
        return verify_all_inner(aig, engine, options, cancel, None);
    }
    let prepared = crate::pipeline::prepare(aig, options);
    prepared.verify_all_with_cancel(engine, options, cancel)
}

/// Runs a multi-property backend directly on `aig`, with no
/// preprocessing stage.  `cois`, when given, are the per-property
/// sequential COIs of `aig` (the preprocessing pipeline's by-product)
/// for the scheduler's property grouping.
pub(crate) fn verify_all_inner(
    aig: &Aig,
    engine: Engine,
    options: &Options,
    cancel: &CancelToken,
    cois: Option<&[aig::coi::Coi]>,
) -> MultiResult {
    let props: Vec<usize> = (0..aig.num_bad()).collect();
    match engine {
        Engine::Bmc => bmc::verify_all_with_cancel(aig, &props, options, cancel, None),
        Engine::Pdr => {
            crate::engines::pdr::verify_all_with_cancel(aig, &props, options, cancel, None)
        }
        Engine::Portfolio => scheduler::verify_all_with_cancel(aig, options, cancel, cois),
        other => fallback_loop(aig, &props, other, options, cancel),
    }
}

/// The non-amortized reference: one engine run per property (directly on
/// `aig` — the caller has already preprocessed when asked to).  Used for
/// the engines without a multi backend (the interpolation family) and by
/// the agreement tests as the ground truth.
pub(crate) fn fallback_loop(
    aig: &Aig,
    props: &[usize],
    engine: Engine,
    options: &Options,
    cancel: &CancelToken,
) -> MultiResult {
    let start = Instant::now();
    let mut stats = EngineStats {
        visible_latches: aig.num_latches(),
        ..EngineStats::default()
    };
    let mut statuses = Vec::with_capacity(props.len());
    for &prop in props {
        let result = engine.dispatch(aig, prop, options, cancel);
        stats.absorb(&result.stats);
        statuses.push(PropertyStatus::from_result(&result));
    }
    stats.time = start.elapsed();
    MultiResult { statuses, stats }
}

/// The shared retirement board of a racing property group: the backends
/// working on the same properties publish conclusive statuses here, and
/// poll it to stop spending work on properties the other backend already
/// decided — per-property cancellation without tearing down either run.
///
/// Slots are indexed like the `props` slice handed to the backends.  The
/// first publisher of a slot wins; later answers for the same property
/// (the race window) are dropped — they agree on kind and depth by the
/// determinism contract, so nothing is lost.
pub(crate) struct RetireBoard {
    slots: Vec<Mutex<Option<PropertyStatus>>>,
    retired: Vec<AtomicBool>,
}

impl RetireBoard {
    /// A board for `n` undecided properties.
    pub fn new(n: usize) -> RetireBoard {
        RetireBoard {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            retired: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Returns `true` once some backend has decided property `slot`.
    pub fn is_retired(&self, slot: usize) -> bool {
        self.retired[slot].load(Ordering::Acquire)
    }

    /// Publishes a conclusive status for `slot`; returns `true` when this
    /// call decided the property (`false` when another backend won the
    /// race).
    pub fn publish(&self, slot: usize, status: PropertyStatus) -> bool {
        debug_assert!(status.is_conclusive());
        let mut guard = self.slots[slot].lock().expect("board poisoned");
        if guard.is_some() {
            return false;
        }
        *guard = Some(status);
        drop(guard);
        self.retired[slot].store(true, Ordering::Release);
        true
    }

    /// Removes and returns the published status of `slot`, if any.
    pub fn take(&self, slot: usize) -> Option<PropertyStatus> {
        self.slots[slot].lock().expect("board poisoned").take()
    }
}

/// The per-property status bookkeeping shared by the amortized backends:
/// the statuses under construction plus the board-synchronisation
/// protocol.  Keeping the protocol in one place is what guarantees the
/// backends treat externally-retired properties identically — a skipped
/// property must always be *recorded* as yielded, never left undecided
/// (an undecided slot would later be swept up by a backend's own
/// proof/give-up path and misreported).
pub(crate) struct StatusSlots<'a> {
    board: Option<&'a RetireBoard>,
    slots: Vec<Option<PropertyStatus>>,
    telemetry: Telemetry,
}

impl<'a> StatusSlots<'a> {
    /// Bookkeeping for `n` properties, optionally racing over `board`.
    /// Retirement-board traffic (decisions, give-ups, yields) is traced
    /// onto `telemetry`.
    pub fn new(n: usize, board: Option<&'a RetireBoard>, telemetry: Telemetry) -> StatusSlots<'a> {
        StatusSlots {
            board,
            slots: vec![None; n],
            telemetry,
        }
    }

    /// Positions still undecided, in index order.
    pub fn live(&self) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].is_none())
            .collect()
    }

    /// Returns `true` when every property has a status.
    pub fn all_decided(&self) -> bool {
        self.slots.iter().all(Option::is_some)
    }

    /// Records a conclusive status for slot `i` and publishes it to the
    /// board (the race's first publisher wins; a lost race still records
    /// locally — kinds and depths agree by the determinism contract).
    pub fn decide(&mut self, i: usize, status: PropertyStatus) {
        self.telemetry.instant_args("prop.decide", || {
            let (kind, depth) = status.kind_and_depth();
            let mut args = vec![
                ("prop", ArgValue::U64(i as u64)),
                ("status", ArgValue::Str(kind.to_string())),
            ];
            if let Some(depth) = depth {
                args.push(("depth", ArgValue::U64(depth as u64)));
            }
            args
        });
        if let Some(board) = self.board {
            board.publish(i, status.clone());
        }
        self.slots[i] = Some(status);
    }

    /// Marks every undecided slot inconclusive (budget exhausted).
    pub fn give_up(&mut self, reason: StopReason, bound_reached: usize) {
        let undecided = self.slots.iter().filter(|slot| slot.is_none()).count() as u64;
        if undecided > 0 {
            self.telemetry.instant_args("prop.giveup", || {
                vec![
                    ("props", ArgValue::U64(undecided)),
                    ("reason", ArgValue::Str(reason.to_string())),
                    ("bound", ArgValue::U64(bound_reached as u64)),
                ]
            });
        }
        for slot in &mut self.slots {
            if slot.is_none() {
                *slot = Some(PropertyStatus::Inconclusive {
                    reason: reason.clone(),
                    bound_reached,
                });
            }
        }
    }

    /// Records a `"retired"` placeholder for every undecided slot the
    /// other backend already decided (the scheduler replaces placeholders
    /// with the board's answers).
    pub fn sync_board(&mut self, bound_reached: usize) {
        let Some(board) = self.board else { return };
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() && board.is_retired(i) {
                self.telemetry
                    .instant_args("prop.retired", || vec![("prop", ArgValue::U64(i as u64))]);
                *slot = Some(PropertyStatus::Inconclusive {
                    reason: StopReason::Retired,
                    bound_reached,
                });
            }
        }
    }

    /// The in-loop form of [`sync_board`](Self::sync_board): yields slot
    /// `i` (recording the placeholder) when the other backend retired it
    /// mid-round; returns `true` when the caller must skip the property.
    pub fn yield_if_retired(&mut self, i: usize, bound_reached: usize) -> bool {
        if self.slots[i].is_some() {
            return true;
        }
        if self.board.is_some_and(|board| board.is_retired(i)) {
            self.telemetry
                .instant_args("prop.retired", || vec![("prop", ArgValue::U64(i as u64))]);
            self.slots[i] = Some(PropertyStatus::Inconclusive {
                reason: StopReason::Retired,
                bound_reached,
            });
            return true;
        }
        false
    }

    /// The final statuses.
    ///
    /// # Panics
    ///
    /// Panics if any property is still undecided.
    pub fn into_statuses(self) -> Vec<PropertyStatus> {
        self.slots
            .into_iter()
            .map(|slot| slot.expect("every property decided"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn board_first_publisher_wins() {
        let board = RetireBoard::new(2);
        assert!(!board.is_retired(0));
        assert!(board.publish(
            0,
            PropertyStatus::Falsified {
                depth: 3,
                cex: None
            }
        ));
        assert!(!board.publish(
            0,
            PropertyStatus::Proved {
                k_fp: 1,
                j_fp: 1,
                cert: None
            }
        ));
        assert!(board.is_retired(0));
        assert!(!board.is_retired(1));
        assert!(board.publish(
            1,
            PropertyStatus::Proved {
                k_fp: 2,
                j_fp: 1,
                cert: None
            }
        ));
        assert_eq!(
            board.take(0),
            Some(PropertyStatus::Falsified {
                depth: 3,
                cex: None
            })
        );
        assert_eq!(board.take(0), None, "take drains the slot");
    }

    #[test]
    fn fallback_loop_matches_per_property_runs() {
        let aig = workloads_counter();
        let options = Options::default().with_max_bound(12);
        let multi = fallback_loop(&aig, &[0, 1], Engine::ItpSeq, &options, &CancelToken::new());
        assert_eq!(multi.statuses.len(), 2);
        for (prop, status) in multi.statuses.iter().enumerate() {
            let single = Engine::ItpSeq.verify(&aig, prop, &options);
            assert!(status.agrees_with(&single.verdict), "property {prop}");
        }
        assert!(multi.stats.sat_calls > 0);
    }

    /// A counter with one failing (depth 2) and one holding property.
    fn workloads_counter() -> Aig {
        let mut aig = Aig::new();
        let (ids, bits) = aig::builder::latch_word(&mut aig, 2, 0);
        let wrap = aig::builder::word_equals_const(&mut aig, &bits, 2);
        let inc = aig::builder::word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(2, 0);
        let next = aig::builder::word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        for threshold in [2u64, 3] {
            let bad = aig::builder::word_equals_const(&mut aig, &bits, threshold);
            aig.add_bad(bad);
        }
        aig
    }
}
