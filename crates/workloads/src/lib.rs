//! Parametric synthetic benchmark circuits for the *Interpolation Sequences
//! Revisited* experiments.
//!
//! The paper evaluates on HWMCC'08 and proprietary industrial designs that
//! are not redistributable; this crate substitutes them with parametric
//! synthetic families that span the same axes the paper's analysis cares
//! about — shallow versus deep sequential behaviour, passing versus failing
//! safety properties, and designs with large amounts of property-irrelevant
//! state (the sweet spot of localization abstraction):
//!
//! * [`counter`] — modular and saturating counters (tunable diameters),
//! * [`token_ring`] — one-hot token rings (mutual exclusion),
//! * [`arbiter`] — round-robin arbiters with optional seeded bugs,
//! * [`fifo`] — FIFO occupancy controllers (overflow/underflow safety),
//! * [`traffic`] — interlocked traffic-light controllers,
//! * [`industrial`] — deep pipelines of control logic with irrelevant
//!   registers, standing in for the paper's `industrialA..E` rows,
//! * [`suite`] — the curated benchmark list used by the figure and table
//!   regenerators.
//!
//! # Example
//!
//! ```
//! let benchmarks = workloads::suite::mid_size();
//! assert!(benchmarks.len() >= 20);
//! let failing = benchmarks.iter().filter(|b| b.expect_fail == Some(true)).count();
//! assert!(failing >= 4, "the suite mixes passing and failing properties");
//! ```

pub mod arbiter;
pub mod counter;
pub mod fifo;
pub mod industrial;
pub mod suite;
pub mod token_ring;
pub mod traffic;

pub use suite::{Benchmark, BenchmarkClass, MultiBenchmark};
