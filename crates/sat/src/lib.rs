//! A CDCL SAT solver with resolution-proof logging, written for
//! interpolant extraction.
//!
//! Interpolation-based model checking needs more from its SAT solver than a
//! SAT/UNSAT answer: every refutation must come with a *resolution proof*
//! whose leaves are the original (partition-labelled) clauses, because Craig
//! interpolants and interpolation sequences are computed by annotating that
//! proof.  None of the existing pure-Rust solvers expose proofs in this
//! form, so the reproduction ships its own solver:
//!
//! * conflict-driven clause learning with first-UIP learning and
//!   recursive learned-clause minimization (proof-exact: the removals are
//!   recorded as real resolution steps),
//! * two-watched-literal propagation over a flat clause arena, with
//!   blocker literals and a binary-clause fast path so the hot loop
//!   rarely touches clause memory,
//! * LBD ("glue") tracking and periodic learned-clause database
//!   reduction with a compacting garbage collector — proof-aware:
//!   clauses referenced by recorded chains are pinned while proof
//!   logging is on ([`Solver::set_reduce_interval`]),
//! * VSIDS-style variable activities with a lazy heap,
//! * phase saving and Luby restarts,
//! * incremental assumptions with assumption-core extraction (used by the
//!   counterexample-based abstraction refinement),
//! * activation-literal clause retirement for the thousands of temporary
//!   `¬cube` clauses issued by IC3/PDR-style engines
//!   ([`IncrementalSolver`]), with periodic sweeps of the retired
//!   (root-satisfied) clauses,
//! * resolution chains recorded for every learned clause and for the final
//!   empty clause ([`Proof`]); logging is optional
//!   ([`Solver::set_proof_logging`]) and the incremental solver runs
//!   without it.
//!
//! # Example
//!
//! ```
//! use cnf::Lit;
//! use sat::{SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = Lit::positive(solver.new_var());
//! let b = Lit::positive(solver.new_var());
//! solver.add_clause([a, b], 1);
//! solver.add_clause([!a, b], 1);
//! solver.add_clause([!b], 2);
//! assert_eq!(solver.solve(), SolveResult::Unsat);
//! let proof = solver.proof().expect("refutation proof");
//! assert!(!proof.clauses.is_empty());
//! ```

mod arena;
mod govern;
mod incremental;
mod luby;
mod proof;
mod solver;

pub use cnf::{Clause, Cnf, Lit, Var};
pub use govern::{FaultKind, FaultPlan, FaultSite, MemoryBudget};
pub use incremental::{ClauseGuard, IncrementalSolver};
pub use proof::{Chain, ClauseOrigin, Proof, ProofClause};
pub use solver::{
    ProgressProbe, SolveResult, Solver, SolverStats, DEFAULT_PROBE_INTERVAL, DEFAULT_REDUCE_FIRST,
};
