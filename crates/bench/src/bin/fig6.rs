//! Regenerates Fig. 6: sorted run-time curves of the four engines
//! (ITP, ITPSEQ, SITPSEQ, ITPSEQCBA) over the benchmark suite.
//!
//! Run with `cargo run -p itpseq-bench --bin fig6 --release`.

use itpseq_bench::{experiment_options, run_engine, sorted_curve, RunRecord};
use mc::Engine;

fn main() {
    let suite = workloads::suite::full();
    let options = experiment_options();
    let engines = [
        Engine::Itp,
        Engine::ItpSeq,
        Engine::SerialItpSeq,
        Engine::ItpSeqCba,
    ];

    println!("# Fig. 6 — run time per instance, sorted per engine (ms)");
    println!(
        "# suite: {} instances, per-instance budget {:?}, max bound {}",
        suite.len(),
        options.timeout,
        options.max_bound
    );

    let mut curves = Vec::new();
    for engine in engines {
        let records: Vec<RunRecord> = suite
            .iter()
            .map(|b| run_engine(b, engine, &options))
            .collect();
        let solved = records
            .iter()
            .filter(|r| r.result.verdict.is_conclusive())
            .count();
        let proved = records
            .iter()
            .filter(|r| r.result.verdict.is_proved())
            .count();
        println!(
            "# {:<9} solved {:>3}/{:<3} (proved {:>3}, falsified {:>3})",
            engine.name(),
            solved,
            records.len(),
            proved,
            solved - proved
        );
        curves.push((engine, sorted_curve(&records, options.timeout)));
    }

    println!("instance {}", {
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        names.join(" ")
    });
    for i in 0..suite.len() {
        let row: Vec<String> = curves
            .iter()
            .map(|(_, curve)| format!("{:.1}", curve[i]))
            .collect();
        println!("{} {}", i + 1, row.join(" "));
    }
}
