//! Propositional variables, literals, clauses and partitioned CNF formulas.

use std::fmt;
use std::ops::Not;

/// A propositional variable, indexed from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its index.
    #[inline]
    pub fn new(index: u32) -> Var {
        Var(index)
    }

    /// Returns the variable index.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A propositional literal: a variable with a sign.
///
/// The encoding packs `(var << 1) | negated` into a `u32`, so literals can
/// directly index watch lists and assignment arrays in the SAT solver.
///
/// ```
/// use cnf::{Lit, Var};
/// let v = Var::new(3);
/// let p = Lit::positive(v);
/// assert_eq!(p.var(), v);
/// assert!(!(p.is_negative()));
/// assert!((!p).is_negative());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Creates the positive literal of `var`.
    #[inline]
    pub fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// Creates the negative literal of `var`.
    #[inline]
    pub fn negative(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Creates a literal from a variable and a sign (`true` = negated).
    #[inline]
    pub fn new(var: Var, negative: bool) -> Lit {
        Lit((var.0 << 1) | negative as u32)
    }

    /// Creates a literal from its packed code.
    #[inline]
    pub fn from_code(code: u32) -> Lit {
        Lit(code)
    }

    /// Returns the packed code of the literal.
    #[inline]
    pub fn code(self) -> u32 {
        self.0
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` when the literal is negated.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns `true` when the literal is not negated.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Creates the literal from a DIMACS-style signed integer.
    ///
    /// # Panics
    ///
    /// Panics when `value == 0`.
    pub fn from_dimacs(value: i64) -> Lit {
        assert!(value != 0, "dimacs literal cannot be zero");
        let var = Var((value.unsigned_abs() - 1) as u32);
        Lit::new(var, value < 0)
    }

    /// Returns the DIMACS-style signed integer of the literal.
    pub fn to_dimacs(self) -> i64 {
        let v = (self.var().index() + 1) as i64;
        if self.is_negative() {
            -v
        } else {
            v
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.var().index())
        } else {
            write!(f, "x{}", self.var().index())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A clause together with the interpolation partition it belongs to.
///
/// Partition indices follow the paper's `Γ_{1..n} = {A_1, …, A_n}` naming:
/// they are 1-based, and partition `0` is reserved for clauses that do not
/// participate in interpolation (for instance activation clauses used only
/// under assumptions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clause {
    /// The literals of the clause.
    pub lits: Vec<Lit>,
    /// 1-based partition index (`A_partition`); 0 means "no partition".
    pub partition: u32,
}

impl Clause {
    /// Creates a clause in the given partition.
    pub fn new(lits: Vec<Lit>, partition: u32) -> Clause {
        Clause { lits, partition }
    }

    /// Returns `true` when the clause contains no literals.
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }
}

/// A complete CNF formula: a variable count plus partition-labelled clauses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables; all clause literals reference variables
    /// `0..num_vars`.
    pub num_vars: u32,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Returns the largest partition index used by any clause.
    pub fn num_partitions(&self) -> u32 {
        self.clauses.iter().map(|c| c.partition).max().unwrap_or(0)
    }

    /// Evaluates the formula under a total assignment (`assignment[v]` is the
    /// value of variable `v`).  Used by tests and by the proof checker.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.lits
                .iter()
                .any(|l| assignment[l.var().index() as usize] != l.is_negative())
        })
    }
}

/// Incrementally builds a [`Cnf`], allocating fresh variables on demand and
/// tagging every emitted clause with the *current partition*.
#[derive(Clone, Debug, Default)]
pub struct CnfBuilder {
    next_var: u32,
    clauses: Vec<Clause>,
    partition: u32,
}

impl CnfBuilder {
    /// Creates an empty builder (current partition = 0).
    pub fn new() -> CnfBuilder {
        CnfBuilder::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.next_var);
        self.next_var += 1;
        v
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn new_lit(&mut self) -> Lit {
        Lit::positive(self.new_var())
    }

    /// Returns the number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.next_var
    }

    /// Returns the number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Sets the partition that subsequently added clauses will belong to.
    pub fn set_partition(&mut self, partition: u32) {
        self.partition = partition;
    }

    /// Returns the current partition.
    pub fn partition(&self) -> u32 {
        self.partition
    }

    /// Adds a clause in the current partition.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let lits: Vec<Lit> = lits.into_iter().collect();
        self.clauses.push(Clause::new(lits, self.partition));
    }

    /// Adds a unit clause in the current partition.
    pub fn add_unit(&mut self, lit: Lit) {
        self.add_clause([lit]);
    }

    /// Consumes the builder and returns the finished formula.
    pub fn into_cnf(self) -> Cnf {
        Cnf {
            num_vars: self.next_var,
            clauses: self.clauses,
        }
    }

    /// Returns a view of the clauses added so far.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_roundtrip() {
        let v = Var::new(11);
        let p = Lit::positive(v);
        let n = Lit::negative(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(n.is_negative());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn dimacs_conversion() {
        assert_eq!(Lit::from_dimacs(5).to_dimacs(), 5);
        assert_eq!(Lit::from_dimacs(-7).to_dimacs(), -7);
        assert_eq!(Lit::from_dimacs(1).var(), Var::new(0));
        assert!(Lit::from_dimacs(-1).is_negative());
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn dimacs_zero_is_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn builder_allocates_sequential_vars() {
        let mut b = CnfBuilder::new();
        assert_eq!(b.new_var().index(), 0);
        assert_eq!(b.new_var().index(), 1);
        assert_eq!(b.num_vars(), 2);
    }

    #[test]
    fn builder_tags_clauses_with_partition() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        b.set_partition(1);
        b.add_unit(x);
        b.set_partition(3);
        b.add_clause([!x]);
        let cnf = b.into_cnf();
        assert_eq!(cnf.clauses[0].partition, 1);
        assert_eq!(cnf.clauses[1].partition, 3);
        assert_eq!(cnf.num_partitions(), 3);
    }

    #[test]
    fn cnf_evaluation() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        let y = b.new_lit();
        b.add_clause([x, y]);
        b.add_clause([!x, y]);
        let cnf = b.into_cnf();
        assert!(cnf.evaluate(&[true, true]));
        assert!(cnf.evaluate(&[false, true]));
        assert!(!cnf.evaluate(&[true, false]));
    }

    #[test]
    fn clause_len_and_empty() {
        let c = Clause::new(vec![], 1);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        let c = Clause::new(vec![Lit::from_dimacs(1)], 2);
        assert!(!c.is_empty());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn display_formats() {
        let v = Var::new(2);
        assert_eq!(format!("{}", v), "x2");
        assert_eq!(format!("{}", Lit::positive(v)), "x2");
        assert_eq!(format!("{}", Lit::negative(v)), "¬x2");
    }
}
