//! Proof certificates: the evidence an engine hands out alongside its
//! verdict, in a shape an *independent* checker can validate without
//! trusting any engine code.
//!
//! Two kinds exist, mirroring the two conclusive verdicts:
//!
//! * [`Certificate::Invariant`] — an inductive invariant `Inv` witnessing
//!   `Proved`.  The checker (crates/certify) discharges three SAT queries
//!   against a *re-parsed* copy of the design: `init ⊆ Inv`,
//!   `Inv ∧ T ⇒ Inv'`, and `Inv ⇒ ¬bad`.  PDR emits its converged frame
//!   as clauses over latch literals; the interpolation engines emit the
//!   fixpoint reachability over-approximation as a small combinational
//!   cone over the latches.
//! * [`Certificate::Trace`] — a replayable input sequence witnessing
//!   `Falsified`.  The checker replays it with [`aig::simulate()`] and
//!   demands the bad output fire at exactly the reported depth.
//!
//! Certificates serialize to the `itpseq-cert/v1` JSON format (see
//! [`document_json`]); the writer here is hand-rolled like the rest of
//! the workspace's JSON emission (no serde in the dependency closure).

use aig::{Aig, AigNode};
use std::collections::HashMap;
use std::fmt::Write as _;

/// The evidence attached to a conclusive verdict.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// An inductive invariant witnessing a `Proved` verdict.
    Invariant(InvariantCert),
    /// A replayable counterexample input trace witnessing `Falsified`:
    /// one vector of primary-input values per cycle, `depth + 1` cycles.
    Trace(Vec<Vec<bool>>),
}

/// An inductive invariant over the design latches: the conjunction of
/// [`InvariantCert::clauses`] and (when present) the combinational
/// [`InvariantCert::cone`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantCert {
    /// Number of latches of the design the invariant talks about.
    pub num_latches: usize,
    /// CNF part: each clause is a disjunction of latch literals
    /// `(latch index, phase)` — `(i, true)` means "latch `i` is 1".
    /// PDR certificates are pure clause lists (the negations of the
    /// cubes in the converged frame).
    pub clauses: Vec<Vec<(usize, bool)>>,
    /// Circuit part: interpolation engines emit their fixpoint state set
    /// as an and-inverter cone over the latches.
    pub cone: Option<InvariantCone>,
}

/// A combinational and-inverter cone over the latches, encoded with
/// AIGER-style `u32` literals: `var = lit >> 1`, LSB = complemented.
/// Var `0` is the constant (lit `0` = false, `1` = true), vars
/// `1..=num_latches` stand for the latches (latch `i` → var `i + 1`),
/// and var `num_latches + 1 + j` is defined by `ands[j]` (fan-ins only
/// reference earlier vars, so the list is in topological order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantCone {
    /// And-node definitions `(left, right)` in topological order.
    pub ands: Vec<(u32, u32)>,
    /// The literal whose value is the invariant.
    pub root: u32,
}

impl InvariantCone {
    /// Exports the cone of `root` from a state-set manager `mgr` (one
    /// primary input per state dimension, as in `crate::state::StateSpace`).
    /// `latch_map[d]` names the design latch that dimension `d` stands
    /// for; pass the identity for unabstracted models.
    pub fn from_cone(
        mgr: &Aig,
        root: aig::Lit,
        num_latches: usize,
        latch_map: &[usize],
    ) -> InvariantCone {
        let mut ands = Vec::new();
        let mut var_of: HashMap<aig::NodeId, u32> = HashMap::new();
        var_of.insert(0, 0);
        // Iterative post-order over the cone, numbering and-nodes as
        // their fan-ins complete.
        let mut stack: Vec<(aig::NodeId, bool)> = vec![(root.node(), false)];
        while let Some((id, expanded)) = stack.pop() {
            if var_of.contains_key(&id) {
                continue;
            }
            match mgr.node(id) {
                AigNode::Const => {
                    var_of.insert(id, 0);
                }
                AigNode::Input { index } => {
                    let latch = latch_map[index];
                    debug_assert!(latch < num_latches);
                    var_of.insert(id, latch as u32 + 1);
                }
                AigNode::Latch { .. } => {
                    unreachable!("state-set managers have no latch nodes")
                }
                AigNode::And { left, right } => {
                    if expanded {
                        let l = var_of[&left.node()] << 1 | left.is_complemented() as u32;
                        let r = var_of[&right.node()] << 1 | right.is_complemented() as u32;
                        let var = num_latches as u32 + 1 + ands.len() as u32;
                        ands.push((l, r));
                        var_of.insert(id, var);
                    } else {
                        stack.push((id, true));
                        stack.push((left.node(), false));
                        stack.push((right.node(), false));
                    }
                }
            }
        }
        let root_var = var_of[&root.node()];
        InvariantCone {
            ands,
            root: root_var << 1 | root.is_complemented() as u32,
        }
    }
}

impl InvariantCert {
    /// Evaluates the invariant on a concrete latch valuation (clauses and
    /// cone conjoined).  Used by tests; the independent checker in
    /// crates/certify has its own decoder.
    pub fn eval(&self, latches: &[bool]) -> bool {
        assert_eq!(latches.len(), self.num_latches);
        for clause in &self.clauses {
            if !clause.iter().any(|&(latch, phase)| latches[latch] == phase) {
                return false;
            }
        }
        if let Some(cone) = &self.cone {
            let mut values = vec![false; self.num_latches + 1 + cone.ands.len()];
            for (i, &v) in latches.iter().enumerate() {
                values[i + 1] = v;
            }
            let lit_value =
                |values: &[bool], lit: u32| values[(lit >> 1) as usize] ^ (lit & 1 == 1);
            for (j, &(l, r)) in cone.ands.iter().enumerate() {
                values[self.num_latches + 1 + j] = lit_value(&values, l) && lit_value(&values, r);
            }
            if !lit_value(&values, cone.root) {
                return false;
            }
        }
        true
    }

    /// Compresses the clause list by subsumption: a clause whose literals
    /// are a subset of another's implies it, so the superset clause adds
    /// nothing to the conjunction and is dropped (duplicates count as
    /// mutually subsuming — one copy survives).  Returns the number of
    /// clauses removed.
    ///
    /// PDR invariants profit directly: the converged frame trace is
    /// subsumption-reduced *per insertion frame*, but a strong lemma
    /// learned at a low frame never evicts a weaker one parked at a
    /// higher frame, so the union that forms the invariant can carry
    /// redundant clauses.  Dropping implied clauses preserves the
    /// invariant as a state set exactly, so initiation, consecution and
    /// safety are untouched — certificates stay checkable, just smaller.
    pub fn compress(&mut self) -> usize {
        let before = self.clauses.len();
        if before < 2 {
            return 0;
        }
        // Sort each clause's literals, then order clauses by length so a
        // clause can only be subsumed by an earlier (or equal-length) one.
        let mut sorted: Vec<(usize, Vec<(usize, bool)>)> = self
            .clauses
            .iter()
            .enumerate()
            .map(|(i, clause)| {
                let mut lits = clause.clone();
                lits.sort_unstable();
                lits.dedup();
                (i, lits)
            })
            .collect();
        sorted.sort_by(|(ia, a), (ib, b)| a.len().cmp(&b.len()).then(ia.cmp(ib)));
        let subset = |small: &[(usize, bool)], big: &[(usize, bool)]| {
            let mut it = big.iter();
            small.iter().all(|lit| it.any(|other| other == lit))
        };
        let mut kept: Vec<(usize, Vec<(usize, bool)>)> = Vec::with_capacity(before);
        for (index, lits) in sorted {
            if !kept.iter().any(|(_, keeper)| subset(keeper, &lits)) {
                kept.push((index, lits));
            }
        }
        // Restore the original emission order of the survivors.
        kept.sort_by_key(|&(index, _)| index);
        let survivors: std::collections::HashSet<usize> =
            kept.iter().map(|&(index, _)| index).collect();
        let mut index = 0;
        self.clauses.retain(|_| {
            let keep = survivors.contains(&index);
            index += 1;
            keep
        });
        before - self.clauses.len()
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Certificate {
    /// The certificate as an `itpseq-cert/v1` JSON object (the value of a
    /// property record's `"certificate"` key).
    pub fn to_json(&self) -> String {
        match self {
            Certificate::Invariant(inv) => {
                let clauses = inv
                    .clauses
                    .iter()
                    .map(|clause| {
                        let lits = clause
                            .iter()
                            .map(|(latch, phase)| format!("[{latch},{phase}]"))
                            .collect::<Vec<_>>()
                            .join(",");
                        format!("[{lits}]")
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let mut json = format!(
                    "{{\"kind\":\"invariant\",\"num_latches\":{},\"clauses\":[{}]",
                    inv.num_latches, clauses
                );
                if let Some(cone) = &inv.cone {
                    let ands = cone
                        .ands
                        .iter()
                        .map(|(l, r)| format!("[{l},{r}]"))
                        .collect::<Vec<_>>()
                        .join(",");
                    let _ = write!(
                        json,
                        ",\"cone\":{{\"ands\":[{}],\"root\":{}}}",
                        ands, cone.root
                    );
                }
                json.push('}');
                json
            }
            Certificate::Trace(inputs) => {
                let frames = inputs
                    .iter()
                    .map(|frame| {
                        let bits = frame
                            .iter()
                            .map(|b| b.to_string())
                            .collect::<Vec<_>>()
                            .join(",");
                        format!("[{bits}]")
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{{\"kind\":\"trace\",\"inputs\":[{frames}]}}")
            }
        }
    }
}

/// One property's entry in an `itpseq-cert/v1` document.
#[derive(Clone, Debug)]
pub struct CertRecord {
    /// Bad-property index within the design.
    pub property: usize,
    /// Engine that produced the verdict, when the document mixes engines
    /// (the `table1` runner records all six per benchmark).
    pub engine: Option<String>,
    /// `"proved"`, `"falsified"` or `"inconclusive"`.
    pub verdict: String,
    /// Counterexample depth for falsified properties.
    pub depth: Option<usize>,
    /// The evidence, when the engine produced any.
    pub certificate: Option<Certificate>,
}

impl CertRecord {
    /// Builds a record from a single-property engine result.
    pub fn from_result(
        property: usize,
        engine: Option<&str>,
        result: &crate::EngineResult,
    ) -> CertRecord {
        let (verdict, depth) = match &result.verdict {
            crate::Verdict::Proved { .. } => ("proved", None),
            crate::Verdict::Falsified { depth } => ("falsified", Some(*depth)),
            crate::Verdict::Inconclusive { .. } => ("inconclusive", None),
        };
        CertRecord {
            property,
            engine: engine.map(str::to_string),
            verdict: verdict.to_string(),
            depth,
            certificate: result.certificate.clone(),
        }
    }

    /// Builds a record from a multi-property status.
    pub fn from_status(
        property: usize,
        engine: Option<&str>,
        status: &crate::PropertyStatus,
    ) -> CertRecord {
        let (verdict, depth, certificate) = match status {
            crate::PropertyStatus::Proved { cert, .. } => (
                "proved",
                None,
                cert.as_ref()
                    .map(|inv| Certificate::Invariant(inv.as_ref().clone())),
            ),
            crate::PropertyStatus::Falsified { depth, cex } => (
                "falsified",
                Some(*depth),
                cex.as_ref().map(|t| Certificate::Trace(t.clone())),
            ),
            crate::PropertyStatus::Inconclusive { .. } => ("inconclusive", None, None),
        };
        CertRecord {
            property,
            engine: engine.map(str::to_string),
            verdict: verdict.to_string(),
            depth,
            certificate,
        }
    }

    fn to_json(&self) -> String {
        let mut json = format!("{{\"property\":{}", self.property);
        if let Some(engine) = &self.engine {
            let _ = write!(json, ",\"engine\":\"{}\"", json_escape(engine));
        }
        let _ = write!(json, ",\"verdict\":\"{}\"", json_escape(&self.verdict));
        if let Some(depth) = self.depth {
            let _ = write!(json, ",\"depth\":{depth}");
        }
        if let Some(cert) = &self.certificate {
            let _ = write!(json, ",\"certificate\":{}", cert.to_json());
        }
        json.push('}');
        json
    }
}

/// Serializes a full `itpseq-cert/v1` document.  `design` names the
/// `.aag` file (written next to the document) the certificates talk
/// about; the checker re-parses that file rather than trusting any
/// in-memory design.
pub fn document_json(design: &str, records: &[CertRecord]) -> String {
    let body = records
        .iter()
        .map(CertRecord::to_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    format!(
        "{{\n  \"schema\": \"itpseq-cert/v1\",\n  \"design\": \"{}\",\n  \"properties\": [\n    {}\n  ]\n}}\n",
        json_escape(design),
        body
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cone_export_matches_manager_eval() {
        let mut mgr = Aig::new();
        let a = aig::Lit::positive(mgr.add_input());
        let b = aig::Lit::positive(mgr.add_input());
        let ab = mgr.and(a, !b);
        let set = mgr.or(ab, !a);
        let cone = InvariantCone::from_cone(&mgr, set, 2, &[0, 1]);
        let cert = InvariantCert {
            num_latches: 2,
            clauses: Vec::new(),
            cone: Some(cone),
        };
        for latches in [[false, false], [false, true], [true, false], [true, true]] {
            assert_eq!(
                cert.eval(&latches),
                mgr.eval(set, &latches, &[]),
                "latches {latches:?}"
            );
        }
    }

    #[test]
    fn cone_export_handles_constants_and_latch_maps() {
        let mut mgr = Aig::new();
        let d = aig::Lit::positive(mgr.add_input());
        let set = mgr.and(d, aig::Lit::TRUE);
        // Dimension 0 stands for design latch 2 of a 3-latch design.
        let cone = InvariantCone::from_cone(&mgr, set, 3, &[2]);
        let cert = InvariantCert {
            num_latches: 3,
            clauses: Vec::new(),
            cone: Some(cone),
        };
        assert!(cert.eval(&[false, false, true]));
        assert!(!cert.eval(&[true, true, false]));
    }

    #[test]
    fn clause_eval() {
        // (l0 ∨ ¬l1) ∧ (l1)
        let cert = InvariantCert {
            num_latches: 2,
            clauses: vec![vec![(0, true), (1, false)], vec![(1, true)]],
            cone: None,
        };
        assert!(cert.eval(&[true, true]));
        assert!(!cert.eval(&[false, true]));
        assert!(!cert.eval(&[true, false]));
    }

    #[test]
    fn compression_drops_subsumed_and_duplicate_clauses() {
        let mut cert = InvariantCert {
            num_latches: 3,
            clauses: vec![
                // Superset of the unit (l1) below: implied, dropped.
                vec![(0, true), (1, true)],
                vec![(1, true)],
                // Untouched: no other clause's literals are a subset.
                vec![(0, false), (2, true)],
                // Duplicate of the unit (modulo literal order): dropped.
                vec![(1, true)],
                // Subsumed by (¬l0 ∨ l2) above despite being listed later.
                vec![(2, true), (0, false), (1, false)],
            ],
            cone: None,
        };
        let reference = cert.clone();
        assert_eq!(cert.compress(), 3);
        assert_eq!(
            cert.clauses,
            vec![vec![(1, true)], vec![(0, false), (2, true)]]
        );
        assert_eq!(cert.compress(), 0, "compression is idempotent");
        // Same state set: every valuation agrees with the uncompressed form.
        for v in 0..8u32 {
            let latches: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(
                cert.eval(&latches),
                reference.eval(&latches),
                "valuation {v}"
            );
        }
    }

    #[test]
    fn compression_leaves_irredundant_certificates_alone() {
        let mut cert = InvariantCert {
            num_latches: 2,
            clauses: vec![vec![(0, true), (1, false)], vec![(0, false), (1, true)]],
            cone: None,
        };
        let reference = cert.clauses.clone();
        assert_eq!(cert.compress(), 0);
        assert_eq!(cert.clauses, reference);
        let mut empty = InvariantCert {
            num_latches: 1,
            clauses: Vec::new(),
            cone: None,
        };
        assert_eq!(empty.compress(), 0);
    }

    #[test]
    fn document_shape() {
        let records = vec![
            CertRecord {
                property: 0,
                engine: Some("PDR".to_string()),
                verdict: "proved".to_string(),
                depth: None,
                certificate: Some(Certificate::Invariant(InvariantCert {
                    num_latches: 1,
                    clauses: vec![vec![(0, false)]],
                    cone: None,
                })),
            },
            CertRecord {
                property: 1,
                engine: None,
                verdict: "falsified".to_string(),
                depth: Some(2),
                certificate: Some(Certificate::Trace(vec![
                    vec![true],
                    vec![false],
                    vec![true],
                ])),
            },
        ];
        let doc = document_json("toggle.aag", &records);
        assert!(doc.contains("\"schema\": \"itpseq-cert/v1\""));
        assert!(doc.contains("\"design\": \"toggle.aag\""));
        assert!(doc.contains("\"kind\":\"invariant\""));
        assert!(doc.contains("\"clauses\":[[[0,false]]]"));
        assert!(doc.contains("\"kind\":\"trace\""));
        assert!(doc.contains("\"inputs\":[[true],[false],[true]]"));
        assert!(doc.contains("\"depth\":2"));
    }
}
