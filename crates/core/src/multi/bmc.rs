//! Amortized multi-property bounded model checking.
//!
//! One [`cnf::IncrementalUnroller`] and one long-lived
//! [`sat::IncrementalSolver`] serve *all* bad-state properties of the
//! design.  Each bound extends the shared unrolling by exactly one frame
//! — so the frame-encoding volume across a `max_bound = K` run is `O(K)`
//! regardless of the property count, where the per-property
//! [`Engine::verify`](crate::Engine::verify) loop pays `O(K·P)` — and
//! then checks every live property's target at that bound:
//!
//! * **exact-k / exact-assume-k** — the target `¬p_i(V^k)` is a solve
//!   *assumption*, so property `i`'s target never constrains property
//!   `j`'s query and nothing has to be retracted when the bound grows.
//!   Under assume-k, once property `i` survives bound `k` the permanent
//!   unit `p_i(V^k)` is added — sound for *every* later query on the
//!   shared solver, because frame `k` holds exactly the states reachable
//!   in `k` steps and property `i` was just shown unviolated there.
//! * **bound-k** — each live property chains a Plaisted–Greenbaum-style
//!   target literal `d_i^k ⇒ d_i^{k-1} ∨ ¬p_i(V^k)` (variables allocated
//!   by the unroller, the single numbering authority) and assumes
//!   `d_i^k`.  Assumption polarity only ever activates the current
//!   bound's chain, so no retirement is needed and per-property chains
//!   cannot interfere — unlike an [assertion
//!   group](sat::IncrementalSolver::assert_group), which `solve`
//!   activates unconditionally and which would therefore force *every*
//!   property's disjunction into every query.
//!
//! A satisfiable answer retires the property at that (minimal — all
//! earlier bounds were refuted) depth and reads the violating input
//! trace off the model; the solver, learned clauses and all, keeps
//! serving the survivors.  Retired properties stop having their bad
//! cones encoded at later frames.

use crate::engines::{CancelToken, EngineProbe, RunBudget};
use crate::multi::{RetireBoard, StatusSlots};
use crate::{EngineStats, MultiResult, Options, PropertyStatus};
use aig::Aig;
use cnf::{BmcCheck, IncrementalUnroller, Lit};
use sat::{IncrementalSolver, SolveResult};
use std::time::Instant;
use telemetry::ArgValue;

/// Verifies the bad-state properties `props` of `aig` in one amortized
/// BMC run; `statuses[i]` reports on property `props[i]`.
///
/// With a [`RetireBoard`], conclusive statuses are published there and
/// properties the *other* backend already decided are dropped from the
/// live set (their returned status is an `Inconclusive` placeholder with
/// reason `"retired"`; the scheduler replaces it with the board's
/// answer).
pub(crate) fn verify_all_with_cancel(
    aig: &Aig,
    props: &[usize],
    options: &Options,
    cancel: &CancelToken,
    board: Option<&RetireBoard>,
) -> MultiResult {
    MultiBmc::new(aig, props, options, board).run(cancel)
}

/// One slot of the per-property encoding bookkeeping (the status side
/// lives in the shared [`StatusSlots`]).
struct Slot {
    /// Index of the bad-state property in the design.
    property: usize,
    /// The property's bad literal per unrolled frame (`bads[f]` = frame
    /// `f`); retired properties stop growing theirs.
    bads: Vec<Lit>,
    /// The bound-k target chain literal `d^k` (bound-k formulation only).
    bound_target: Option<Lit>,
}

struct MultiBmc<'a> {
    aig: &'a Aig,
    options: &'a Options,
    start: Instant,
    stats: EngineStats,
    slots: Vec<Slot>,
    statuses: StatusSlots<'a>,
}

impl<'a> MultiBmc<'a> {
    fn new(
        aig: &'a Aig,
        props: &'a [usize],
        options: &'a Options,
        board: Option<&'a RetireBoard>,
    ) -> MultiBmc<'a> {
        MultiBmc {
            aig,
            options,
            start: Instant::now(),
            stats: EngineStats {
                visible_latches: aig.num_latches(),
                ..EngineStats::default()
            },
            slots: props
                .iter()
                .map(|&property| Slot {
                    property,
                    bads: Vec::new(),
                    bound_target: None,
                })
                .collect(),
            statuses: StatusSlots::new(props.len(), board, options.telemetry.clone()),
        }
    }

    fn finish(mut self) -> MultiResult {
        self.stats.time = self.start.elapsed();
        MultiResult {
            statuses: self.statuses.into_statuses(),
            stats: self.stats,
        }
    }

    /// Loads the unroller's pending delta clauses into the solver.
    fn drain(&mut self, unroller: &mut IncrementalUnroller, solver: &mut IncrementalSolver) {
        for clause in unroller.pending_clauses() {
            solver.add_clause(clause.lits.iter().copied());
        }
        self.stats.clauses_encoded += unroller.pending_clauses().len() as u64;
        unroller.mark_drained();
    }

    /// Reads the violating input trace (cycles `0..=depth`) off the
    /// solver's model.  Inputs the formula never mentions are
    /// unconstrained and read as `false`.
    fn extract_cex(
        &self,
        unroller: &mut IncrementalUnroller,
        solver: &IncrementalSolver,
        depth: usize,
    ) -> Vec<Vec<bool>> {
        (0..=depth)
            .map(|frame| {
                (0..self.aig.num_inputs())
                    .map(|input| {
                        let lit = unroller.input_lit(frame, input);
                        if lit.var().index() < solver.num_vars() {
                            solver.lit_value(lit).unwrap_or(false)
                        } else {
                            false
                        }
                    })
                    .collect()
            })
            .collect()
    }

    fn run(mut self, cancel: &CancelToken) -> MultiResult {
        let telemetry = self.options.telemetry.clone();
        let _run = telemetry.span_args("BMC.multi", || {
            vec![
                ("props", ArgValue::U64(self.slots.len() as u64)),
                ("latches", ArgValue::U64(self.aig.num_latches() as u64)),
            ]
        });
        let budget = RunBudget::arm(cancel, self.start, self.options);
        if self.slots.is_empty() {
            return self.finish();
        }

        let encode_start = Instant::now();
        let mut unroller = IncrementalUnroller::new(self.aig);
        unroller.assert_initial(0);
        let mut solver = IncrementalSolver::new();
        // All variables are unroller-allocated; recycling would only
        // record a dead replay copy of the whole unrolling.
        solver.set_recycle_threshold(0);
        solver.set_reduce_interval(self.options.reduce_interval());
        budget.govern_incremental(&mut solver);
        let probe = EngineProbe::new(&telemetry, self.options.probe_interval);
        solver.set_progress_probe(probe.probe());
        let frame0 = unroller.bad_lits(0, self.slots.iter().map(|slot| slot.property));
        for (slot, bad) in self.slots.iter_mut().zip(frame0) {
            slot.bads.push(bad);
        }
        self.stats.encode_time += encode_start.elapsed();
        self.drain(&mut unroller, &mut solver);

        // Depth 0: the initial states themselves, one assumption per
        // property — same answers as the per-property depth-0 check.
        for i in 0..self.slots.len() {
            if self.statuses.yield_if_retired(i, 0) {
                continue;
            }
            let bad0 = self.slots[i].bads[0];
            self.stats.sat_calls += 1;
            let before = solver.stats();
            let result = solver.solve(&[bad0]);
            self.stats.add_solver_delta(solver.stats() - before);
            match result {
                SolveResult::Sat => {
                    let cex = self.extract_cex(&mut unroller, &solver, 0);
                    self.statuses.decide(
                        i,
                        PropertyStatus::Falsified {
                            depth: 0,
                            cex: Some(cex),
                        },
                    );
                }
                SolveResult::Unsat => {}
                SolveResult::Interrupted => {
                    self.statuses.give_up(budget.interrupt_reason(), 0);
                    return self.finish();
                }
            }
        }

        for k in 1..=self.options.max_bound {
            let _bound = telemetry.span_args("bound", || vec![("k", ArgValue::U64(k as u64))]);
            probe.set_bound(k);
            self.statuses.sync_board(k - 1);
            let live = self.statuses.live();
            if live.is_empty() {
                return self.finish();
            }
            if let Some(reason) = budget.stop_reason() {
                self.statuses.give_up(reason, k - 1);
                return self.finish();
            }

            // One frame extension serves every live property.
            let encode_start = Instant::now();
            unroller.add_frame();
            for &i in &live {
                let property = self.slots[i].property;
                let bad = unroller.bad_lit(k, property);
                self.slots[i].bads.push(bad);
            }
            self.stats.encode_time += encode_start.elapsed();
            self.drain(&mut unroller, &mut solver);

            // assume-k: every live property survived bound k-1, so its
            // non-violation there is a permanent (and globally sound)
            // constraint from now on.
            if self.options.check == BmcCheck::ExactAssume && k >= 2 {
                for &i in &live {
                    let bad_prev = self.slots[i].bads[k - 1];
                    solver.add_clause([!bad_prev]);
                    self.stats.clauses_encoded += 1;
                }
            }

            for i in live {
                if self.statuses.yield_if_retired(i, k - 1) {
                    continue;
                }
                let assumptions = match self.options.check {
                    BmcCheck::Exact | BmcCheck::ExactAssume => vec![self.slots[i].bads[k]],
                    BmcCheck::Bound => {
                        // Extend the property's target chain: assuming the
                        // new head requires a violation at *some* depth
                        // ≤ k.  The implication only fires when its head
                        // is assumed, so stale heads need no retirement
                        // and chains of different properties never
                        // interact.
                        let encode_start = Instant::now();
                        let head = unroller.builder_mut().new_lit();
                        let mut clause = vec![!head];
                        match self.slots[i].bound_target {
                            Some(prev) => {
                                clause.push(prev);
                                clause.push(self.slots[i].bads[k]);
                            }
                            None => clause.extend(self.slots[i].bads.iter().copied()),
                        }
                        solver.add_clause(clause);
                        self.stats.clauses_encoded += 1;
                        self.stats.encode_time += encode_start.elapsed();
                        self.slots[i].bound_target = Some(head);
                        vec![head]
                    }
                };
                self.stats.sat_calls += 1;
                let before = solver.stats();
                let result = solver.solve(&assumptions);
                self.stats.add_solver_delta(solver.stats() - before);
                match result {
                    SolveResult::Sat => {
                        // Minimal by construction: bounds < k were refuted.
                        let cex = self.extract_cex(&mut unroller, &solver, k);
                        self.statuses.decide(
                            i,
                            PropertyStatus::Falsified {
                                depth: k,
                                cex: Some(cex),
                            },
                        );
                    }
                    SolveResult::Unsat => {}
                    SolveResult::Interrupted => {
                        self.statuses.give_up(budget.interrupt_reason(), k - 1);
                        return self.finish();
                    }
                }
            }
        }
        self.statuses
            .give_up(crate::StopReason::BoundExhausted, self.options.max_bound);
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use std::time::Duration;

    fn options() -> Options {
        Options::default()
            .with_timeout(Duration::from_secs(10))
            .with_max_bound(24)
    }

    fn multi_counter() -> Aig {
        workloads::counter::modular_multi(4, 10, &[3, 11, 7, 15])
    }

    #[test]
    fn statuses_match_the_per_property_loop() {
        let aig = multi_counter();
        for check in [BmcCheck::Bound, BmcCheck::Exact, BmcCheck::ExactAssume] {
            let options = options().with_check(check);
            let multi = Engine::Bmc.verify_all(&aig, &options);
            for prop in 0..aig.num_bad() {
                let single = Engine::Bmc.verify(&aig, prop, &options);
                assert!(
                    multi.statuses[prop].agrees_with(&single.verdict),
                    "{check:?} property {prop}: {} vs {}",
                    multi.statuses[prop],
                    single.verdict
                );
            }
        }
    }

    #[test]
    fn depth_zero_violations_are_caught_per_property() {
        let aig = workloads::counter::modular_multi(3, 6, &[0, 4, 6]);
        let multi = Engine::Bmc.verify_all(&aig, &options());
        assert_eq!(multi.statuses[0].depth(), Some(0));
        assert_eq!(multi.statuses[1].depth(), Some(4));
        assert!(!multi.statuses[2].is_conclusive(), "threshold 6 never hit");
    }

    #[test]
    fn counterexample_traces_replay_through_simulation() {
        let aig = workloads::counter::modular_multi(4, 12, &[5, 9]);
        let multi = Engine::Bmc.verify_all(&aig, &options());
        for (prop, status) in multi.statuses.iter().enumerate() {
            let PropertyStatus::Falsified { depth, cex } = status else {
                panic!("property {prop} must be falsified, got {status}");
            };
            let cex = cex.as_ref().expect("multi-BMC attaches traces");
            assert_eq!(cex.len(), depth + 1);
            let trace = aig::simulate(&aig, cex);
            assert!(
                trace.bad[*depth][prop],
                "property {prop}: trace must exhibit the bad state at depth {depth}"
            );
        }
    }

    #[test]
    fn empty_property_list_finishes_immediately() {
        let aig = multi_counter();
        let result = verify_all_with_cancel(&aig, &[], &options(), &CancelToken::new(), None);
        assert!(result.statuses.is_empty());
        assert_eq!(result.stats.sat_calls, 0);
    }

    #[test]
    fn cancellation_reaches_every_live_property() {
        let aig = multi_counter();
        let cancel = CancelToken::new();
        cancel.cancel();
        let result = verify_all_with_cancel(&aig, &[0, 1, 2, 3], &options(), &cancel, None);
        for status in &result.statuses {
            match status {
                PropertyStatus::Inconclusive { reason, .. } => assert_eq!(reason, "cancelled"),
                other => panic!("cancelled run must be inconclusive, got {other}"),
            }
        }
    }

    #[test]
    fn encoding_is_amortized_across_properties() {
        // The acceptance criterion: the shared unrolling makes the total
        // clauses encoded O(K + P) where the per-property loop pays
        // O(K·P).
        let aig = multi_counter();
        let options = options().with_max_bound(16);
        let multi = Engine::Bmc.verify_all(&aig, &options);
        let mut loop_total = 0;
        for prop in 0..aig.num_bad() {
            loop_total += Engine::Bmc
                .verify(&aig, prop, &options)
                .stats
                .clauses_encoded;
        }
        assert!(
            multi.stats.clauses_encoded < loop_total,
            "multi {} must beat the loop {}",
            multi.stats.clauses_encoded,
            loop_total
        );
    }
}
