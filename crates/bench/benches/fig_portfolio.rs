//! Criterion group racing `Engine::Portfolio` against its own entrants
//! (PDR, ITPSEQCBA, BMC) across the full benchmark suite.
//!
//! The portfolio's value proposition is worst-case latency: per instance
//! it should track the *fastest* entrant (plus cancellation overhead),
//! where every single engine has instances it loses badly.  The second
//! group measures PDR's parallel frame phases against the sequential
//! reference on the industrial-style designs, where propagation and
//! generalization dominate.

use criterion::{criterion_group, criterion_main, Criterion};
use mc::{Engine, Options};
use std::time::Duration;

fn fig_portfolio_race(c: &mut Criterion) {
    let options = Options::default()
        .with_timeout(Duration::from_secs(5))
        .with_max_bound(40);
    let mut group = c.benchmark_group("fig_portfolio");
    group.sample_size(10);
    for benchmark in workloads::suite::full() {
        for engine in [
            Engine::Portfolio,
            Engine::Pdr,
            Engine::ItpSeqCba,
            Engine::Bmc,
        ] {
            group.bench_function(format!("{}/{}", engine.name(), benchmark.name), |b| {
                b.iter(|| engine.verify(&benchmark.aig, 0, &options))
            });
        }
    }
    group.finish();
}

fn fig_portfolio_parallel_pdr(c: &mut Criterion) {
    let sequential = Options::default()
        .with_timeout(Duration::from_secs(5))
        .with_max_bound(40);
    let parallel = sequential.clone().with_threads(0); // 0 = auto
    let mut group = c.benchmark_group("fig_portfolio_pdr_threads");
    group.sample_size(10);
    for benchmark in workloads::suite::industrial() {
        group.bench_function(format!("PDR-seq/{}", benchmark.name), |b| {
            b.iter(|| Engine::Pdr.verify(&benchmark.aig, 0, &sequential))
        });
        group.bench_function(format!("PDR-par/{}", benchmark.name), |b| {
            b.iter(|| Engine::Pdr.verify(&benchmark.aig, 0, &parallel))
        });
    }
    group.finish();
}

criterion_group!(benches, fig_portfolio_race, fig_portfolio_parallel_pdr);
criterion_main!(benches);
