//! Incremental solving with activation-literal clause retirement.
//!
//! The base [`Solver`](crate::Solver) only ever *adds* clauses.  That is
//! enough for the one-shot refutations of the interpolation engines, but
//! IC3/PDR-style engines issue thousands of queries against a slowly
//! growing clause database and need *temporary* clauses: the `¬cube` part
//! of a relative-induction query must disappear once the query is
//! answered.
//!
//! [`IncrementalSolver`] implements the classic activation-literal scheme:
//!
//! * a *permanent* clause `C` is added as-is,
//! * a *retirable* clause `C` is added as `(¬a ∨ C)` for a fresh
//!   activation variable `a`; the clause is only in force while `a` is
//!   assumed true,
//! * [`retire`](IncrementalSolver::retire) adds the unit `¬a`, which
//!   permanently satisfies (and thereby deactivates) the guarded clause,
//! * [`assert_group`](IncrementalSolver::assert_group) guards a whole
//!   *set* of clauses behind one caller-allocated activation literal (an
//!   assertion group), retired as a unit — the shape the incremental BMC
//!   engine uses for its per-bound target clauses,
//! * [`solve`](IncrementalSolver::solve) automatically assumes every
//!   live activation literal, so callers only pass their own assumptions,
//! * [`assumption_core`](IncrementalSolver::assumption_core) filters the
//!   activation literals back out, so callers see a core over *their*
//!   assumptions only.
//!
//! # Activation-variable recycling
//!
//! A retired activation variable is pinned false forever, so its slot can
//! never be reused directly — a long PDR run would leak one variable per
//! relative-induction query.  The solver therefore *recycles*: once every
//! [`recycle threshold`](IncrementalSolver::set_recycle_threshold) many
//! retirements (and only while no retirable clause is live), it rebuilds
//! the underlying solver from the recorded base formula and permanent
//! clauses, compacting the variable range back to the caller's own
//! variables.  Search statistics, VSIDS activities and saved phases are
//! carried across rebuilds (so the branching heuristics stay warm);
//! learned clauses and cached models are discarded.
//!
//! Independent of recycling, every 32 retirements the solver sweeps
//! root-satisfied clauses — the ones the retirement units permanently
//! deactivated — out of the clause database and the watch lists
//! ([`Solver::remove_root_satisfied`]), so propagation does not slow down
//! linearly in the number of retired queries.
//!
//! Recycling silently disables itself when caller variables and
//! activation variables interleave (a [`new_var`](IncrementalSolver::new_var)
//! or implicit clause-literal allocation after the first retirable
//! clause), because a rebuild could not preserve the caller's variable
//! numbering in that case.
//!
//! ```
//! use cnf::Lit;
//! use sat::{IncrementalSolver, SolveResult};
//!
//! let mut solver = IncrementalSolver::new();
//! let x = Lit::positive(solver.new_var());
//! solver.add_clause([x]);
//! let guard = solver.add_retirable_clause([!x]);
//! assert_eq!(solver.solve(&[]), SolveResult::Unsat);
//! solver.retire(guard);
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! ```

use crate::solver::{ProgressProbe, SolveResult, Solver, SolverStats, DEFAULT_REDUCE_FIRST};
use cnf::{Cnf, Lit, Var};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Default number of retirements between two recycling rebuilds.
const DEFAULT_RECYCLE_THRESHOLD: u64 = 4096;

/// Retirements between two root-satisfied sweeps of the clause database
/// (see [`Solver::remove_root_satisfied`]): every retirement permanently
/// satisfies its guarded clauses, and the sweep removes them from the
/// watch lists instead of letting them clog propagation forever.
const RETIRE_SWEEP_INTERVAL: u64 = 32;

/// Handle of a retirable clause: the activation literal guarding it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClauseGuard(Lit);

/// A [`Solver`] wrapper supporting temporary clauses through activation
/// literals, with periodic recycling of retired activation variables.
///
/// See the module-level documentation of `sat::incremental` for the
/// scheme and an example.
#[derive(Clone, Debug)]
pub struct IncrementalSolver {
    solver: Solver,
    /// Activation literals of clauses that are still in force.
    live: Vec<Lit>,
    /// Count of clauses retired so far (statistics only).
    retired: u64,
    /// The formula the solver was seeded with, replayed on recycling.
    base: Cnf,
    /// Permanent clauses added after construction, replayed on recycling.
    permanent: Vec<Vec<Lit>>,
    /// Number of caller-owned variables (base formula plus `new_var`).
    user_vars: u32,
    /// Set when caller variables were allocated after activation
    /// variables; disables recycling to preserve variable numbering.
    interleaved: bool,
    /// Retirements since the last rebuild.
    retired_since_rebuild: u64,
    /// Retirements between rebuilds (0 disables recycling).
    recycle_threshold: u64,
    /// Total activation variables reclaimed by rebuilds.
    recycled_vars: u64,
    /// Statistics of solvers discarded by rebuilds.
    stats_offset: SolverStats,
    /// Interrupt flag re-installed on every rebuilt solver.
    interrupt: Option<Arc<AtomicBool>>,
    /// Progress probe re-installed on every rebuilt solver.
    probe: Option<ProgressProbe>,
    /// Conflict budget re-installed on every rebuilt solver.
    conflict_limit: Option<u64>,
    /// Learned-DB reduction trigger re-installed on every rebuilt solver
    /// (`None` disables reduction; see [`Solver::set_reduce_interval`]).
    reduce_interval: Option<u64>,
    /// Shared memory budget re-installed on every rebuilt solver.
    mem_budget: Option<crate::MemoryBudget>,
    /// Fault-injection plan re-installed on every rebuilt solver.
    faults: crate::FaultPlan,
    /// Retirements since the last root-satisfied sweep.
    retired_since_sweep: u64,
}

impl Default for IncrementalSolver {
    fn default() -> IncrementalSolver {
        // Incremental consumers (IC3/PDR, the incremental BMC engine) only
        // need SAT/UNSAT answers and cores, never proofs — run the solver
        // without chain recording so learned-DB reduction is unrestricted.
        let mut solver = Solver::new();
        solver.set_proof_logging(false);
        IncrementalSolver {
            solver,
            live: Vec::new(),
            retired: 0,
            base: Cnf::default(),
            permanent: Vec::new(),
            user_vars: 0,
            interleaved: false,
            retired_since_rebuild: 0,
            recycle_threshold: DEFAULT_RECYCLE_THRESHOLD,
            recycled_vars: 0,
            stats_offset: SolverStats::default(),
            interrupt: None,
            probe: None,
            conflict_limit: None,
            reduce_interval: Some(DEFAULT_REDUCE_FIRST),
            mem_budget: None,
            faults: crate::FaultPlan::none(),
            retired_since_sweep: 0,
        }
    }
}

impl IncrementalSolver {
    /// Creates an empty incremental solver.
    pub fn new() -> IncrementalSolver {
        IncrementalSolver::default()
    }

    /// Creates an incremental solver preloaded with a base formula.
    pub fn with_base(cnf: &Cnf) -> IncrementalSolver {
        let mut solver = IncrementalSolver::new();
        solver.base = cnf.clone();
        solver.user_vars = cnf.num_vars;
        solver.solver.add_cnf(cnf);
        solver
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        if self.solver.num_vars() > self.user_vars {
            // Caller variables now interleave with activation variables; a
            // rebuild could not keep this variable's index stable.
            self.interleaved = true;
        } else {
            self.user_vars += 1;
        }
        self.solver.new_var()
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.solver.num_vars()
    }

    /// Number of live clauses in the underlying solver (retired clauses
    /// leave this count once a periodic sweep or rebuild culls them).
    pub fn num_clauses(&self) -> usize {
        self.solver.num_clauses()
    }

    /// Number of retirable clauses still in force.
    pub fn num_live(&self) -> usize {
        self.live.len()
    }

    /// Number of clauses retired so far.
    pub fn num_retired(&self) -> u64 {
        self.retired
    }

    /// Total activation variables reclaimed by recycling rebuilds.
    pub fn num_recycled_vars(&self) -> u64 {
        self.recycled_vars
    }

    /// Sets how many retirements may accumulate before the solver rebuilds
    /// itself to reclaim retired activation variables.
    ///
    /// `0` disables recycling *for good*: the replay bookkeeping (the base
    /// formula and permanent-clause recording that a rebuild would need)
    /// is dropped and no longer maintained, so a consumer that streams a
    /// large formula through [`add_clause`](Self::add_clause) — the
    /// incremental BMC engine, whose caller-owned activation variables a
    /// rebuild could never reclaim anyway — does not pay for a second
    /// copy of it.
    pub fn set_recycle_threshold(&mut self, threshold: u64) {
        self.recycle_threshold = threshold;
        if threshold == 0 {
            // The recording is incomplete from here on; make sure a later
            // re-enable can never rebuild from it.
            self.interleaved = true;
            self.base = Cnf::default();
            self.permanent = Vec::new();
        }
    }

    /// Installs (or clears) a shared interrupt flag; see
    /// [`Solver::set_interrupt`].  The flag survives recycling rebuilds.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag.clone();
        self.solver.set_interrupt(flag);
    }

    /// Installs (or clears) a periodic statistics observer; see
    /// [`Solver::set_progress_probe`].  The probe survives recycling
    /// rebuilds.
    pub fn set_progress_probe(&mut self, probe: Option<ProgressProbe>) {
        self.probe = probe.clone();
        self.solver.set_progress_probe(probe);
    }

    /// Caps the conflicts of each solve call; see
    /// [`Solver::set_conflict_limit`].  The budget survives recycling
    /// rebuilds.
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
        self.solver.set_conflict_limit(limit);
    }

    /// Sets the learned-clause count that triggers the underlying
    /// solver's next database reduction (`None` disables reduction); see
    /// [`Solver::set_reduce_interval`].  The setting survives recycling
    /// rebuilds.
    pub fn set_reduce_interval(&mut self, first: Option<u64>) {
        self.reduce_interval = first;
        self.solver.set_reduce_interval(first);
    }

    /// Installs (or clears) a shared memory budget; see
    /// [`Solver::set_memory_budget`].  The budget survives recycling
    /// rebuilds (the discarded solver releases its registration, the
    /// rebuilt one registers afresh).
    pub fn set_memory_budget(&mut self, budget: Option<crate::MemoryBudget>) {
        self.mem_budget = budget.clone();
        self.solver.set_memory_budget(budget);
    }

    /// Installs a fault-injection plan; see [`Solver::set_faults`].  The
    /// plan survives recycling rebuilds (and, firing exactly once, never
    /// re-fires on the rebuilt solver).
    pub fn set_faults(&mut self, faults: crate::FaultPlan) {
        self.faults = faults.clone();
        self.solver.set_faults(faults);
    }

    /// Returns the accumulated search statistics (including solvers
    /// discarded by recycling rebuilds).
    pub fn stats(&self) -> SolverStats {
        let mut stats = self.stats_offset;
        stats += self.solver.stats();
        stats
    }

    /// Notes caller-owned variables referenced by a new clause, disabling
    /// recycling when they interleave with solver-allocated activation
    /// variables (numbering would not be rebuild-stable).
    fn note_user_vars(&mut self, lits: &[Lit]) {
        if let Some(max) = lits.iter().map(|l| l.var().index() + 1).max() {
            if max > self.user_vars {
                if self.solver.num_vars() > self.user_vars {
                    // The clause implicitly allocates variables above the
                    // live activation range: numbering is no longer
                    // rebuild-stable.
                    self.interleaved = true;
                } else {
                    self.user_vars = max;
                }
            }
        }
    }

    /// Adds a permanent clause (partition 0: incremental queries take no
    /// part in interpolation).
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        let lits: Vec<Lit> = lits.into_iter().collect();
        self.note_user_vars(&lits);
        // The recording only exists to replay clauses on a recycling
        // rebuild; once recycling is off (threshold 0 or interleaved
        // numbering) it would be a dead second copy of the formula.
        if !self.interleaved && self.recycle_threshold != 0 {
            self.permanent.push(lits.clone());
        }
        self.solver.add_clause(lits, 0);
    }

    /// Adds a clause that can later be retired; returns its guard.
    ///
    /// The clause is in force for every [`solve`](Self::solve) call until
    /// [`retire`](Self::retire) is called on the guard.
    pub fn add_retirable_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> ClauseGuard {
        let activation = Lit::positive(self.solver.new_var());
        let guarded: Vec<Lit> = std::iter::once(!activation).chain(lits).collect();
        self.solver.add_clause(guarded, 0);
        self.live.push(activation);
        ClauseGuard(activation)
    }

    /// Adds an *assertion group*: every clause in `clauses` is guarded by
    /// the caller-allocated `activation` literal and stays in force (the
    /// literal is assumed automatically by [`solve`](Self::solve)) until
    /// the returned guard is [`retire`](Self::retire)d, which deactivates
    /// the whole group at once.
    ///
    /// Unlike [`add_retirable_clause`](Self::add_retirable_clause), the
    /// activation variable is owned by the *caller* — the pattern used by
    /// the incremental BMC engine, where one variable-numbering authority
    /// (the unroller) allocates every variable, so later frame extensions
    /// can never collide with solver-internal activation variables.
    ///
    /// # Panics
    ///
    /// Panics if `activation` is negated: guards must be positive literals
    /// so that retirement (the unit `¬activation`) means what it says.
    pub fn assert_group<I, C>(&mut self, activation: Lit, clauses: I) -> ClauseGuard
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = Lit>,
    {
        assert!(
            activation.is_positive(),
            "group activation literal must be positive"
        );
        self.note_user_vars(&[activation]);
        for clause in clauses {
            let guarded: Vec<Lit> = std::iter::once(!activation).chain(clause).collect();
            self.note_user_vars(&guarded);
            self.solver.add_clause(guarded, 0);
        }
        self.live.push(activation);
        ClauseGuard(activation)
    }

    /// Permanently deactivates the clause behind `guard`.
    ///
    /// The guarded clause stays in the solver but is satisfied by the unit
    /// `¬a`, so it never constrains or propagates again.  Once enough
    /// retirements accumulate (and no retirable clause is live), the
    /// solver rebuilds itself and reclaims the retired activation
    /// variables — any [`ClauseGuard`] held across such a rebuild is
    /// stale and must not be retired again.
    pub fn retire(&mut self, guard: ClauseGuard) {
        if let Some(position) = self.live.iter().position(|&a| a == guard.0) {
            self.live.swap_remove(position);
            self.solver.add_clause([!guard.0], 0);
            self.retired += 1;
            self.retired_since_rebuild += 1;
            self.retired_since_sweep += 1;
            if self.retired_since_sweep >= RETIRE_SWEEP_INTERVAL {
                self.retired_since_sweep = 0;
                // The retired units permanently satisfy their guarded
                // clauses; sweep them (and any root-satisfied learned
                // clauses) out of the database and the watch lists.
                self.solver.remove_root_satisfied();
            }
            self.maybe_recycle();
        }
    }

    /// Rebuilds the underlying solver when enough activation variables
    /// have been retired, reclaiming their variable slots.
    fn maybe_recycle(&mut self) {
        if self.interleaved
            || self.recycle_threshold == 0
            || self.retired_since_rebuild < self.recycle_threshold
            || !self.live.is_empty()
        {
            return;
        }
        let mut fresh = Solver::new();
        fresh.set_proof_logging(false);
        fresh.add_cnf(&self.base);
        fresh.ensure_vars(self.user_vars);
        for clause in &self.permanent {
            fresh.add_clause(clause.iter().copied(), 0);
        }
        fresh.set_interrupt(self.interrupt.clone());
        fresh.set_progress_probe(self.probe.clone());
        fresh.set_conflict_limit(self.conflict_limit);
        fresh.set_reduce_interval(self.reduce_interval);
        fresh.set_memory_budget(self.mem_budget.clone());
        fresh.set_faults(self.faults.clone());
        // Warm-start the rebuilt solver: the caller's VSIDS activities and
        // saved phases survive the rebuild, so a long PDR run does not
        // restart its branching heuristics from scratch every few thousand
        // retirements.  (Learned clauses are still discarded — their
        // variable numbering may mention retired activation variables.)
        let (activity, phase, var_inc) = self.solver.heuristics(self.user_vars);
        fresh.restore_heuristics(&activity, &phase, var_inc);
        self.recycled_vars += u64::from(self.solver.num_vars() - self.user_vars);
        self.stats_offset += self.solver.stats();
        self.retired_since_rebuild = 0;
        self.solver = fresh;
    }

    /// Solves under `assumptions` with every live retirable clause active.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        // Activation literals go first: they are unconditionally true, so a
        // core caused by the caller's assumptions stays expressed in terms
        // of the trailing (caller) positions.
        let mut all = self.live.clone();
        all.extend_from_slice(assumptions);
        self.solver.solve_with_assumptions(&all)
    }

    /// Returns the subset of the *caller's* assumptions responsible for the
    /// last `Unsat` answer, with activation literals filtered out.
    pub fn assumption_core(&self) -> Vec<Lit> {
        self.solver
            .assumption_core()
            .iter()
            .copied()
            .filter(|l| !self.live.contains(l) && !self.live.contains(&!*l))
            .collect()
    }

    /// Returns the value assigned to `var` by the most recent satisfiable
    /// call, or `None` when unassigned.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.solver.value(var)
    }

    /// Returns the value of a literal under the current assignment.
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.solver.lit_value(lit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut IncrementalSolver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::positive(solver.new_var())).collect()
    }

    #[test]
    fn retired_clauses_stop_constraining() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        let g1 = s.add_retirable_clause([!v[0]]);
        let g2 = s.add_retirable_clause([!v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        s.retire(g1);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.lit_value(v[1]), Some(false));
        assert_eq!(s.lit_value(v[0]), Some(true));
        s.retire(g2);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.num_retired(), 2);
        assert_eq!(s.num_live(), 0);
    }

    #[test]
    fn disabled_recycling_skips_replay_bookkeeping() {
        let mut s = IncrementalSolver::new();
        s.set_recycle_threshold(0);
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        for _ in 0..16 {
            let g = s.add_retirable_clause([!v[0]]);
            let _ = s.solve(&[]);
            s.retire(g);
        }
        // No rebuilds happen (and nothing was recorded for one), yet the
        // solver keeps answering from the live clause database.
        assert_eq!(s.num_recycled_vars(), 0);
        assert_eq!(s.num_retired(), 16);
        assert_eq!(s.solve(&[!v[1]]), SolveResult::Sat);
        assert_eq!(s.lit_value(v[0]), Some(true));
        assert_eq!(s.solve(&[!v[0], !v[1]]), SolveResult::Unsat);
    }

    #[test]
    fn assertion_groups_retire_as_a_unit() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        // Caller-allocated activation literal guarding two clauses.
        let act = Lit::positive(s.new_var());
        let guard = s.assert_group(act, [vec![!v[0]], vec![!v[1], !v[2]]]);
        // Both clauses are in force while the group is live.
        assert_eq!(s.solve(&[v[1], v[2]]), SolveResult::Unsat);
        let core = s.assumption_core();
        assert!(
            core.iter().all(|l| *l == v[1] || *l == v[2]),
            "activation literals must not leak into cores: {core:?}"
        );
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.lit_value(v[0]), Some(false));
        // Retiring the group deactivates both clauses at once.
        s.retire(guard);
        assert_eq!(s.solve(&[v[0], v[1], v[2]]), SolveResult::Sat);
        assert_eq!(s.num_retired(), 1);
    }

    #[test]
    fn successive_groups_model_growing_bound_targets() {
        // The incremental BMC pattern: a growing disjunction re-asserted
        // under a fresh group per bound, the previous group retired.
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 4);
        for (bound, lit) in v.iter().enumerate() {
            // "some bad up to this bound" — but every bad is pinned false
            // so far, so each bound answers Unsat until the last.
            let act = Lit::positive(s.new_var());
            let clause: Vec<Lit> = v[..=bound].to_vec();
            let guard = s.assert_group(act, [clause]);
            if bound < 3 {
                s.add_clause([!*lit]);
                assert_eq!(s.solve(&[]), SolveResult::Unsat, "bound {bound}");
                s.retire(guard);
            } else {
                assert_eq!(s.solve(&[]), SolveResult::Sat, "bound {bound}");
                assert_eq!(s.lit_value(v[3]), Some(true));
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_group_activation_is_rejected() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 1);
        let _ = s.assert_group(!v[0], [vec![v[0]]]);
    }

    #[test]
    fn double_retire_is_harmless() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 1);
        let g = s.add_retirable_clause([v[0]]);
        s.retire(g);
        s.retire(g);
        assert_eq!(s.num_retired(), 1);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn cores_hide_activation_literals() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 3);
        // Retirable clause (¬x0 ∨ ¬x1) plus irrelevant assumption x2.
        let _g = s.add_retirable_clause([!v[0], !v[1]]);
        assert_eq!(s.solve(&[v[2], v[0], v[1]]), SolveResult::Unsat);
        let core = s.assumption_core();
        assert!(!core.is_empty());
        for l in &core {
            assert!(
                [v[0], v[1], v[2]].contains(l),
                "core literal {l} must be a caller assumption"
            );
        }
    }

    #[test]
    fn live_clauses_survive_interleaved_queries() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 2);
        let _keep = s.add_retirable_clause([v[0]]);
        let drop = s.add_retirable_clause([v[1]]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.lit_value(v[0]), Some(true));
        s.retire(drop);
        assert_eq!(s.solve(&[!v[1]]), SolveResult::Sat);
        assert_eq!(s.lit_value(v[0]), Some(true));
        assert_eq!(s.lit_value(v[1]), Some(false));
    }

    #[test]
    fn with_base_loads_the_formula() {
        let mut builder = cnf::CnfBuilder::new();
        let x = builder.new_lit();
        builder.add_clause([x]);
        let mut s = IncrementalSolver::with_base(&builder.into_cnf());
        assert_eq!(s.solve(&[!x]), SolveResult::Unsat);
        assert_eq!(s.assumption_core(), vec![!x]);
    }

    #[test]
    fn recycling_bounds_the_variable_range() {
        let mut builder = cnf::CnfBuilder::new();
        let x = builder.new_lit();
        let y = builder.new_lit();
        builder.add_clause([x, y]);
        let mut s = IncrementalSolver::with_base(&builder.into_cnf());
        s.set_recycle_threshold(8);
        let baseline = s.num_vars();
        // A long PDR-like run: thousands of short-lived retirable clauses.
        for round in 0..200 {
            let g = s.add_retirable_clause([if round % 2 == 0 { !x } else { !y }]);
            let _ = s.solve(&[x]);
            s.retire(g);
        }
        assert_eq!(s.num_retired(), 200);
        assert!(s.num_recycled_vars() >= 150, "must reclaim retired vars");
        assert!(
            s.num_vars() <= baseline + 8,
            "activation range must stay bounded, got {} vars",
            s.num_vars()
        );
        // The formula is still the same after all those rebuilds.
        assert_eq!(s.solve(&[!x, !y]), SolveResult::Unsat);
        assert_eq!(s.solve(&[!x]), SolveResult::Sat);
        assert_eq!(s.lit_value(y), Some(true));
    }

    #[test]
    fn recycling_replays_permanent_clauses() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 3);
        s.set_recycle_threshold(4);
        s.add_clause([v[0], v[1]]);
        for _ in 0..16 {
            let g = s.add_retirable_clause([!v[2]]);
            let _ = s.solve(&[]);
            s.retire(g);
        }
        // Permanent clauses added before and between rebuilds must all be
        // in force afterwards.
        s.add_clause([!v[1]]);
        assert_eq!(s.solve(&[!v[0]]), SolveResult::Unsat);
        assert!(s.num_recycled_vars() > 0);
    }

    #[test]
    fn recycling_preserves_statistics_monotonicity() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 4);
        s.set_recycle_threshold(2);
        s.add_clause([v[0], v[1], v[2], v[3]]);
        let mut last = 0;
        for _ in 0..12 {
            let g = s.add_retirable_clause([!v[0], !v[1]]);
            let _ = s.solve(&[v[0], v[1]]);
            s.retire(g);
            let now = s.stats().propagations;
            assert!(now >= last, "stats must never go backwards");
            last = now;
        }
    }

    #[test]
    fn interleaved_user_variables_disable_recycling() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 1);
        s.set_recycle_threshold(1);
        let g = s.add_retirable_clause([v[0]]);
        // Allocating a caller variable after an activation variable makes
        // variable numbering rebuild-unstable: recycling must back off.
        let w = Lit::positive(s.new_var());
        s.add_clause([v[0], w]);
        s.retire(g);
        for _ in 0..8 {
            let g = s.add_retirable_clause([!w]);
            s.retire(g);
        }
        assert_eq!(s.num_recycled_vars(), 0);
        // The solver keeps answering correctly, it just leaks as before.
        assert_eq!(s.solve(&[!v[0], !w]), SolveResult::Unsat);
    }

    #[test]
    fn saved_phases_survive_recycling_rebuilds() {
        let mut s = IncrementalSolver::new();
        s.set_recycle_threshold(1);
        let v = lits(&mut s, 4);
        s.add_clause([v[0], v[1], v[2], v[3]]);
        // Establish non-default saved phases: force all variables true.
        assert_eq!(s.solve(&[v[0], v[1], v[2], v[3]]), SolveResult::Sat);
        // Trigger a recycling rebuild (no intermediate solve: the rebuild
        // itself must carry the phases over).
        let g = s.add_retirable_clause([v[0], v[1]]);
        s.retire(g);
        assert!(s.num_recycled_vars() > 0, "rebuild must have happened");
        // Phase saving steers the free solve towards the remembered
        // all-true assignment; a cold-started solver would pick false.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for &l in &v {
            assert_eq!(s.lit_value(l), Some(true), "phase of {l} lost in rebuild");
        }
    }

    #[test]
    fn retirement_sweeps_shrink_the_clause_database() {
        let mut s = IncrementalSolver::new();
        // Recycling off: the sweep is the only mechanism culling retired
        // clauses.
        s.set_recycle_threshold(0);
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        let mut peak = 0;
        for round in 0..200 {
            let g = s.add_retirable_clause([if round % 2 == 0 { !v[0] } else { !v[1] }]);
            let _ = s.solve(&[]);
            s.retire(g);
            peak = peak.max(s.num_clauses());
        }
        // 200 guarded clauses plus 200 retirement units were added; the
        // periodic sweep keeps the live database from accumulating them.
        assert!(
            s.num_clauses() < 150,
            "sweeps must cull retired clauses, live database has {}",
            s.num_clauses()
        );
        assert_eq!(s.solve(&[v[0]]), SolveResult::Sat);
        assert_eq!(s.solve(&[!v[0], !v[1]]), SolveResult::Unsat);
    }

    #[test]
    fn reduce_interval_survives_recycling() {
        let mut s = IncrementalSolver::new();
        s.set_recycle_threshold(1);
        s.set_reduce_interval(None);
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        let g = s.add_retirable_clause([!v[0]]);
        s.retire(g); // triggers a rebuild
        assert_eq!(s.stats().db_reductions, 0);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn interrupt_and_budget_survive_recycling() {
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 2);
        s.set_recycle_threshold(1);
        s.add_clause([v[0], v[1]]);
        let flag = Arc::new(AtomicBool::new(false));
        s.set_interrupt(Some(flag.clone()));
        let g = s.add_retirable_clause([!v[0]]);
        s.retire(g); // triggers a rebuild
        flag.store(true, std::sync::atomic::Ordering::Release);
        assert_eq!(s.solve(&[]), SolveResult::Interrupted);
        flag.store(false, std::sync::atomic::Ordering::Release);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn memory_budget_survives_recycling() {
        let budget = crate::MemoryBudget::new(u64::MAX);
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 2);
        s.set_recycle_threshold(1);
        s.add_clause([v[0], v[1]]);
        s.set_memory_budget(Some(budget.clone()));
        assert!(budget.used() > 0, "the wrapped solver registers");
        let g = s.add_retirable_clause([!v[0]]);
        s.retire(g); // triggers a rebuild
        assert!(
            budget.used() > 0,
            "the rebuilt solver registers afresh (and the discarded one released)"
        );
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        drop(s);
        assert_eq!(budget.used(), 0, "dropping releases everything");
    }

    #[test]
    fn fault_plans_survive_recycling_without_refiring() {
        use crate::{FaultKind, FaultPlan, FaultSite};
        // Fires on the 2nd allocation, well before the rebuild.
        let plan = FaultPlan::inject(FaultSite::Alloc, FaultKind::Interrupt, 2);
        let mut s = IncrementalSolver::new();
        let v = lits(&mut s, 2);
        s.set_recycle_threshold(1);
        s.set_faults(plan.clone());
        s.add_clause([v[0], v[1]]);
        let g = s.add_retirable_clause([!v[0]]);
        assert!(plan.fired(), "the second allocation ticks the site");
        assert_eq!(
            s.solve(&[]),
            SolveResult::Interrupted,
            "the injected stop lands once"
        );
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        s.retire(g); // triggers a rebuild, replaying clauses — must not re-fire
        assert_eq!(
            s.solve(&[]),
            SolveResult::Sat,
            "no re-fire after the rebuild"
        );
    }
}
