//! Amortized multi-property PDR.
//!
//! The implementation lives with the engine
//! (`crate::engines::pdr::verify_all_with_cancel`) because it drives
//! the same `Pdr` state machine as the single-property entry point: one
//! frame trace, one per-frame solver family and one transition template
//! (carrying *every* property's bad cone at frame 0) serve the whole
//! property set.  What is shared and why it is sound:
//!
//! * **frame lemmas** are facts about reachability — "no state of this
//!   cube is reachable within `frame` steps" — and mention no property,
//!   so a cube blocked while working on one property strengthens the
//!   trace for all of them ("keeping blocked cubes for the survivors");
//! * **counterexamples** retire exactly one property: an obligation chain
//!   reaching frame 0 witnesses a path to *that* property's bad cone, at
//!   the level's structurally minimal depth;
//! * **proofs** retire every survivor at once: a converged frame after a
//!   level whose blocking phases cleaned every live property's frontier
//!   is one inductive invariant excluding all of their bad states.
//!
//! This module re-exports the driver for `verify_all` dispatch and holds
//! its multi-property regression tests.

use crate::engines::CancelToken;
use crate::{MultiResult, Options};
use aig::Aig;

/// Verifies the bad-state properties `props` of `aig` on one shared PDR
/// trace; `statuses[i]` reports on property `props[i]`.
pub fn verify_all(aig: &Aig, props: &[usize], options: &Options) -> MultiResult {
    crate::engines::pdr::verify_all_with_cancel(aig, props, options, &CancelToken::new(), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, PropertyStatus};
    use std::time::Duration;

    fn options() -> Options {
        Options::default()
            .with_timeout(Duration::from_secs(10))
            .with_max_bound(40)
    }

    #[test]
    fn statuses_match_the_per_property_loop() {
        let aig = workloads::counter::modular_multi(4, 10, &[3, 11, 7, 15]);
        let multi = Engine::Pdr.verify_all(&aig, &options());
        for prop in 0..aig.num_bad() {
            let single = Engine::Pdr.verify(&aig, prop, &options());
            assert!(
                multi.statuses[prop].agrees_with(&single.verdict),
                "property {prop}: {} vs {}",
                multi.statuses[prop],
                single.verdict
            );
        }
    }

    #[test]
    fn mixed_verdicts_retire_property_by_property() {
        let aig = workloads::counter::modular_multi(3, 6, &[0, 5, 7]);
        let multi = Engine::Pdr.verify_all(&aig, &options());
        assert_eq!(multi.statuses[0].depth(), Some(0));
        assert_eq!(multi.statuses[1].depth(), Some(5));
        assert!(multi.statuses[2].is_proved(), "{}", multi.statuses[2]);
    }

    #[test]
    fn all_safe_properties_prove_together() {
        // A converged trace proves every survivor with the same (k_fp,
        // j_fp): one invariant covers them all.
        let aig = workloads::counter::modular_multi(3, 5, &[5, 6, 7]);
        let multi = Engine::Pdr.verify_all(&aig, &options());
        assert!(multi.statuses.iter().all(PropertyStatus::is_proved));
        let keys: Vec<_> = multi
            .statuses
            .iter()
            .map(|s| match s {
                PropertyStatus::Proved { k_fp, j_fp, .. } => (*k_fp, *j_fp),
                other => panic!("expected proof, got {other}"),
            })
            .collect();
        assert!(keys.windows(2).all(|w| w[0] == w[1]), "{keys:?}");
    }

    #[test]
    fn overlapping_cones_share_the_trace() {
        // Per-client arbiter properties read almost the same latches; the
        // shared trace must still split verdicts correctly.
        let aig = workloads::arbiter::round_robin_multi(3, false);
        let multi = Engine::Pdr.verify_all(&aig, &options());
        assert!(
            multi.statuses.iter().all(PropertyStatus::is_proved),
            "{:?}",
            multi.statuses
        );
        let buggy = workloads::arbiter::round_robin_multi(3, true);
        let multi = Engine::Pdr.verify_all(&buggy, &options());
        for (prop, status) in multi.statuses.iter().enumerate() {
            let single = Engine::Pdr.verify(&buggy, prop, &options());
            assert!(
                status.agrees_with(&single.verdict),
                "property {prop}: {} vs {}",
                status,
                single.verdict
            );
        }
    }

    #[test]
    fn cancellation_reaches_every_live_property() {
        let aig = workloads::counter::modular_multi(5, 28, &[27, 30]);
        let cancel = CancelToken::new();
        cancel.cancel();
        let multi =
            crate::engines::pdr::verify_all_with_cancel(&aig, &[0, 1], &options(), &cancel, None);
        for status in &multi.statuses {
            match status {
                PropertyStatus::Inconclusive { reason, .. } => assert_eq!(reason, "cancelled"),
                other => panic!("cancelled run must be inconclusive, got {other}"),
            }
        }
    }

    #[test]
    fn empty_property_list_finishes_immediately() {
        let aig = workloads::counter::modular_multi(3, 6, &[2, 7]);
        let multi = verify_all(&aig, &[], &options());
        assert!(multi.statuses.is_empty());
    }

    #[test]
    fn property_subsets_are_respected() {
        // Verifying a subset reports on exactly that subset, in order.
        let aig = workloads::counter::modular_multi(4, 10, &[3, 11, 7, 15]);
        let multi = verify_all(&aig, &[2, 1], &options());
        assert_eq!(multi.statuses.len(), 2);
        assert_eq!(multi.statuses[0].depth(), Some(7), "props[0] = property 2");
        assert!(multi.statuses[1].is_proved(), "props[1] = property 1");
    }
}
