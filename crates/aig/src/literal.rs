//! Edge literals of the AIG: a node index plus a complement bit.

use std::fmt;
use std::ops::Not;

/// A (possibly complemented) reference to an AIG node.
///
/// The encoding follows the AIGER convention: the underlying `u32` holds the
/// node index shifted left by one, with the least significant bit set when
/// the edge is complemented.  Node 0 is the constant-false node, so
/// [`Lit::FALSE`] is `0` and [`Lit::TRUE`] is `1`.
///
/// ```
/// use aig::Lit;
/// let a = Lit::positive(3);
/// assert_eq!(a.node(), 3);
/// assert!(!a.is_complemented());
/// assert!((!a).is_complemented());
/// assert_eq!(!!a, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (node 0, not complemented).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (node 0, complemented).
    pub const TRUE: Lit = Lit(1);

    /// Creates the positive-phase literal for `node`.
    #[inline]
    pub fn positive(node: u32) -> Lit {
        Lit(node << 1)
    }

    /// Creates the negative-phase literal for `node`.
    #[inline]
    pub fn negative(node: u32) -> Lit {
        Lit((node << 1) | 1)
    }

    /// Creates a literal from the raw AIGER encoding (`2*node + complement`).
    #[inline]
    pub fn from_raw(raw: u32) -> Lit {
        Lit(raw)
    }

    /// Returns the raw AIGER encoding of the literal.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the index of the referenced node.
    #[inline]
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Returns `true` when the edge carries an inverter.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the positive-phase literal of the same node.
    #[inline]
    pub fn abs(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// Returns this literal complemented when `c` is true, unchanged otherwise.
    #[inline]
    pub fn xor_complement(self, c: bool) -> Lit {
        Lit(self.0 ^ c as u32)
    }

    /// Returns `true` for the constant true/false literals.
    #[inline]
    pub fn is_constant(self) -> bool {
        self.node() == 0
    }

    /// Returns `Some(value)` when the literal is a constant, `None` otherwise.
    #[inline]
    pub fn constant_value(self) -> Option<bool> {
        if self.is_constant() {
            Some(self.is_complemented())
        } else {
            None
        }
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::FALSE {
            write!(f, "0")
        } else if *self == Lit::TRUE {
            write!(f, "1")
        } else if self.is_complemented() {
            write!(f, "!n{}", self.node())
        } else {
            write!(f, "n{}", self.node())
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_node_zero() {
        assert_eq!(Lit::FALSE.node(), 0);
        assert_eq!(Lit::TRUE.node(), 0);
        assert!(Lit::FALSE.is_constant());
        assert!(Lit::TRUE.is_constant());
        assert_eq!(Lit::FALSE.constant_value(), Some(false));
        assert_eq!(Lit::TRUE.constant_value(), Some(true));
    }

    #[test]
    fn negation_is_involutive() {
        let l = Lit::positive(7);
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).node(), l.node());
    }

    #[test]
    fn raw_roundtrip_matches_aiger_convention() {
        let l = Lit::from_raw(13);
        assert_eq!(l.node(), 6);
        assert!(l.is_complemented());
        assert_eq!(l.raw(), 13);
        assert_eq!(Lit::negative(6), l);
    }

    #[test]
    fn abs_strips_complement() {
        assert_eq!(Lit::negative(4).abs(), Lit::positive(4));
        assert_eq!(Lit::positive(4).abs(), Lit::positive(4));
    }

    #[test]
    fn xor_complement_conditionally_flips() {
        let l = Lit::positive(9);
        assert_eq!(l.xor_complement(false), l);
        assert_eq!(l.xor_complement(true), !l);
    }

    #[test]
    fn non_constant_literal_has_no_constant_value() {
        assert_eq!(Lit::positive(2).constant_value(), None);
    }

    #[test]
    fn ordering_groups_phases_of_same_node() {
        let a = Lit::positive(3);
        let b = Lit::negative(3);
        let c = Lit::positive(4);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Lit::FALSE), "0");
        assert_eq!(format!("{}", Lit::TRUE), "1");
        assert_eq!(format!("{}", Lit::positive(5)), "n5");
        assert_eq!(format!("{}", Lit::negative(5)), "!n5");
    }
}
