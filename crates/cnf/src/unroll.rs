//! Time-frame expansion of sequential AIGs.
//!
//! An [`Unroller`] maintains, for every time frame `f`, a fresh SAT variable
//! per latch (`V^f` in the paper's notation) plus a cache of Tseitin
//! encodings of frame-`f` combinational logic.  Transition constraints
//! `T(V^f, V^{f+1})` are emitted by [`Unroller::add_frame`]; the caller
//! controls the partition labels so that BMC formulas can be split into the
//! `Γ_{1..n}` decomposition required by interpolation sequences.
//!
//! The frame machinery itself lives in the crate-private `FrameCore`,
//! which is shared with the persistent [`crate::IncrementalUnroller`]: the
//! borrowing `Unroller` is the right shape for one-shot instance
//! construction, the owning incremental variant for caches that outlive
//! any single bound.

use crate::tseitin::encode_cone;
use crate::{Clause, Cnf, CnfBuilder, Lit};
use aig::{Aig, AigNode, NodeId};
use std::collections::HashMap;

/// Per-frame variable maps.
#[derive(Clone, Debug)]
struct Frame {
    /// SAT literal representing each latch at this frame.
    latch: Vec<Lit>,
    /// SAT literal representing each primary input at this frame
    /// (allocated lazily).
    input: Vec<Option<Lit>>,
    /// Cache of node encodings at this frame.
    cache: HashMap<NodeId, Lit>,
}

/// The design-independent state of a time-frame expansion: the clause
/// builder plus the per-frame variable maps and Tseitin caches.
///
/// Every operation takes the design as a parameter so the same core can be
/// driven by the borrowing [`Unroller`] and by the owning
/// [`crate::IncrementalUnroller`].
#[derive(Clone, Debug, Default)]
pub(crate) struct FrameCore {
    builder: CnfBuilder,
    frames: Vec<Frame>,
}

impl FrameCore {
    /// Creates a core with a single frame (frame 0) whose latch variables
    /// are freshly allocated.
    pub(crate) fn new(aig: &Aig) -> FrameCore {
        let mut core = FrameCore {
            builder: CnfBuilder::new(),
            frames: Vec::new(),
        };
        core.push_fresh_frame(aig);
        core
    }

    fn push_fresh_frame(&mut self, aig: &Aig) {
        let latch: Vec<Lit> = (0..aig.num_latches())
            .map(|_| self.builder.new_lit())
            .collect();
        let mut cache = HashMap::new();
        for (i, &lit) in latch.iter().enumerate() {
            cache.insert(aig.latch_node(i), lit);
        }
        self.frames.push(Frame {
            latch,
            input: vec![None; aig.num_inputs()],
            cache,
        });
    }

    pub(crate) fn num_frames(&self) -> usize {
        self.frames.len()
    }

    pub(crate) fn builder_mut(&mut self) -> &mut CnfBuilder {
        &mut self.builder
    }

    pub(crate) fn builder(&self) -> &CnfBuilder {
        &self.builder
    }

    pub(crate) fn latch_lit(&self, frame: usize, latch: usize) -> Lit {
        self.frames[frame].latch[latch]
    }

    pub(crate) fn latch_lits(&self, frame: usize) -> Vec<Lit> {
        self.frames[frame].latch.clone()
    }

    pub(crate) fn input_lit(&mut self, aig: &Aig, frame: usize, input: usize) -> Lit {
        if let Some(lit) = self.frames[frame].input[input] {
            return lit;
        }
        let lit = self.builder.new_lit();
        self.frames[frame].input[input] = Some(lit);
        self.frames[frame].cache.insert(aig.input_node(input), lit);
        lit
    }

    pub(crate) fn lit(&mut self, aig: &Aig, frame: usize, lit: aig::Lit) -> Lit {
        // Pre-allocate input leaves so the closure below never needs the
        // full core mutably.
        self.ensure_leaves(aig, frame, lit);
        let f = &mut self.frames[frame];
        let cache = &mut f.cache;
        encode_cone(&mut self.builder, aig, lit, cache, &mut |_, id| {
            // All leaves were pre-allocated by `ensure_leaves`.
            unreachable!("leaf {id} not pre-allocated")
        })
    }

    /// Walks the cone of `lit` and allocates SAT variables for any input
    /// leaves not yet present in the frame cache.
    fn ensure_leaves(&mut self, aig: &Aig, frame: usize, lit: aig::Lit) {
        let mut stack = vec![lit.node()];
        let mut seen = std::collections::HashSet::new();
        let mut needed_inputs = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) || self.frames[frame].cache.contains_key(&id) {
                continue;
            }
            match aig.node(id) {
                AigNode::And { left, right } => {
                    stack.push(left.node());
                    stack.push(right.node());
                }
                AigNode::Input { index } => needed_inputs.push(index),
                AigNode::Latch { .. } | AigNode::Const => {}
            }
        }
        for index in needed_inputs {
            let _ = self.input_lit(aig, frame, index);
        }
    }

    pub(crate) fn assert_initial(&mut self, aig: &Aig, frame: usize) {
        for i in 0..aig.num_latches() {
            let lit = self.latch_lit(frame, i);
            let unit = if aig.init(i) { lit } else { !lit };
            self.builder.add_unit(unit);
        }
    }

    pub(crate) fn add_frame(&mut self, aig: &Aig) -> usize {
        let prev = self.frames.len() - 1;
        // Encode the next-state functions at the previous frame first.
        let next_lits: Vec<Lit> = (0..aig.num_latches())
            .map(|i| {
                let next = aig.next(i);
                self.lit(aig, prev, next)
            })
            .collect();
        self.push_fresh_frame(aig);
        let new_index = self.frames.len() - 1;
        for (i, next_lit) in next_lits.into_iter().enumerate() {
            let cur = self.latch_lit(new_index, i);
            // cur <-> next_lit
            self.builder.add_clause([!cur, next_lit]);
            self.builder.add_clause([cur, !next_lit]);
        }
        new_index
    }

    pub(crate) fn add_frame_guarded(&mut self, aig: &Aig, guards: &[Option<Lit>]) -> usize {
        assert_eq!(
            guards.len(),
            aig.num_latches(),
            "one guard slot per latch is required"
        );
        let prev = self.frames.len() - 1;
        let next_lits: Vec<Lit> = (0..aig.num_latches())
            .map(|i| {
                let next = aig.next(i);
                self.lit(aig, prev, next)
            })
            .collect();
        self.push_fresh_frame(aig);
        let new_index = self.frames.len() - 1;
        for (i, next_lit) in next_lits.into_iter().enumerate() {
            let cur = self.latch_lit(new_index, i);
            match guards[i] {
                None => {
                    self.builder.add_clause([!cur, next_lit]);
                    self.builder.add_clause([cur, !next_lit]);
                }
                Some(guard) => {
                    self.builder.add_clause([!guard, !cur, next_lit]);
                    self.builder.add_clause([!guard, cur, !next_lit]);
                }
            }
        }
        new_index
    }

    pub(crate) fn assert_initial_guarded(
        &mut self,
        aig: &Aig,
        frame: usize,
        guards: &[Option<Lit>],
    ) {
        assert_eq!(
            guards.len(),
            aig.num_latches(),
            "one guard slot per latch is required"
        );
        for (i, &guard) in guards.iter().enumerate() {
            let lit = self.latch_lit(frame, i);
            let unit = if aig.init(i) { lit } else { !lit };
            match guard {
                None => self.builder.add_unit(unit),
                Some(guard) => self.builder.add_clause([!guard, unit]),
            }
        }
    }

    pub(crate) fn bad_lit(&mut self, aig: &Aig, frame: usize, index: usize) -> Lit {
        let bad = aig.bad(index);
        self.lit(aig, frame, bad)
    }

    pub(crate) fn assert_lit(&mut self, lit: Lit) {
        self.builder.add_unit(lit);
    }

    pub(crate) fn into_cnf(self) -> Cnf {
        self.builder.into_cnf()
    }

    pub(crate) fn clauses(&self) -> &[Clause] {
        self.builder.clauses()
    }

    pub(crate) fn num_vars(&self) -> u32 {
        self.builder.num_vars()
    }
}

/// Unrolls a sequential AIG over time frames, producing partition-labelled
/// CNF.
///
/// # Example
///
/// ```
/// use cnf::Unroller;
///
/// // Build a toggling latch and unroll it two frames.
/// let mut aig = aig::Aig::new();
/// let l = aig.add_latch(false);
/// let cur = aig.latch_lit(l);
/// aig.set_next(l, !cur);
/// aig.add_bad(cur);
///
/// let mut unroller = Unroller::new(&aig);
/// unroller.assert_initial(0);
/// unroller.builder_mut().set_partition(1);
/// unroller.add_frame();
/// unroller.builder_mut().set_partition(2);
/// unroller.add_frame();
/// assert_eq!(unroller.num_frames(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Unroller<'a> {
    aig: &'a Aig,
    core: FrameCore,
}

impl<'a> Unroller<'a> {
    /// Creates an unroller with a single frame (frame 0) whose latch
    /// variables are freshly allocated.
    pub fn new(aig: &'a Aig) -> Unroller<'a> {
        Unroller {
            aig,
            core: FrameCore::new(aig),
        }
    }

    /// Returns the underlying design.
    pub fn aig(&self) -> &Aig {
        self.aig
    }

    /// Number of frames created so far (at least 1).
    pub fn num_frames(&self) -> usize {
        self.core.num_frames()
    }

    /// Gives mutable access to the clause builder (for partition control and
    /// extra clauses).
    pub fn builder_mut(&mut self) -> &mut CnfBuilder {
        self.core.builder_mut()
    }

    /// Gives read access to the clause builder.
    pub fn builder(&self) -> &CnfBuilder {
        self.core.builder()
    }

    /// Returns the SAT literal of latch `latch` at frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame or latch index is out of range.
    pub fn latch_lit(&self, frame: usize, latch: usize) -> Lit {
        self.core.latch_lit(frame, latch)
    }

    /// Returns the SAT literals of every latch at frame `frame`.
    pub fn latch_lits(&self, frame: usize) -> Vec<Lit> {
        self.core.latch_lits(frame)
    }

    /// Returns (allocating on demand) the SAT literal of primary input
    /// `input` at frame `frame`.
    pub fn input_lit(&mut self, frame: usize, input: usize) -> Lit {
        self.core.input_lit(self.aig, frame, input)
    }

    /// Encodes (or retrieves from the frame cache) the SAT literal of an AIG
    /// literal evaluated at frame `frame`.
    ///
    /// Clauses produced during the encoding are tagged with the builder's
    /// current partition.
    pub fn lit(&mut self, frame: usize, lit: aig::Lit) -> Lit {
        self.core.lit(self.aig, frame, lit)
    }

    /// Asserts that frame `frame` is in the design's initial state (unit
    /// clauses on the latch variables, in the current partition).
    pub fn assert_initial(&mut self, frame: usize) {
        self.core.assert_initial(self.aig, frame);
    }

    /// Adds a new frame and emits the transition constraint
    /// `T(V^{last}, V^{new})` in the current partition.
    ///
    /// Returns the index of the new frame.
    pub fn add_frame(&mut self) -> usize {
        self.core.add_frame(self.aig)
    }

    /// Like [`Unroller::add_frame`], but the transition constraint of latch
    /// `i` is guarded by `guards[i]` when present: the equality
    /// `latch^{new} ↔ next^{prev}` only has to hold when the guard literal
    /// is true.  Ungated latches behave exactly as in `add_frame`.
    ///
    /// This is the "single-instance" formulation used by counterexample
    /// based abstraction: invisible latches get an activation literal, and
    /// solving under the assumption that all activation literals are true
    /// yields an unsatisfiable core that points at the latches worth
    /// refining.
    ///
    /// # Panics
    ///
    /// Panics if `guards.len()` differs from the number of latches.
    pub fn add_frame_guarded(&mut self, guards: &[Option<Lit>]) -> usize {
        self.core.add_frame_guarded(self.aig, guards)
    }

    /// Like [`Unroller::assert_initial`], but the reset-value constraint of
    /// latch `i` is guarded by `guards[i]` when present.
    ///
    /// # Panics
    ///
    /// Panics if `guards.len()` differs from the number of latches.
    pub fn assert_initial_guarded(&mut self, frame: usize, guards: &[Option<Lit>]) {
        self.core.assert_initial_guarded(self.aig, frame, guards);
    }

    /// Encodes bad-state literal `index` of the design at frame `frame`.
    pub fn bad_lit(&mut self, frame: usize, index: usize) -> Lit {
        self.core.bad_lit(self.aig, frame, index)
    }

    /// Asserts an already-encoded SAT literal as a unit clause in the
    /// current partition.
    pub fn assert_lit(&mut self, lit: Lit) {
        self.core.assert_lit(lit);
    }

    /// Consumes the unroller and returns the accumulated CNF.
    pub fn into_cnf(self) -> Cnf {
        self.core.into_cnf()
    }

    /// Returns a snapshot of the clauses accumulated so far.
    pub fn clauses(&self) -> &[Clause] {
        self.core.clauses()
    }

    /// Returns the number of SAT variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.core.num_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggler() -> Aig {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        let cur = aig.latch_lit(l);
        aig.set_next(l, !cur);
        aig.add_bad(cur);
        aig
    }

    /// A 2-bit counter with enable input; bad when the counter reaches 3.
    fn counter2() -> Aig {
        let mut aig = Aig::new();
        let en = aig::Lit::positive(aig.add_input());
        let (ids, lits) = aig::builder::latch_word(&mut aig, 2, 0);
        let next = aig::builder::word_increment(&mut aig, &lits, en);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = aig.and(lits[0], lits[1]);
        aig.add_bad(bad);
        aig
    }

    fn brute_force_sat(cnf: &Cnf) -> bool {
        crate::testutil::dpll_sat(cnf)
    }

    #[test]
    fn new_unroller_has_one_frame() {
        let aig = toggler();
        let unroller = Unroller::new(&aig);
        assert_eq!(unroller.num_frames(), 1);
        assert_eq!(unroller.num_vars(), 1);
    }

    #[test]
    fn toggler_bad_unreachable_in_even_frames() {
        // Latch starts at 0 and toggles; bad (latch==1) holds exactly at odd
        // frames, so "initial ∧ T ∧ T ∧ bad@2" must be unsatisfiable while
        // "initial ∧ T ∧ bad@1" is satisfiable.
        let aig = toggler();

        let mut u = Unroller::new(&aig);
        u.assert_initial(0);
        u.add_frame();
        u.add_frame();
        let bad2 = u.bad_lit(2, 0);
        u.assert_lit(bad2);
        assert!(!brute_force_sat(&u.into_cnf()));

        let mut u = Unroller::new(&aig);
        u.assert_initial(0);
        u.add_frame();
        let bad1 = u.bad_lit(1, 0);
        u.assert_lit(bad1);
        assert!(brute_force_sat(&u.into_cnf()));
    }

    #[test]
    fn counter_needs_three_enabled_steps() {
        let aig = counter2();
        // After 2 frames the counter can be at most 2, so bad is unreachable.
        let mut u = Unroller::new(&aig);
        u.assert_initial(0);
        u.add_frame();
        u.add_frame();
        let bad = u.bad_lit(2, 0);
        u.assert_lit(bad);
        assert!(!brute_force_sat(&u.into_cnf()));
        // After 3 frames it is reachable (enable held high).
        let mut u = Unroller::new(&aig);
        u.assert_initial(0);
        u.add_frame();
        u.add_frame();
        u.add_frame();
        let bad = u.bad_lit(3, 0);
        u.assert_lit(bad);
        assert!(brute_force_sat(&u.into_cnf()));
    }

    #[test]
    fn partitions_follow_builder_setting() {
        let aig = toggler();
        let mut u = Unroller::new(&aig);
        u.builder_mut().set_partition(1);
        u.assert_initial(0);
        u.add_frame();
        u.builder_mut().set_partition(2);
        u.add_frame();
        let cnf = u.into_cnf();
        assert!(cnf.clauses.iter().any(|c| c.partition == 1));
        assert!(cnf.clauses.iter().any(|c| c.partition == 2));
        assert_eq!(cnf.num_partitions(), 2);
    }

    #[test]
    fn latch_vars_are_distinct_across_frames() {
        let aig = counter2();
        let mut u = Unroller::new(&aig);
        u.add_frame();
        let f0 = u.latch_lits(0);
        let f1 = u.latch_lits(1);
        assert_eq!(f0.len(), 2);
        assert_eq!(f1.len(), 2);
        assert!(f0.iter().all(|l| !f1.contains(l)));
    }

    #[test]
    fn input_lits_are_cached_per_frame() {
        let aig = counter2();
        let mut u = Unroller::new(&aig);
        let a = u.input_lit(0, 0);
        let b = u.input_lit(0, 0);
        assert_eq!(a, b);
        u.add_frame();
        let c = u.input_lit(1, 0);
        assert_ne!(a, c);
    }

    #[test]
    fn guarded_transitions_free_the_latch_when_disabled() {
        let aig = toggler();
        // With the single latch's transition guarded by an activation
        // literal, asserting bad at an even frame is satisfiable only when
        // the guard is allowed to be false.
        let mut u = Unroller::new(&aig);
        let guard = u.builder_mut().new_lit();
        let guards = vec![Some(guard)];
        u.assert_initial(0);
        u.add_frame_guarded(&guards);
        u.add_frame_guarded(&guards);
        let bad2 = u.bad_lit(2, 0);
        u.assert_lit(bad2);
        // Guard forced true: behaves like the exact transition (unsat).
        let mut constrained = u.clone();
        constrained.assert_lit(guard);
        assert!(!brute_force_sat(&constrained.into_cnf()));
        // Guard left free: the latch may take any value, so bad@2 is
        // reachable.
        assert!(brute_force_sat(&u.into_cnf()));
    }

    #[test]
    fn guarded_initial_state_can_be_relaxed() {
        let aig = toggler();
        let mut u = Unroller::new(&aig);
        let guard = u.builder_mut().new_lit();
        u.assert_initial_guarded(0, &[Some(guard)]);
        let bad0 = u.bad_lit(0, 0);
        u.assert_lit(bad0);
        // bad at frame 0 contradicts the reset value only when the guard is
        // asserted.
        let mut constrained = u.clone();
        constrained.assert_lit(guard);
        assert!(!brute_force_sat(&constrained.into_cnf()));
        assert!(brute_force_sat(&u.into_cnf()));
    }

    #[test]
    fn encoding_is_cached_within_a_frame() {
        let aig = counter2();
        let mut u = Unroller::new(&aig);
        let before = u.builder().num_clauses();
        let b1 = u.bad_lit(0, 0);
        let mid = u.builder().num_clauses();
        let b2 = u.bad_lit(0, 0);
        assert_eq!(b1, b2);
        assert_eq!(u.builder().num_clauses(), mid);
        assert!(mid > before);
    }
}
