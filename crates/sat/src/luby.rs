//! The Luby restart sequence.

/// Returns the `i`-th element (1-based) of the Luby sequence
/// `1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …`, the standard universal restart
/// schedule.
pub(crate) fn luby(i: u64) -> u64 {
    // Find the finite subsequence that contains index i, and the index of i
    // inside that subsequence (Knuth's formulation, as used by MiniSat).
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut i = i;
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_elements_match_reference_sequence() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expected.len() as u64).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn values_are_powers_of_two() {
        for i in 0..200 {
            assert!(luby(i).is_power_of_two());
        }
    }

    #[test]
    fn sequence_is_unbounded() {
        assert!((0..2048).map(luby).max().unwrap() >= 512);
    }
}
