//! The ROBDD manager: unique table, `ite`, quantification, renaming.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A handle to a BDD node owned by a [`Manager`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-false function.
    pub const FALSE: Bdd = Bdd(0);
    /// The constant-true function.
    pub const TRUE: Bdd = Bdd(1);

    /// Returns `true` for the two constant functions.
    pub fn is_constant(self) -> bool {
        self.0 <= 1
    }
}

/// Error raised when the node limit of the manager is exceeded.
///
/// This mirrors the `ovf` entries of the paper's Table I: BDD-based
/// traversal is attempted with a resource bound and reported as overflowed
/// when the bound is hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BddOverflow {
    /// The node limit that was exceeded.
    pub limit: usize,
}

impl fmt::Display for BddOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bdd node limit of {} nodes exceeded", self.limit)
    }
}

impl Error for BddOverflow {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

/// A reduced ordered BDD manager over a fixed number of variables.
///
/// Variable `0` is the topmost level.  The manager enforces a node limit;
/// operations return [`BddOverflow`] once it is exceeded, which callers
/// treat as the paper treats BDD overflows (give up on the exact analysis).
#[derive(Clone, Debug)]
pub struct Manager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
    num_vars: usize,
    node_limit: usize,
}

const TERMINAL_VAR: u32 = u32::MAX;

impl Manager {
    /// Creates a manager for `num_vars` variables with the given node limit.
    pub fn new(num_vars: usize, node_limit: usize) -> Manager {
        Manager {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: 0,
                    hi: 0,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: 1,
                    hi: 1,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            num_vars,
            node_limit,
        }
    }

    /// Number of variables of the manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of live nodes (including the two terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> Result<u32, BddOverflow> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return Ok(id);
        }
        if self.nodes.len() >= self.node_limit {
            return Err(BddOverflow {
                limit: self.node_limit,
            });
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        Ok(id)
    }

    /// Returns the function of variable `index`.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is hit.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn var(&mut self, index: usize) -> Result<Bdd, BddOverflow> {
        assert!(index < self.num_vars, "variable index out of range");
        Ok(Bdd(self.mk(index as u32, 0, 1)?))
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)`.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is hit.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Result<Bdd, BddOverflow> {
        Ok(Bdd(self.ite_rec(f.0, g.0, h.0)?))
    }

    fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> Result<u32, BddOverflow> {
        // Terminal cases.
        if f == 1 {
            return Ok(g);
        }
        if f == 0 {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == 1 && h == 0 {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let top = [f, g, h]
            .iter()
            .map(|&x| self.nodes[x as usize].var)
            .min()
            .expect("non-empty");
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite_rec(f0, g0, h0)?;
        let hi = self.ite_rec(f1, g1, h1)?;
        let result = self.mk(top, lo, hi)?;
        self.ite_cache.insert((f, g, h), result);
        Ok(result)
    }

    fn cofactors(&self, f: u32, var: u32) -> (u32, u32) {
        let node = self.nodes[f as usize];
        if node.var == var {
            (node.lo, node.hi)
        } else {
            (f, f)
        }
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is hit.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddOverflow> {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is hit.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddOverflow> {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Negation.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is hit.
    pub fn not(&mut self, f: Bdd) -> Result<Bdd, BddOverflow> {
        self.ite(f, Bdd::FALSE, Bdd::TRUE)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is hit.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddOverflow> {
        let ng = self.not(g)?;
        self.ite(f, ng, g)
    }

    /// Biconditional (`f ↔ g`).
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is hit.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddOverflow> {
        let x = self.xor(f, g)?;
        self.not(x)
    }

    /// Existential quantification of the variables for which `quantified`
    /// returns `true`.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is hit.
    pub fn exists(&mut self, f: Bdd, quantified: &[bool]) -> Result<Bdd, BddOverflow> {
        let mut cache = HashMap::new();
        Ok(Bdd(self.exists_rec(f.0, quantified, &mut cache)?))
    }

    fn exists_rec(
        &mut self,
        f: u32,
        quantified: &[bool],
        cache: &mut HashMap<u32, u32>,
    ) -> Result<u32, BddOverflow> {
        if f <= 1 {
            return Ok(f);
        }
        if let Some(&r) = cache.get(&f) {
            return Ok(r);
        }
        let node = self.nodes[f as usize];
        let lo = self.exists_rec(node.lo, quantified, cache)?;
        let hi = self.exists_rec(node.hi, quantified, cache)?;
        let result = if quantified.get(node.var as usize).copied().unwrap_or(false) {
            self.ite_rec(lo, 1, hi)?
        } else {
            self.mk(node.var, lo, hi)?
        };
        cache.insert(f, result);
        Ok(result)
    }

    /// Renames variables according to `map` (`map[v]` is the new index of
    /// variable `v`).
    ///
    /// The mapping must be order-preserving on the support of `f`, i.e. if
    /// `u < v` both occur in `f` then `map[u] < map[v]`; this keeps the
    /// result reduced and ordered without a re-ordering pass.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is hit.
    pub fn rename(&mut self, f: Bdd, map: &[usize]) -> Result<Bdd, BddOverflow> {
        let mut cache = HashMap::new();
        Ok(Bdd(self.rename_rec(f.0, map, &mut cache)?))
    }

    fn rename_rec(
        &mut self,
        f: u32,
        map: &[usize],
        cache: &mut HashMap<u32, u32>,
    ) -> Result<u32, BddOverflow> {
        if f <= 1 {
            return Ok(f);
        }
        if let Some(&r) = cache.get(&f) {
            return Ok(r);
        }
        let node = self.nodes[f as usize];
        let lo = self.rename_rec(node.lo, map, cache)?;
        let hi = self.rename_rec(node.hi, map, cache)?;
        let new_var = map[node.var as usize] as u32;
        let result = self.mk(new_var, lo, hi)?;
        cache.insert(f, result);
        Ok(result)
    }

    /// Evaluates `f` under a total assignment.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f.0;
        loop {
            if cur == 0 {
                return false;
            }
            if cur == 1 {
                return true;
            }
            let node = self.nodes[cur as usize];
            cur = if assignment[node.var as usize] {
                node.hi
            } else {
                node.lo
            };
        }
    }

    /// Returns `true` when `f` is the constant-false function.
    pub fn is_false(&self, f: Bdd) -> bool {
        f == Bdd::FALSE
    }

    /// Counts the number of satisfying assignments of `f` over all
    /// `num_vars` variables.
    pub fn sat_count(&self, f: Bdd) -> f64 {
        let mut cache: HashMap<u32, f64> = HashMap::new();
        self.sat_count_rec(f.0, &mut cache) * 2f64.powi(self.level_of(f.0) as i32)
    }

    fn level_of(&self, f: u32) -> u32 {
        if f <= 1 {
            self.num_vars as u32
        } else {
            self.nodes[f as usize].var
        }
    }

    fn sat_count_rec(&self, f: u32, cache: &mut HashMap<u32, f64>) -> f64 {
        if f == 0 {
            return 0.0;
        }
        if f == 1 {
            return 1.0;
        }
        if let Some(&r) = cache.get(&f) {
            return r;
        }
        let node = self.nodes[f as usize];
        let lo = self.sat_count_rec(node.lo, cache)
            * 2f64.powi((self.level_of(node.lo) - node.var - 1) as i32);
        let hi = self.sat_count_rec(node.hi, cache)
            * 2f64.powi((self.level_of(node.hi) - node.var - 1) as i32);
        let result = lo + hi;
        cache.insert(f, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_variables() {
        let mut mgr = Manager::new(3, 1000);
        let x = mgr.var(0).unwrap();
        assert!(mgr.eval(x, &[true, false, false]));
        assert!(!mgr.eval(x, &[false, true, true]));
        assert!(mgr.eval(Bdd::TRUE, &[false, false, false]));
        assert!(!mgr.eval(Bdd::FALSE, &[true, true, true]));
    }

    #[test]
    fn boolean_operations_match_truth_tables() {
        let mut mgr = Manager::new(2, 1000);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let and = mgr.and(x, y).unwrap();
        let or = mgr.or(x, y).unwrap();
        let xor = mgr.xor(x, y).unwrap();
        let iff = mgr.iff(x, y).unwrap();
        let not_x = mgr.not(x).unwrap();
        for a in [false, true] {
            for b in [false, true] {
                let env = [a, b];
                assert_eq!(mgr.eval(and, &env), a && b);
                assert_eq!(mgr.eval(or, &env), a || b);
                assert_eq!(mgr.eval(xor, &env), a ^ b);
                assert_eq!(mgr.eval(iff, &env), a == b);
                assert_eq!(mgr.eval(not_x, &env), !a);
            }
        }
    }

    #[test]
    fn hash_consing_is_canonical() {
        let mut mgr = Manager::new(2, 1000);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let a = mgr.and(x, y).unwrap();
        let b = mgr.and(y, x).unwrap();
        assert_eq!(a, b);
        let t = mgr.or(x, Bdd::TRUE).unwrap();
        assert_eq!(t, Bdd::TRUE);
    }

    #[test]
    fn existential_quantification() {
        let mut mgr = Manager::new(2, 1000);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let f = mgr.and(x, y).unwrap();
        // ∃x. x ∧ y  ≡  y
        let q = mgr.exists(f, &[true, false]).unwrap();
        assert_eq!(q, y);
        // ∃x,y. x ∧ y ≡ true
        let q = mgr.exists(f, &[true, true]).unwrap();
        assert_eq!(q, Bdd::TRUE);
    }

    #[test]
    fn rename_shifts_variables() {
        let mut mgr = Manager::new(4, 1000);
        let x2 = mgr.var(2).unwrap();
        let x3 = mgr.var(3).unwrap();
        let f = mgr.and(x2, x3).unwrap();
        // Map 2 -> 0, 3 -> 1 (order preserving).
        let g = mgr.rename(f, &[0, 1, 0, 1]).unwrap();
        let x0 = mgr.var(0).unwrap();
        let x1 = mgr.var(1).unwrap();
        let expected = mgr.and(x0, x1).unwrap();
        assert_eq!(g, expected);
    }

    #[test]
    fn node_limit_triggers_overflow() {
        let mut mgr = Manager::new(16, 24);
        let mut acc = Bdd::TRUE;
        let mut overflowed = false;
        for i in 0..16 {
            let v = match mgr.var(i) {
                Ok(v) => v,
                Err(_) => {
                    overflowed = true;
                    break;
                }
            };
            match mgr.xor(acc, v) {
                Ok(f) => acc = f,
                Err(_) => {
                    overflowed = true;
                    break;
                }
            }
        }
        assert!(overflowed, "tiny node limit must eventually overflow");
    }

    #[test]
    fn sat_count_of_simple_functions() {
        let mut mgr = Manager::new(3, 1000);
        let x = mgr.var(0).unwrap();
        let y = mgr.var(1).unwrap();
        let f = mgr.and(x, y).unwrap();
        assert_eq!(mgr.sat_count(f) as u64, 2); // x ∧ y, z free
        assert_eq!(mgr.sat_count(Bdd::TRUE) as u64, 8);
        assert_eq!(mgr.sat_count(Bdd::FALSE) as u64, 0);
        let g = mgr.or(x, y).unwrap();
        assert_eq!(mgr.sat_count(g) as u64, 6);
    }

    #[test]
    fn eval_agrees_with_random_formula_structure() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let n = 6usize;
        let mut mgr = Manager::new(n, 100_000);
        // Build a random expression tree and an equivalent closure.
        let vars: Vec<Bdd> = (0..n).map(|i| mgr.var(i).unwrap()).collect();
        let mut f = vars[0];
        let mut ops: Vec<(u8, usize)> = Vec::new();
        for _ in 0..12 {
            let op = rng.gen_range(0..3u8);
            let v = rng.gen_range(0..n);
            f = match op {
                0 => mgr.and(f, vars[v]).unwrap(),
                1 => mgr.or(f, vars[v]).unwrap(),
                _ => mgr.xor(f, vars[v]).unwrap(),
            };
            ops.push((op, v));
        }
        for bits in 0..(1u32 << n) {
            let env: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            let mut expected = env[0];
            for &(op, v) in &ops {
                expected = match op {
                    0 => expected && env[v],
                    1 => expected || env[v],
                    _ => expected ^ env[v],
                };
            }
            assert_eq!(mgr.eval(f, &env), expected);
        }
    }
}
