//! The verification engines evaluated in the paper.

pub mod bmc;
pub mod itp;
pub mod itpseq;
pub mod itpseq_cba;
mod seq;
pub mod sitpseq;
