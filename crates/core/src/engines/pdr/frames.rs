//! The PDR trace: cubes over latches and the delta-encoded frame sequence.

/// A cube (conjunction) of latch literals: sorted `(latch, value)` pairs.
///
/// Cubes denote *sets of states* — a state is in the cube iff it agrees
/// with every pair.  The negation of a cube is the frame *lemma* (a clause
/// over the latch variables) that PDR learns.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Cube {
    lits: Vec<(usize, bool)>,
}

impl Cube {
    /// Builds a cube from `(latch, value)` pairs (sorted and deduplicated).
    pub fn new(mut lits: Vec<(usize, bool)>) -> Cube {
        lits.sort_unstable();
        lits.dedup();
        debug_assert!(
            lits.windows(2).all(|w| w[0].0 != w[1].0),
            "a cube cannot constrain one latch both ways"
        );
        Cube { lits }
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Returns `true` when the cube has no literals (the universal cube).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Iterates over the `(latch, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.lits.iter().copied()
    }

    /// Returns a copy with the literal at `index` removed.
    pub fn without(&self, index: usize) -> Cube {
        let mut lits = self.lits.clone();
        lits.remove(index);
        Cube { lits }
    }

    /// Returns a copy with `(latch, value)` inserted.
    pub fn with(&self, latch: usize, value: bool) -> Cube {
        let mut lits = self.lits.clone();
        lits.push((latch, value));
        Cube::new(lits)
    }

    /// Returns `true` when the concrete state `state` (one value per latch)
    /// lies inside the cube.
    pub fn contains_state(&self, state: &[bool]) -> bool {
        self.lits
            .iter()
            .all(|&(latch, value)| state[latch] == value)
    }

    /// Returns `true` when `self`'s literals are a subset of `other`'s —
    /// i.e. `self` denotes a superset of states, so the lemma `¬self`
    /// subsumes the lemma `¬other`.
    pub fn subsumes(&self, other: &Cube) -> bool {
        if self.lits.len() > other.lits.len() {
            return false;
        }
        let mut rest = other.lits.iter();
        'outer: for lit in &self.lits {
            for candidate in rest.by_ref() {
                if candidate == lit {
                    continue 'outer;
                }
                if candidate.0 > lit.0 {
                    return false;
                }
            }
            return false;
        }
        true
    }
}

/// The monotone frame sequence `F_0 ⊆ F_1 ⊆ … ⊆ F_k` (as state sets), kept
/// in *delta encoding*: `delta[i]` holds the cubes whose highest blocked
/// frame is `i`, so the lemma set of `F_i` is `¬delta[i] ∪ ¬delta[i+1] ∪ …`.
///
/// `delta[0]` is a sentinel for the initial-states frame and stays empty —
/// `F_0 = I` is represented exactly by the init solver, not by lemmas.
#[derive(Clone, Debug, Default)]
pub(crate) struct FrameTrace {
    delta: Vec<Vec<Cube>>,
}

impl FrameTrace {
    /// Creates a trace holding only the `F_0` sentinel.
    pub fn new() -> FrameTrace {
        FrameTrace {
            delta: vec![Vec::new()],
        }
    }

    /// Index of the frontier frame (the current level `k`).
    pub fn level(&self) -> usize {
        self.delta.len() - 1
    }

    /// Opens a new (initially unconstrained) frontier frame.
    pub fn push_frame(&mut self) {
        self.delta.push(Vec::new());
    }

    /// Records `cube` as blocked up to `frame`.
    ///
    /// Returns `false` (and changes nothing) when an existing lemma at
    /// `frame` or above already subsumes it.  Otherwise drops the weaker
    /// lemmas it subsumes at `frame` and below, installs the cube and
    /// returns `true`.
    pub fn add(&mut self, frame: usize, cube: Cube) -> bool {
        debug_assert!(frame >= 1 && frame <= self.level());
        if self.delta[frame..]
            .iter()
            .any(|cubes| cubes.iter().any(|d| d.subsumes(&cube)))
        {
            return false;
        }
        for cubes in &mut self.delta[1..=frame] {
            cubes.retain(|d| !cube.subsumes(d));
        }
        self.delta[frame].push(cube);
        true
    }

    /// The cubes whose highest blocked frame is exactly `frame`.
    #[cfg(test)]
    pub fn cubes_at(&self, frame: usize) -> &[Cube] {
        &self.delta[frame]
    }

    /// Removes and returns the cubes at `frame` (used by propagation).
    pub fn take_frame(&mut self, frame: usize) -> Vec<Cube> {
        std::mem::take(&mut self.delta[frame])
    }

    /// Re-installs a cube at `frame` without subsumption checks (used by
    /// propagation to put back cubes that did not move).
    pub fn restore(&mut self, frame: usize, cube: Cube) {
        self.delta[frame].push(cube);
    }

    /// Returns `true` when `F_frame` and `F_{frame+1}` hold the same
    /// lemmas — the PDR fixpoint.
    pub fn frame_converged(&self, frame: usize) -> bool {
        self.delta[frame].is_empty()
    }

    /// The lemma clauses of `F_frame` — one clause `¬cube` per cube in
    /// `delta[frame..]`, as `(latch, phase)` literals — i.e. the converged
    /// frame as an inductive-invariant certificate.
    pub fn invariant_clauses(&self, frame: usize) -> Vec<Vec<(usize, bool)>> {
        self.delta[frame..]
            .iter()
            .flat_map(|cubes| cubes.iter())
            .map(|cube| cube.iter().map(|(latch, value)| (latch, !value)).collect())
            .collect()
    }

    /// Total number of live lemmas in the trace.
    #[cfg(test)]
    pub fn total_lemmas(&self) -> usize {
        self.delta.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(lits: &[(usize, bool)]) -> Cube {
        Cube::new(lits.to_vec())
    }

    #[test]
    fn cubes_sort_and_answer_membership() {
        let c = cube(&[(2, false), (0, true)]);
        assert_eq!(c.len(), 2);
        assert!(c.contains_state(&[true, false, false]));
        assert!(c.contains_state(&[true, true, false]));
        assert!(!c.contains_state(&[false, true, false]));
        assert!(cube(&[]).contains_state(&[false, false]));
    }

    #[test]
    fn subsumption_is_literal_subset() {
        let small = cube(&[(1, true)]);
        let big = cube(&[(0, false), (1, true), (3, false)]);
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        assert!(small.subsumes(&small));
        assert!(!cube(&[(1, false)]).subsumes(&big));
        assert!(cube(&[]).subsumes(&small));
    }

    #[test]
    fn without_and_with_edit_literals() {
        let c = cube(&[(0, true), (2, false)]);
        assert_eq!(c.without(0), cube(&[(2, false)]));
        assert_eq!(c.with(1, true), cube(&[(0, true), (1, true), (2, false)]));
    }

    #[test]
    fn trace_add_prunes_weaker_lemmas_below() {
        let mut trace = FrameTrace::new();
        trace.push_frame();
        trace.push_frame();
        // A weak lemma at frame 1, then a stronger one at frame 2.
        assert!(trace.add(1, cube(&[(0, true), (1, true)])));
        assert!(trace.add(2, cube(&[(0, true)])));
        assert!(trace.cubes_at(1).is_empty(), "weaker lemma must be pruned");
        assert_eq!(trace.cubes_at(2).len(), 1);
        assert!(trace.frame_converged(1));
    }

    #[test]
    fn trace_add_rejects_subsumed_cubes() {
        let mut trace = FrameTrace::new();
        trace.push_frame();
        trace.push_frame();
        assert!(trace.add(2, cube(&[(0, true)])));
        // Weaker cube at a lower frame: already covered by the lemma above.
        assert!(!trace.add(1, cube(&[(0, true), (1, false)])));
        assert_eq!(trace.total_lemmas(), 1);
    }

    #[test]
    fn take_and_restore_support_propagation() {
        let mut trace = FrameTrace::new();
        trace.push_frame();
        trace.push_frame();
        assert!(trace.add(1, cube(&[(0, true)])));
        let taken = trace.take_frame(1);
        assert_eq!(taken.len(), 1);
        assert!(trace.frame_converged(1));
        trace.restore(1, taken.into_iter().next().unwrap());
        assert_eq!(trace.cubes_at(1).len(), 1);
    }
}
