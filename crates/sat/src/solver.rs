//! The CDCL search engine.

use crate::luby::luby;
use crate::proof::{Chain, ClauseOrigin, Proof, ProofClause};
use cnf::{Cnf, Lit, Var};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Result of a satisfiability query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment exists; read it with [`Solver::model`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The search was stopped before an answer was found — either the
    /// shared interrupt flag ([`Solver::set_interrupt`]) was raised or the
    /// per-call conflict budget ([`Solver::set_conflict_limit`]) ran out.
    ///
    /// The solver stays usable: a later call without the interruption can
    /// still answer `Sat` or `Unsat`.  Models, cores and proofs are *not*
    /// meaningful after an interrupted call.
    Interrupted,
}

/// Aggregate search statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned clauses.
    pub learned: u64,
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, other: SolverStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.learned += other.learned;
    }
}

/// How many conflicts-or-decisions pass between two polls of the shared
/// interrupt flag during search.
pub const INTERRUPT_CHECK_INTERVAL: u64 = 64;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

#[derive(Clone, Debug)]
struct ClauseData {
    lits: Vec<Lit>,
    origin: ClauseOrigin,
}

#[derive(Clone, Copy, Debug)]
struct HeapEntry {
    activity: f64,
    var: Var,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.activity == other.activity && self.var == other.var
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.activity
            .partial_cmp(&other.activity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.var.cmp(&other.var))
    }
}

/// A conflict-driven clause-learning SAT solver with proof logging.
///
/// See the crate-level documentation for an overview and an example.
#[derive(Clone, Debug)]
pub struct Solver {
    clauses: Vec<ClauseData>,
    watches: Vec<Vec<usize>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: BinaryHeap<HeapEntry>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    final_chain: Option<Chain>,
    assumption_core: Vec<Lit>,
    stats: SolverStats,
    status: Option<SolveResult>,
    /// Cooperative cancellation flag, checked periodically during search.
    /// Cloned solvers share the flag, so one `cancel` stops a whole family
    /// of worker clones.
    interrupt: Option<Arc<AtomicBool>>,
    /// Per-call conflict budget; `None` means unlimited.
    conflict_limit: Option<u64>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: BinaryHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            final_chain: None,
            assumption_core: Vec::new(),
            stats: SolverStats::default(),
            status: None,
            interrupt: None,
            conflict_limit: None,
        }
    }

    /// Installs (or clears) a shared interrupt flag.
    ///
    /// While the flag reads `true`, [`Solver::solve_with_assumptions`]
    /// returns [`SolveResult::Interrupted`] at the next cancellation point
    /// (every `INTERRUPT_CHECK_INTERVAL` conflicts-or-decisions).  The
    /// flag is shared: clones of this solver observe the same cancellation.
    pub fn set_interrupt(&mut self, flag: Option<Arc<AtomicBool>>) {
        self.interrupt = flag;
    }

    /// Caps the number of conflicts a single solve call may spend before
    /// giving up with [`SolveResult::Interrupted`]; `None` removes the cap.
    pub fn set_conflict_limit(&mut self, limit: Option<u64>) {
        self.conflict_limit = limit;
    }

    #[inline]
    fn interrupted(&self) -> bool {
        self.interrupt
            .as_ref()
            .is_some_and(|flag| flag.load(AtomicOrdering::Acquire))
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push(HeapEntry {
            activity: 0.0,
            var: v,
        });
        v
    }

    /// Ensures that variables `0..count` exist.
    pub fn ensure_vars(&mut self, count: u32) {
        while (self.assign.len() as u32) < count {
            self.new_var();
        }
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.assign.len() as u32
    }

    /// Number of clauses (original plus learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns the accumulated statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause belonging to interpolation partition `partition`
    /// (use 0 when the clause takes no part in interpolation).
    ///
    /// Variables referenced by the literals are allocated on demand.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I, partition: u32) {
        let lits: Vec<Lit> = lits.into_iter().collect();
        if let Some(max) = lits.iter().map(|l| l.var().index()).max() {
            self.ensure_vars(max + 1);
        }
        if !self.ok {
            return;
        }
        // Clauses are always installed at the root level so that the watch
        // set-up below sees a consistent (level-0) partial assignment.
        self.backtrack(0);
        let id = self.clauses.len();
        self.clauses.push(ClauseData {
            lits,
            origin: ClauseOrigin::Original { partition },
        });
        self.attach_clause(id);
    }

    /// Adds every clause of a [`Cnf`], preserving the partition labels.
    pub fn add_cnf(&mut self, cnf: &Cnf) {
        self.ensure_vars(cnf.num_vars);
        for clause in &cnf.clauses {
            self.add_clause(clause.lits.iter().copied(), clause.partition);
        }
    }

    fn attach_clause(&mut self, id: usize) {
        let lits = self.clauses[id].lits.clone();
        if lits.is_empty() {
            self.ok = false;
            self.final_chain = Some(Chain {
                start: id,
                steps: Vec::new(),
            });
            return;
        }
        if lits.len() == 1 {
            match self.value_lit(lits[0]) {
                LBool::True => {}
                LBool::Undef => self.enqueue(lits[0], Some(id)),
                LBool::False => {
                    self.ok = false;
                    self.final_chain = Some(self.final_chain_from(id));
                }
            }
            return;
        }
        // Move two non-false literals to the watch positions when possible.
        let mut ordered = lits;
        let mut non_false: Vec<usize> = (0..ordered.len())
            .filter(|&i| self.value_lit(ordered[i]) != LBool::False)
            .collect();
        if non_false.is_empty() {
            self.ok = false;
            self.final_chain = Some(self.final_chain_from(id));
            return;
        }
        if non_false.len() == 1 {
            ordered.swap(0, non_false[0]);
            self.clauses[id].lits = ordered.clone();
            self.watch(ordered[0], id);
            self.watch(ordered[1], id);
            if self.value_lit(ordered[0]) == LBool::Undef {
                self.enqueue(ordered[0], Some(id));
            }
            return;
        }
        non_false.truncate(2);
        ordered.swap(0, non_false[0]);
        // After the first swap the second index may have moved.
        let second = if non_false[1] == 0 {
            non_false[0]
        } else {
            non_false[1]
        };
        ordered.swap(1, second);
        self.clauses[id].lits = ordered.clone();
        self.watch(ordered[0], id);
        self.watch(ordered[1], id);
    }

    fn watch(&mut self, lit: Lit, id: usize) {
        self.watches[lit.code() as usize].push(id);
    }

    #[inline]
    fn value_var(&self, var: Var) -> LBool {
        self.assign[var.index() as usize]
    }

    #[inline]
    fn value_lit(&self, lit: Lit) -> LBool {
        match self.assign[lit.var().index() as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if lit.is_negative() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if lit.is_negative() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// Returns the value assigned to `var` by the most recent satisfiable
    /// call, or `None` when the variable is unassigned.
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.value_var(var) {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Returns the value of a literal under the current assignment.
    pub fn lit_value(&self, lit: Lit) -> Option<bool> {
        self.value(lit.var()).map(|v| v != lit.is_negative())
    }

    /// Returns a total model (unassigned variables default to `false`).
    ///
    /// Only meaningful after a [`SolveResult::Sat`] answer.
    pub fn model(&self) -> Vec<bool> {
        (0..self.num_vars())
            .map(|i| self.value(Var::new(i)).unwrap_or(false))
            .collect()
    }

    /// Returns the subset of the assumptions responsible for the last
    /// `Unsat` answer of [`Solver::solve_with_assumptions`].
    ///
    /// Empty when the formula is unsatisfiable regardless of assumptions.
    pub fn assumption_core(&self) -> &[Lit] {
        &self.assumption_core
    }

    /// Returns the resolution proof of the last assumption-free `Unsat`
    /// answer, or `None` when no refutation has been derived.
    pub fn proof(&self) -> Option<Proof> {
        self.final_chain.as_ref()?;
        Some(Proof {
            clauses: self
                .clauses
                .iter()
                .map(|c| ProofClause {
                    lits: c.lits.clone(),
                    origin: c.origin.clone(),
                })
                .collect(),
            empty_clause_chain: self.final_chain.clone(),
        })
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.value_lit(lit), LBool::Undef);
        let v = lit.var().index() as usize;
        self.assign[v] = if lit.is_negative() {
            LBool::False
        } else {
            LBool::True
        };
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
    }

    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let watch_idx = false_lit.code() as usize;
            let mut i = 0;
            while i < self.watches[watch_idx].len() {
                let clause_id = self.watches[watch_idx][i];
                // Make sure the false literal is at position 1.
                let lits_len = self.clauses[clause_id].lits.len();
                if self.clauses[clause_id].lits[0] == false_lit {
                    self.clauses[clause_id].lits.swap(0, 1);
                }
                let first = self.clauses[clause_id].lits[0];
                if self.value_lit(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replaced = false;
                for j in 2..lits_len {
                    let candidate = self.clauses[clause_id].lits[j];
                    if self.value_lit(candidate) != LBool::False {
                        self.clauses[clause_id].lits.swap(1, j);
                        self.watches[watch_idx].swap_remove(i);
                        self.watch(candidate, clause_id);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                if self.value_lit(first) == LBool::False {
                    // Conflict.
                    self.qhead = self.trail.len();
                    return Some(clause_id);
                }
                // Unit clause: propagate `first`.
                self.enqueue(first, Some(clause_id));
                i += 1;
            }
        }
        None
    }

    fn bump_var(&mut self, var: Var) {
        let v = var.index() as usize;
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.push(HeapEntry {
            activity: self.activity[v],
            var,
        });
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis; returns the learned clause (asserting
    /// literal first), the backtrack level and the resolution chain deriving
    /// the learned clause.
    fn analyze(&mut self, confl: usize) -> (Vec<Lit>, usize, Chain) {
        let current_level = self.decision_level() as u32;
        let mut learned: Vec<Lit> = vec![Lit::positive(Var::new(0))];
        let mut chain = Chain {
            start: confl,
            steps: Vec::new(),
        };
        let mut to_clear: Vec<usize> = Vec::new();
        let mut path_count: u32 = 0;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut clause_id = confl;

        loop {
            if let Some(pl) = p {
                chain.steps.push((pl.var(), clause_id));
            }
            let lits = self.clauses[clause_id].lits.clone();
            for &q in &lits {
                if let Some(pl) = p {
                    if q.var() == pl.var() {
                        continue;
                    }
                }
                let v = q.var().index() as usize;
                if self.seen[v] {
                    continue;
                }
                self.seen[v] = true;
                to_clear.push(v);
                self.bump_var(q.var());
                if self.level[v] == current_level {
                    path_count += 1;
                } else {
                    // Literals below the current level (including level 0)
                    // stay in the learned clause; keeping the level-0 ones
                    // makes the recorded resolution chain exact.
                    learned.push(q);
                }
            }
            // Find the next current-level literal to resolve on.
            loop {
                index -= 1;
                let v = self.trail[index].var().index() as usize;
                if self.seen[v] && self.level[v] == current_level {
                    break;
                }
            }
            let pivot = self.trail[index];
            path_count -= 1;
            self.seen[pivot.var().index() as usize] = false;
            if path_count == 0 {
                learned[0] = !pivot;
                break;
            }
            p = Some(pivot);
            clause_id = self.reason[pivot.var().index() as usize]
                .expect("propagated literal at current level has a reason");
        }

        for v in to_clear {
            self.seen[v] = false;
        }

        // Determine the backtrack level and place a literal of that level at
        // position 1 so it can be watched.
        let backtrack_level = if learned.len() == 1 {
            0
        } else {
            let mut max_idx = 1;
            for i in 2..learned.len() {
                if self.level[learned[i].var().index() as usize]
                    > self.level[learned[max_idx].var().index() as usize]
                {
                    max_idx = i;
                }
            }
            learned.swap(1, max_idx);
            self.level[learned[1].var().index() as usize] as usize
        };
        (learned, backtrack_level, chain)
    }

    /// Builds the resolution chain refuting the formula from a conflict in
    /// which every literal is falsified at decision level 0.
    fn final_chain_from(&self, confl: usize) -> Chain {
        let mut seen = vec![false; self.num_vars() as usize];
        for &l in &self.clauses[confl].lits {
            seen[l.var().index() as usize] = true;
        }
        let mut steps = Vec::new();
        for &lit in self.trail.iter().rev() {
            let v = lit.var().index() as usize;
            if !seen[v] {
                continue;
            }
            let reason = self.reason[v]
                .expect("level-0 assignments used in the final conflict have reasons");
            steps.push((lit.var(), reason));
            for &q in &self.clauses[reason].lits {
                seen[q.var().index() as usize] = true;
            }
        }
        Chain {
            start: confl,
            steps,
        }
    }

    fn backtrack(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level];
        while self.trail.len() > target {
            let lit = self.trail.pop().expect("trail not empty");
            let v = lit.var().index() as usize;
            self.phase[v] = !lit.is_negative();
            self.assign[v] = LBool::Undef;
            self.reason[v] = None;
            self.heap.push(HeapEntry {
                activity: self.activity[v],
                var: lit.var(),
            });
        }
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len();
    }

    fn add_learned(&mut self, lits: Vec<Lit>, chain: Chain) -> usize {
        let id = self.clauses.len();
        self.stats.learned += 1;
        self.clauses.push(ClauseData {
            lits: lits.clone(),
            origin: ClauseOrigin::Learned { chain },
        });
        if lits.len() >= 2 {
            self.watch(lits[0], id);
            self.watch(lits[1], id);
        }
        self.enqueue(lits[0], Some(id));
        id
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(entry) = self.heap.pop() {
            if self.value_var(entry.var) == LBool::Undef {
                return Some(entry.var);
            }
        }
        // The lazy heap may run dry; fall back to a linear scan.
        (0..self.num_vars())
            .map(Var::new)
            .find(|&v| self.value_var(v) == LBool::Undef)
    }

    fn analyze_final(&mut self, failed: Lit) -> Vec<Lit> {
        let mut core = vec![failed];
        if self.decision_level() == 0 {
            return core;
        }
        let mut seen = vec![false; self.num_vars() as usize];
        seen[failed.var().index() as usize] = true;
        let root = self.trail_lim[0];
        for i in (root..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index() as usize;
            if !seen[v] {
                continue;
            }
            match self.reason[v] {
                None => core.push(lit),
                Some(r) => {
                    for &q in &self.clauses[r].lits {
                        if self.level[q.var().index() as usize] > 0 {
                            seen[q.var().index() as usize] = true;
                        }
                    }
                }
            }
            seen[v] = false;
        }
        core
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// On an `Unsat` answer caused by the assumptions,
    /// [`Solver::assumption_core`] returns the responsible subset.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.assumption_core.clear();
        self.backtrack(0);
        if !self.ok {
            self.status = Some(SolveResult::Unsat);
            return SolveResult::Unsat;
        }
        for a in assumptions {
            self.ensure_vars(a.var().index() + 1);
        }
        if let Some(confl) = self.propagate() {
            self.ok = false;
            self.final_chain = Some(self.final_chain_from(confl));
            self.status = Some(SolveResult::Unsat);
            return SolveResult::Unsat;
        }

        if self.interrupted() {
            self.backtrack(0);
            self.status = Some(SolveResult::Interrupted);
            return SolveResult::Interrupted;
        }

        let mut restart_round: u64 = 0;
        let mut conflicts_since_restart: u64 = 0;
        let mut restart_limit = 100 * luby(restart_round);
        let mut conflicts_this_call: u64 = 0;
        let mut steps: u64 = 0;

        loop {
            steps += 1;
            if steps.is_multiple_of(INTERRUPT_CHECK_INTERVAL) && self.interrupted() {
                self.backtrack(0);
                self.status = Some(SolveResult::Interrupted);
                return SolveResult::Interrupted;
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                conflicts_this_call += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    self.final_chain = Some(self.final_chain_from(confl));
                    self.status = Some(SolveResult::Unsat);
                    return SolveResult::Unsat;
                }
                if self
                    .conflict_limit
                    .is_some_and(|limit| conflicts_this_call > limit)
                {
                    self.backtrack(0);
                    self.status = Some(SolveResult::Interrupted);
                    return SolveResult::Interrupted;
                }
                let (learned, backtrack_level, chain) = self.analyze(confl);
                self.backtrack(backtrack_level);
                self.add_learned(learned, chain);
                self.decay_activities();
            } else {
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    restart_round += 1;
                    conflicts_since_restart = 0;
                    restart_limit = 100 * luby(restart_round);
                    self.backtrack(0);
                    continue;
                }
                if self.decision_level() < assumptions.len() {
                    let p = assumptions[self.decision_level()];
                    match self.value_lit(p) {
                        LBool::True => {
                            // Already satisfied: open a dummy level so the
                            // remaining assumptions keep their positions.
                            self.new_decision_level();
                        }
                        LBool::False => {
                            self.assumption_core = self.analyze_final(p);
                            self.status = Some(SolveResult::Unsat);
                            return SolveResult::Unsat;
                        }
                        LBool::Undef => {
                            self.new_decision_level();
                            self.enqueue(p, None);
                        }
                    }
                } else {
                    match self.pick_branch_var() {
                        None => {
                            self.status = Some(SolveResult::Sat);
                            return SolveResult::Sat;
                        }
                        Some(v) => {
                            self.stats.decisions += 1;
                            self.new_decision_level();
                            let lit = Lit::new(v, !self.phase[v.index() as usize]);
                            self.enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }

    /// Returns the result of the most recent solve call, if any.
    pub fn status(&self) -> Option<SolveResult> {
        self.status
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: usize, neg: bool) -> Lit {
        Lit::new(solver_vars[i], neg)
    }

    fn vars(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn single_unit_clause() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([lit(&v, 0, false)], 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
    }

    #[test]
    fn contradictory_units_are_unsat_with_proof() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true)], 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("proof available");
        proof.check().expect("proof must check");
    }

    #[test]
    fn simple_implication_chain_unsat() {
        // a, a->b, b->c, ¬c
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true), lit(&v, 1, false)], 1);
        s.add_clause([lit(&v, 1, true), lit(&v, 2, false)], 2);
        s.add_clause([lit(&v, 2, true)], 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.proof().expect("proof").check().expect("valid proof");
    }

    #[test]
    fn satisfiable_2sat_instance() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause([lit(&v, 0, false), lit(&v, 1, false)], 1);
        s.add_clause([lit(&v, 0, true), lit(&v, 2, false)], 1);
        s.add_clause([lit(&v, 1, true), lit(&v, 3, false)], 1);
        s.add_clause([lit(&v, 2, true), lit(&v, 3, true)], 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        let model = s.model();
        // Verify the model satisfies every clause.
        assert!(model[v[0].index() as usize] || model[v[1].index() as usize]);
        assert!(!model[v[0].index() as usize] || model[v[2].index() as usize]);
        assert!(!model[v[1].index() as usize] || model[v[3].index() as usize]);
        assert!(!model[v[2].index() as usize] || !model[v[3].index() as usize]);
    }

    /// Encodes the pigeonhole principle PHP(holes+1, holes), a classic
    /// unsatisfiable family that genuinely exercises clause learning.
    fn pigeonhole(solver: &mut Solver, holes: usize) {
        let pigeons = holes + 1;
        let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
        solver.ensure_vars((pigeons * holes) as u32);
        for p in 0..pigeons {
            let clause: Vec<Lit> = (0..holes).map(|h| Lit::positive(var(p, h))).collect();
            solver.add_clause(clause, 1);
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    solver.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))], 2);
                }
            }
        }
    }

    #[test]
    fn pigeonhole_unsat_with_valid_proof() {
        for holes in 2..=5 {
            let mut s = Solver::new();
            pigeonhole(&mut s, holes);
            assert_eq!(s.solve(), SolveResult::Unsat, "php({holes})");
            let proof = s.proof().expect("proof");
            proof.check().expect("proof checks");
            assert!(proof.num_learned() > 0 || holes <= 2);
        }
    }

    #[test]
    fn random_3sat_agrees_with_reference_dpll() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(20110316);
        for round in 0..40 {
            let num_vars = 8 + (round % 5);
            let num_clauses = (num_vars as f64 * 4.0) as usize;
            let mut cnf_builder = cnf::CnfBuilder::new();
            for _ in 0..num_vars {
                cnf_builder.new_var();
            }
            cnf_builder.set_partition(1);
            for _ in 0..num_clauses {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let v = Var::new(rng.gen_range(0..num_vars) as u32);
                    clause.push(Lit::new(v, rng.gen_bool(0.5)));
                }
                cnf_builder.add_clause(clause);
            }
            let cnf = cnf_builder.into_cnf();
            let expected = reference_sat(&cnf);
            let mut s = Solver::new();
            s.add_cnf(&cnf);
            let got = s.solve() == SolveResult::Sat;
            assert_eq!(got, expected, "round {round}");
            if got {
                let model = s.model();
                assert!(cnf.evaluate(&model), "model must satisfy the formula");
            } else {
                s.proof().expect("proof").check().expect("proof checks");
            }
        }
    }

    fn reference_sat(cnf: &Cnf) -> bool {
        let n = cnf.num_vars;
        (0..(1u64 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            cnf.evaluate(&assignment)
        })
    }

    #[test]
    fn assumptions_select_branches() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        // a -> b
        s.add_clause([lit(&v, 0, true), lit(&v, 1, false)], 1);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 0, false), lit(&v, 1, true)]),
            SolveResult::Unsat
        );
        let core = s.assumption_core().to_vec();
        assert!(!core.is_empty());
        // Without the conflicting assumption the instance is satisfiable.
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 0, false)]),
            SolveResult::Sat
        );
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn assumption_core_is_subset_of_assumptions() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        // x0 ∧ x1 -> conflict; x2, x3 irrelevant.
        s.add_clause([lit(&v, 0, true), lit(&v, 1, true)], 1);
        let assumptions = [
            lit(&v, 2, false),
            lit(&v, 0, false),
            lit(&v, 3, false),
            lit(&v, 1, false),
        ];
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        for l in s.assumption_core() {
            assert!(assumptions.contains(l) || assumptions.contains(&!*l));
        }
        // The irrelevant assumptions must not both be required.
        let core = s.assumption_core();
        assert!(core.len() <= 3);
    }

    #[test]
    fn solver_is_reusable_after_sat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([lit(&v, 0, false), lit(&v, 1, false)], 1);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 0, true)]),
            SolveResult::Sat
        );
        assert_eq!(s.value(v[1]), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[lit(&v, 0, true), lit(&v, 1, true)]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        let _ = s.solve();
        let stats = s.stats();
        assert!(stats.conflicts > 0);
        assert!(stats.decisions > 0);
        assert!(stats.propagations > 0);
    }

    #[test]
    fn preset_interrupt_flag_stops_the_search() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(flag.clone()));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        assert_eq!(s.status(), Some(SolveResult::Interrupted));
        // Clearing the flag makes the same solver answer definitively.
        flag.store(false, AtomicOrdering::Release);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.proof().expect("proof").check().expect("proof checks");
    }

    #[test]
    fn interrupt_flag_is_shared_across_clones() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 4);
        let flag = Arc::new(AtomicBool::new(false));
        s.set_interrupt(Some(flag.clone()));
        let mut clone = s.clone();
        flag.store(true, AtomicOrdering::Release);
        assert_eq!(clone.solve(), SolveResult::Interrupted);
        assert_eq!(s.solve(), SolveResult::Interrupted);
    }

    #[test]
    fn conflict_limit_budgets_a_single_call() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 5);
        s.set_conflict_limit(Some(1));
        assert_eq!(s.solve(), SolveResult::Interrupted);
        s.set_conflict_limit(None);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn conflict_limit_does_not_mask_easy_answers() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([lit(&v, 0, false), lit(&v, 1, false)], 1);
        s.set_conflict_limit(Some(0));
        assert_eq!(s.solve(), SolveResult::Sat);
        // A root-level refutation is still reported as Unsat, not a budget
        // overrun.
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true)], 1);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn adding_clause_after_root_conflict_is_ignored() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true)], 1);
        s.add_clause([lit(&v, 0, false)], 1);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_makes_formula_unsat() {
        let mut s = Solver::new();
        s.add_clause(std::iter::empty(), 1);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("proof");
        proof
            .check()
            .expect("empty clause proof is trivially valid");
    }

    #[test]
    fn proofs_reference_partitions() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause([lit(&v, 0, false)], 1);
        s.add_clause([lit(&v, 0, true), lit(&v, 1, false)], 1);
        s.add_clause([lit(&v, 1, true)], 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let proof = s.proof().expect("proof");
        assert_eq!(proof.num_partitions(), 2);
        assert_eq!(proof.num_original(), 3);
    }
}
