//! Criterion group contrasting scratch re-encoding against the
//! incremental unrolling cache: the total cost of producing the CNF for
//! every bound `1..=K` of a BMC run, the pattern the engines' bound loops
//! execute.  The scratch path re-Tseitin-encodes all `k` frames at every
//! bound (`O(K²)` work); the incremental path encodes each frame once
//! (`O(K)`).

use cnf::{BmcCheck, IncrementalUnroller};
use criterion::{criterion_group, criterion_main, Criterion};

/// Encodes every bound up to `max_bound` from scratch, as the engines did
/// before the unrolling cache.
fn scratch_encode(aig: &aig::Aig, max_bound: usize, check: BmcCheck) -> usize {
    let mut total_clauses = 0;
    for k in 1..=max_bound {
        let instance = cnf::bmc::build(aig, 0, k, check);
        total_clauses += instance.cnf.clauses.len();
    }
    total_clauses
}

/// Grows one persistent unrolling to `max_bound`, draining only the delta
/// clauses per bound — the pattern of the incremental BMC engine.
fn incremental_encode(aig: &aig::Aig, max_bound: usize) -> usize {
    let mut unroller = IncrementalUnroller::new(aig);
    unroller.assert_initial(0);
    let mut total_clauses = 0;
    for k in 1..=max_bound {
        unroller.add_frame();
        let _ = unroller.bad_lit(k, 0);
        total_clauses += unroller.pending_clauses().len();
        unroller.mark_drained();
    }
    total_clauses
}

fn fig_unroll(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_unroll");
    group.sample_size(10);
    for benchmark in workloads::suite::mid_size() {
        for max_bound in [16usize, 32] {
            group.bench_function(format!("scratch/{}/{max_bound}", benchmark.name), |b| {
                b.iter(|| scratch_encode(&benchmark.aig, max_bound, BmcCheck::ExactAssume))
            });
            group.bench_function(format!("incremental/{}/{max_bound}", benchmark.name), |b| {
                b.iter(|| incremental_encode(&benchmark.aig, max_bound))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig_unroll);
criterion_main!(benches);
