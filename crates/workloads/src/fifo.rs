//! FIFO occupancy controllers.

use aig::builder::{latch_word, word_equals_const, word_increment};
use aig::{Aig, Lit};

/// A FIFO occupancy controller with `2^width - 1` usable slots.
///
/// The environment drives `push` and `pop`; the controller refuses pushes
/// when full and pops when empty, and maintains an occupancy counter.  The
/// safety property is "the occupancy never exceeds the capacity"
/// (`capacity = 2^width - 1`), which holds for the guarded controller.
/// With `seeded_bug`, the full guard is dropped so the counter can wrap
/// past the capacity and the property fails.
pub fn controller(width: usize, seeded_bug: bool) -> Aig {
    assert!(width >= 2, "need at least two occupancy bits");
    let mut aig = Aig::new();
    aig.set_name(format!(
        "fifo{width}{}",
        if seeded_bug { "bug" } else { "ok" }
    ));
    let push = Lit::positive(aig.add_input());
    let pop = Lit::positive(aig.add_input());
    let (ids, occupancy) = latch_word(&mut aig, width, 0);
    let capacity = (1u64 << width) - 1;
    let full = word_equals_const(&mut aig, &occupancy, capacity);
    let empty = word_equals_const(&mut aig, &occupancy, 0);

    let push_allowed = if seeded_bug {
        push
    } else {
        aig.and(push, !full)
    };
    let pop_allowed = aig.and(pop, !empty);
    // Net change: +1 on push only, -1 on pop only, 0 otherwise.
    let up = aig.and(push_allowed, !pop_allowed);
    let down = aig.and(pop_allowed, !push_allowed);
    let incremented = word_increment(&mut aig, &occupancy, up);
    // Decrement = increment by all-ones when `down` (two's complement -1).
    let minus_one: Vec<Lit> = occupancy.iter().map(|_| down).collect();
    let (decremented, _) = aig::builder::word_add(&mut aig, &incremented, &minus_one);
    for (id, n) in ids.iter().zip(decremented.iter()) {
        aig.set_next(*id, *n);
    }
    // Bad: the occupancy counter wrapped around, i.e. it is 0 while the
    // previous cycle pushed into a full FIFO.  We detect the wrap by a
    // sticky overflow flag.
    let overflow = aig.add_latch(false);
    let pushed_when_full = aig.and(push_allowed, full);
    let overflow_cur = aig.latch_lit(overflow);
    let overflow_next = aig.or(overflow_cur, pushed_when_full);
    aig.set_next(overflow, overflow_next);
    aig.add_bad(overflow_cur);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_fifo_never_overflows() {
        let aig = controller(3, false);
        let stim: Vec<Vec<bool>> = (0..30).map(|_| vec![true, false]).collect();
        assert_eq!(aig::simulate(&aig, &stim).first_failure(), None);
    }

    #[test]
    fn unguarded_fifo_overflows_after_capacity_pushes() {
        let aig = controller(3, true);
        let stim: Vec<Vec<bool>> = (0..12).map(|_| vec![true, false]).collect();
        // Capacity is 7, so the 8th push (cycle index 7) overflows and the
        // sticky flag is observable one cycle later.
        assert_eq!(aig::simulate(&aig, &stim).first_failure(), Some(8));
    }

    #[test]
    fn pops_keep_the_fifo_away_from_full() {
        let aig = controller(3, true);
        // Alternate push/pop: occupancy stays at 0/1, never overflows.
        let stim: Vec<Vec<bool>> = (0..20).map(|i| vec![i % 2 == 0, i % 2 == 1]).collect();
        assert_eq!(aig::simulate(&aig, &stim).first_failure(), None);
    }

    #[test]
    fn exact_reachability_confirms_verdicts() {
        assert_eq!(
            bdd::reach::analyze(&controller(2, false), 0, 200_000).verdict,
            bdd::BddVerdict::Pass
        );
        assert!(matches!(
            bdd::reach::analyze(&controller(2, true), 0, 200_000).verdict,
            bdd::BddVerdict::Fail { .. }
        ));
    }
}
