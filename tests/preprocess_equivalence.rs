//! Behavioural-equivalence contract of the preprocessing pass pipeline.
//!
//! Preprocessing must be *pure speed*: on every reachable state the
//! reduced model agrees with the original design on all bad-state
//! literals cycle by cycle, and every engine returns the same verdict
//! kind (and bit-identical counterexample depth) whether the pipeline
//! ran or not.
//!
//! Three layers of evidence:
//!
//! * property-based: random sequential AIGs, simulated raw and reduced
//!   (under the [`aig::passes::Reconstruction`] input projection) for
//!   random stimulus — the bad-value traces must be identical;
//! * the engine A/B: every engine (and `verify_all`) on padded designs
//!   and the HWMCC-style fixture directory, preprocessing on vs off;
//! * the full-suite A/B (`#[ignore]`d, exercised by CI's thread-sanity
//!   job in release mode) over every suite benchmark.

use itpseq::aig::passes::{self, PassConfig};
use itpseq::aig::{self, Aig, Lit};
use itpseq::mc::{Engine, Options, Verdict};
use proptest::prelude::*;
use std::time::Duration;

fn options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(20))
        .with_max_bound(40)
}

fn options_off() -> Options {
    options().with_preprocess(PassConfig::off())
}

/// A free-form sequential AIG built from a flat op list: every entry
/// indexes into the growing literal pool (constants, inputs, latches,
/// then one AND per gate op), so arbitrary `u8` data decodes into a
/// well-formed design — including constant cones, dangling inputs and
/// latches the passes are supposed to sweep.
fn build_random_aig(
    num_inputs: usize,
    inits: &[bool],
    gates: &[(u8, bool, u8, bool)],
    nexts: &[(u8, bool)],
    bad: (u8, bool),
) -> Aig {
    let mut aig = Aig::new();
    let mut pool = vec![Lit::FALSE, Lit::TRUE];
    for i in 0..num_inputs {
        aig.add_input();
        pool.push(aig.input_lit(i));
    }
    let latches: Vec<usize> = inits.iter().map(|&init| aig.add_latch(init)).collect();
    for &latch in &latches {
        pool.push(aig.latch_lit(latch));
    }
    let pick = |pool: &[Lit], index: u8, negate: bool| {
        pool[index as usize % pool.len()].xor_complement(negate)
    };
    for &(a, an, b, bn) in gates {
        let left = pick(&pool, a, an);
        let right = pick(&pool, b, bn);
        let lit = aig.and(left, right);
        pool.push(lit);
    }
    for (&latch, &(n, nn)) in latches.iter().zip(nexts.iter()) {
        let next = pick(&pool, n, nn);
        aig.set_next(latch, next);
    }
    let bad_lit = pick(&pool, bad.0, bad.1);
    aig.add_bad(bad_lit);
    aig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raw and preprocessed models agree on every bad-state literal in
    /// every cycle, for random designs under random stimulus.
    #[test]
    fn reduced_model_simulates_identically(
        num_inputs in 0usize..3,
        inits in proptest::collection::vec(proptest::bool::ANY, 1..5),
        gates in proptest::collection::vec(
            (0u8..255, proptest::bool::ANY, 0u8..255, proptest::bool::ANY),
            0..12,
        ),
        next_specs in proptest::collection::vec((0u8..255, proptest::bool::ANY), 4..5),
        bad in (0u8..255, proptest::bool::ANY),
        stimulus in proptest::collection::vec(
            proptest::collection::vec(proptest::bool::ANY, 3..4), 1..8),
    ) {
        let nexts = &next_specs[..inits.len().min(next_specs.len())];
        let inits = &inits[..nexts.len()];
        let aig = build_random_aig(num_inputs, inits, &gates, nexts, bad);
        let frames: Vec<Vec<bool>> = stimulus
            .iter()
            .map(|frame| frame[..num_inputs].to_vec())
            .collect();
        let raw = aig::simulate(&aig, &frames);

        let result = passes::run(&aig, &PassConfig::default());
        let reduced_frames = result.recon.project_inputs(&frames);
        let reduced = aig::simulate(&result.aig, &reduced_frames);

        prop_assert_eq!(&raw.bad, &reduced.bad);
        // Lifting the projected trace back restores the kept columns.
        let lifted = result.recon.lift_inputs(&reduced_frames);
        prop_assert_eq!(result.recon.project_inputs(&lifted), reduced_frames);
    }
}

/// Asserts kind + depth agreement between a preprocessing-on and a
/// preprocessing-off run of one engine on one property.
fn assert_ab(aig: &Aig, name: &str, engine: Engine, prop: usize) {
    let on = engine.verify(aig, prop, &options()).verdict;
    let off = engine.verify(aig, prop, &options_off()).verdict;
    assert_eq!(
        std::mem::discriminant(&on),
        std::mem::discriminant(&off),
        "{} on {name} p{prop}: preprocessed said {on}, raw said {off}",
        engine.name()
    );
    if let (Verdict::Falsified { depth: a }, Verdict::Falsified { depth: b }) = (&on, &off) {
        assert_eq!(a, b, "{} on {name} p{prop}: depth", engine.name());
    }
}

/// A design with reduction headroom: a live counter core plus a stuck
/// latch, an out-of-COI chain and a dead input.
fn padded(failing: bool) -> Aig {
    let mut aig = Aig::new();
    let (ids, bits) = aig::builder::latch_word(&mut aig, 3, 0);
    let wrap = aig::builder::word_equals_const(&mut aig, &bits, 5);
    let inc = aig::builder::word_increment(&mut aig, &bits, Lit::TRUE);
    let zero = aig::builder::word_const(3, 0);
    let next = aig::builder::word_mux(&mut aig, wrap, &zero, &inc);
    for (id, n) in ids.iter().zip(next.iter()) {
        aig.set_next(*id, *n);
    }
    let stuck = aig.add_latch(true);
    aig.set_next(stuck, Lit::TRUE);
    let free = aig.add_latch(false);
    aig.add_input();
    aig.add_input(); // dead: feeds nothing
    let pad = aig.input_lit(0);
    aig.set_next(free, pad);
    let target = if failing { 4 } else { 7 };
    let hit = aig::builder::word_equals_const(&mut aig, &bits, target);
    let stuck_lit = aig.latch_lit(stuck);
    let bad = aig.and(hit, stuck_lit);
    aig.add_bad(bad);
    aig
}

#[test]
fn every_engine_agrees_on_padded_designs() {
    for failing in [false, true] {
        let aig = padded(failing);
        for engine in Engine::ALL {
            assert_ab(&aig, "padded", engine, 0);
        }
    }
}

#[test]
fn verify_all_agrees_on_the_fixture_directory() {
    let mut checked = 0;
    for entry in std::fs::read_dir("tests/data").expect("fixture dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|ext| ext != "aag") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("fixture read");
        let mut aig = aig::parse_aag(&text).expect("fixture parses");
        aig.promote_outputs_to_bad();
        let name = path.display().to_string();
        for engine in [Engine::Bmc, Engine::Pdr, Engine::Portfolio] {
            let on = engine.verify_all(&aig, &options());
            let off = engine.verify_all(&aig, &options_off());
            assert_eq!(on.statuses.len(), off.statuses.len(), "{name}");
            for (a, b) in on.statuses.iter().zip(off.statuses.iter()) {
                assert_eq!(
                    a.kind_and_depth(),
                    b.kind_and_depth(),
                    "{} on {name}",
                    engine.name()
                );
            }
        }
        checked += 1;
    }
    assert!(checked >= 4, "expected the fixture designs, saw {checked}");
}

/// The full-suite A/B: every engine, every suite benchmark.  Release-mode
/// CI material (`#[ignore]`d in the default run).
#[test]
#[ignore]
fn full_suite_ab_identical_kinds_and_depths() {
    for bench in itpseq::workloads::suite::full() {
        for engine in Engine::ALL {
            assert_ab(&bench.aig, &bench.name, engine, 0);
        }
    }
}
