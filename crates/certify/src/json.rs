//! A minimal JSON reader for `itpseq-cert/v1` documents.
//!
//! The workspace has no serde; the emitters hand-roll their JSON and this
//! reader hand-rolls the inverse.  It accepts the standard grammar
//! (objects, arrays, strings with escapes, numbers, booleans, null), so
//! formatting changes in the emitter cannot break the checker.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a non-negative integer (certificate indices are all
    /// well below the 2^53 exactness limit of the f64 representation).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs never appear in the emitter's
                            // output (it only escapes control characters).
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // the byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "e": "x\"y\n"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[0].as_usize(),
            Some(1)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y\n"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}garbage").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_booleans_and_integers() {
        let v = Json::parse("[[0,false],[12,true]]").unwrap();
        let rows = v.as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[1].as_bool(), Some(false));
        assert_eq!(rows[1].as_array().unwrap()[0].as_usize(), Some(12));
    }
}
