//! Persistent (incremental) time-frame unrolling.
//!
//! The scratch [`Unroller`](crate::Unroller) is the right shape for
//! one-shot instance construction, but every bound loop that rebuilds it
//! at bound `k` re-Tseitin-encodes all `k` frames — `O(k²)` total encoding
//! work across a run that only ever *extends* the unrolling by one frame
//! at a time.
//!
//! [`IncrementalUnroller`] is the persistent variant: it owns its design
//! and keeps the frames, per-frame latch/input variable maps and Tseitin
//! caches alive across bounds, so adding frame `k+1` only encodes the
//! *delta* — the next-state cones at frame `k` and the new frame's latch
//! equalities.  Two consumption styles are supported:
//!
//! * **delta drain** ([`pending_clauses`](IncrementalUnroller::pending_clauses)
//!   / [`mark_drained`](IncrementalUnroller::mark_drained)) — feed only the
//!   newly emitted clauses into a long-lived incremental SAT solver, as the
//!   BMC engine does;
//! * **snapshot** ([`snapshot_with`](IncrementalUnroller::snapshot_with)) —
//!   copy the accumulated clauses plus per-bound target clauses into a
//!   fresh [`Cnf`] for a fresh proof-logging solver, as the interpolation
//!   engines do (their partition-labelled proofs must come from a solver
//!   that saw exactly the bound-`k` formula, so only the *encoding* is
//!   shared there, never the solver).
//!
//! Clause and variable allocation order is exactly the order a scratch
//! `Unroller` driven through the same sequence of operations would
//! produce, which is what lets the engines keep their instances
//! bit-identical to the scratch path (see the seq-engine cache in the
//! model-checker crate).
//!
//! ```
//! use cnf::IncrementalUnroller;
//!
//! let mut aig = aig::Aig::new();
//! let l = aig.add_latch(false);
//! let cur = aig.latch_lit(l);
//! aig.set_next(l, !cur);
//! aig.add_bad(cur);
//!
//! let mut unroller = IncrementalUnroller::new(&aig);
//! unroller.assert_initial(0);
//! unroller.add_frame();
//! let first = unroller.pending_clauses().len();
//! unroller.mark_drained();
//! unroller.add_frame();
//! // The second frame only emitted its delta.
//! assert!(!unroller.pending_clauses().is_empty());
//! assert!(unroller.pending_clauses().len() <= first);
//! ```

use crate::unroll::FrameCore;
use crate::{Clause, Cnf, CnfBuilder, Lit};
use aig::Aig;
use std::sync::Arc;

/// A persistent unrolling of a sequential AIG: frames, variable maps and
/// Tseitin caches survive across bounds, and only delta clauses are
/// emitted when the unrolling grows.
///
/// See the module-level documentation for the two consumption styles.
#[derive(Clone, Debug)]
pub struct IncrementalUnroller {
    /// The design, shared so per-bound clones (the exact-k target path of
    /// the sequence engines) never deep-copy it.
    aig: Arc<Aig>,
    core: FrameCore,
    /// Clauses `0..drained` have already been handed to the consumer.
    drained: usize,
}

impl IncrementalUnroller {
    /// Creates a persistent unroller for `aig` (cloned, so the unroller can
    /// outlive the caller's borrow) with a single frame (frame 0).
    pub fn new(aig: &Aig) -> IncrementalUnroller {
        let core = FrameCore::new(aig);
        IncrementalUnroller {
            aig: Arc::new(aig.clone()),
            core,
            drained: 0,
        }
    }

    /// Returns the underlying design.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Number of frames created so far (at least 1).
    pub fn num_frames(&self) -> usize {
        self.core.num_frames()
    }

    /// Gives mutable access to the clause builder (for partition control
    /// and extra clauses).
    pub fn builder_mut(&mut self) -> &mut CnfBuilder {
        self.core.builder_mut()
    }

    /// Gives read access to the clause builder.
    pub fn builder(&self) -> &CnfBuilder {
        self.core.builder()
    }

    /// Returns the SAT literal of latch `latch` at frame `frame`.
    ///
    /// # Panics
    ///
    /// Panics if the frame or latch index is out of range.
    pub fn latch_lit(&self, frame: usize, latch: usize) -> Lit {
        self.core.latch_lit(frame, latch)
    }

    /// Returns the SAT literals of every latch at frame `frame`.
    pub fn latch_lits(&self, frame: usize) -> Vec<Lit> {
        self.core.latch_lits(frame)
    }

    /// Returns (allocating on demand) the SAT literal of primary input
    /// `input` at frame `frame`.
    pub fn input_lit(&mut self, frame: usize, input: usize) -> Lit {
        self.core.input_lit(&self.aig, frame, input)
    }

    /// Encodes (or retrieves from the frame cache) the SAT literal of an
    /// AIG literal evaluated at frame `frame`.
    pub fn lit(&mut self, frame: usize, lit: aig::Lit) -> Lit {
        self.core.lit(&self.aig, frame, lit)
    }

    /// Asserts that frame `frame` is in the design's initial state.
    pub fn assert_initial(&mut self, frame: usize) {
        self.core.assert_initial(&self.aig, frame);
    }

    /// Adds a new frame and emits the transition constraint
    /// `T(V^{last}, V^{new})`; returns the index of the new frame.
    pub fn add_frame(&mut self) -> usize {
        self.core.add_frame(&self.aig)
    }

    /// Encodes bad-state literal `index` of the design at frame `frame`.
    pub fn bad_lit(&mut self, frame: usize, index: usize) -> Lit {
        self.core.bad_lit(&self.aig, frame, index)
    }

    /// Encodes several bad-state literals at frame `frame` in one call —
    /// the multi-property consumers' bulk form of
    /// [`bad_lit`](Self::bad_lit).  Shared cone structure is encoded once
    /// (the per-frame Tseitin cache deduplicates across properties), so
    /// the emitted delta grows with the *union* of the cones, not their
    /// sum.
    pub fn bad_lits<I>(&mut self, frame: usize, indices: I) -> Vec<Lit>
    where
        I: IntoIterator<Item = usize>,
    {
        indices
            .into_iter()
            .map(|index| self.bad_lit(frame, index))
            .collect()
    }

    /// Asserts an already-encoded SAT literal as a unit clause.
    pub fn assert_lit(&mut self, lit: Lit) {
        self.core.assert_lit(lit);
    }

    /// Total clauses emitted so far (drained or not).
    pub fn num_clauses(&self) -> usize {
        self.core.clauses().len()
    }

    /// Returns the number of SAT variables allocated so far.
    pub fn num_vars(&self) -> u32 {
        self.core.num_vars()
    }

    /// The clauses emitted since the last [`mark_drained`](Self::mark_drained)
    /// — the delta a long-lived incremental solver still has to load.
    pub fn pending_clauses(&self) -> &[Clause] {
        &self.core.clauses()[self.drained..]
    }

    /// Marks every clause emitted so far as consumed; subsequent
    /// [`pending_clauses`](Self::pending_clauses) calls return only newer
    /// clauses.
    pub fn mark_drained(&mut self) {
        self.drained = self.core.clauses().len();
    }

    /// Copies the accumulated clauses plus `extra` per-bound clauses into a
    /// fresh [`Cnf`] (for a fresh proof-logging solver).  The cache itself
    /// is not modified: the extra clauses belong to one bound only.
    pub fn snapshot_with<I>(&self, extra: I) -> Cnf
    where
        I: IntoIterator<Item = Clause>,
    {
        let mut clauses = self.core.clauses().to_vec();
        clauses.extend(extra);
        Cnf {
            num_vars: self.core.num_vars(),
            clauses,
        }
    }

    /// Consumes the unroller and returns the accumulated CNF.
    pub fn into_cnf(self) -> Cnf {
        self.core.into_cnf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unroller;

    fn counter2() -> Aig {
        let mut aig = Aig::new();
        let en = aig::Lit::positive(aig.add_input());
        let (ids, lits) = aig::builder::latch_word(&mut aig, 2, 0);
        let next = aig::builder::word_increment(&mut aig, &lits, en);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = aig.and(lits[0], lits[1]);
        aig.add_bad(bad);
        aig
    }

    /// Drives a scratch unroller and an incremental one through the same
    /// operations: clauses and variables must match exactly.
    #[test]
    fn matches_scratch_unroller_clause_for_clause() {
        let aig = counter2();
        let mut scratch = Unroller::new(&aig);
        let mut incremental = IncrementalUnroller::new(&aig);
        scratch.builder_mut().set_partition(1);
        incremental.builder_mut().set_partition(1);
        scratch.assert_initial(0);
        incremental.assert_initial(0);
        for f in 1..=5usize {
            scratch.builder_mut().set_partition(f as u32 + 1);
            incremental.builder_mut().set_partition(f as u32 + 1);
            scratch.add_frame();
            incremental.add_frame();
            let sb = scratch.bad_lit(f, 0);
            let ib = incremental.bad_lit(f, 0);
            assert_eq!(sb, ib, "bad literal at frame {f}");
        }
        assert_eq!(scratch.num_vars(), incremental.num_vars());
        assert_eq!(scratch.clauses(), incremental.builder().clauses());
    }

    #[test]
    fn delta_drain_covers_every_clause_exactly_once() {
        let aig = counter2();
        let mut u = IncrementalUnroller::new(&aig);
        u.assert_initial(0);
        let mut drained: Vec<Clause> = Vec::new();
        for f in 1..=6usize {
            u.add_frame();
            let _ = u.bad_lit(f, 0);
            drained.extend(u.pending_clauses().iter().cloned());
            u.mark_drained();
            assert!(u.pending_clauses().is_empty());
        }
        assert_eq!(drained.len(), u.num_clauses());
        assert_eq!(&drained[..], u.builder().clauses());
    }

    #[test]
    fn per_frame_delta_is_bounded() {
        // The delta emitted for frame k must not grow with k: that is the
        // O(K) total-encoding property the BMC engine relies on.
        let aig = counter2();
        let mut u = IncrementalUnroller::new(&aig);
        u.assert_initial(0);
        let mut per_frame = Vec::new();
        for f in 1..=10usize {
            u.add_frame();
            let _ = u.bad_lit(f, 0);
            per_frame.push(u.pending_clauses().len());
            u.mark_drained();
        }
        let first = per_frame[1];
        assert!(
            per_frame[1..].iter().all(|&n| n == first),
            "steady-state per-frame delta must be constant: {per_frame:?}"
        );
    }

    /// A counter with three bad cones over the same latch word.
    fn multi_bad_counter() -> Aig {
        let mut aig = counter2();
        let lits: Vec<aig::Lit> = (0..2).map(|l| aig.latch_lit(l)).collect();
        let both_low = aig.and(!lits[0], !lits[1]);
        aig.add_bad(both_low);
        aig.add_bad(lits[0]);
        aig
    }

    #[test]
    fn bulk_bad_encoding_matches_one_by_one() {
        let aig = multi_bad_counter();
        let mut bulk = IncrementalUnroller::new(&aig);
        let mut single = IncrementalUnroller::new(&aig);
        bulk.assert_initial(0);
        single.assert_initial(0);
        let bulk_lits = bulk.bad_lits(0, 0..aig.num_bad());
        let single_lits: Vec<Lit> = (0..aig.num_bad()).map(|i| single.bad_lit(0, i)).collect();
        assert_eq!(bulk_lits, single_lits);
        assert_eq!(bulk.num_clauses(), single.num_clauses());
        // The shared cone structure (the latch literals) is cached: the
        // second and third cones add at most their own gates.
        let mut fresh = IncrementalUnroller::new(&aig);
        fresh.assert_initial(0);
        let _ = fresh.bad_lit(0, 0);
        let after_first = fresh.num_clauses();
        let _ = fresh.bad_lits(0, [1, 2]);
        assert!(
            fresh.num_clauses() - after_first <= after_first,
            "later cones reuse the cached structure"
        );
    }

    #[test]
    fn snapshot_with_keeps_the_cache_untouched() {
        let aig = counter2();
        let mut u = IncrementalUnroller::new(&aig);
        u.builder_mut().set_partition(1);
        u.assert_initial(0);
        u.add_frame();
        let bad = u.bad_lit(1, 0);
        let before = u.num_clauses();
        let cnf = u.snapshot_with([Clause::new(vec![bad], 3)]);
        assert_eq!(u.num_clauses(), before, "snapshot must not grow the cache");
        assert_eq!(cnf.clauses.len(), before + 1);
        assert_eq!(cnf.clauses.last().unwrap().partition, 3);
        assert_eq!(cnf.num_vars, u.num_vars());
    }

    #[test]
    fn owning_the_design_allows_the_borrow_to_end() {
        let u = {
            let aig = counter2();
            let mut u = IncrementalUnroller::new(&aig);
            u.assert_initial(0);
            u.add_frame();
            u
        };
        assert_eq!(u.num_frames(), 2);
        assert_eq!(u.aig().num_latches(), 2);
    }
}
