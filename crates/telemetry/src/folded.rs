//! Inferno-compatible collapsed-stack ("folded") flamegraph export.
//!
//! Each output line is `track;span;span;... weight` where the weight is
//! the stack's *self* time in microseconds — feed the file straight to
//! `inferno-flamegraph` (or Brendan Gregg's `flamegraph.pl`) to get an
//! interactive SVG.  Because self times telescope, the per-track sum of
//! all weights equals the summed duration of the track's root spans
//! exactly (integer arithmetic, no sampling involved) — the balance
//! property the test suite pins down.

use crate::report::{parse_trace_jsonl, RecEvent};
use crate::Event;
use std::collections::BTreeMap;
use std::io::{self, Write};

struct OpenFrame {
    name: String,
    begin_ts: u64,
    child_us: u64,
}

/// Aggregates the folded stacks of an event stream; returns them sorted
/// by stack string with summed weights (inferno accepts duplicates, but
/// merged output is deterministic and diff-friendly).  Unclosed spans are
/// dropped, matching [`TraceReport`](crate::report::TraceReport).
fn fold(events: &[RecEvent]) -> BTreeMap<String, u64> {
    let mut stacks: BTreeMap<String, Vec<OpenFrame>> = BTreeMap::new();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for event in events {
        match event.kind {
            crate::EventKind::Begin => {
                stacks
                    .entry(event.track.clone())
                    .or_default()
                    .push(OpenFrame {
                        name: event.name.clone(),
                        begin_ts: event.ts_us,
                        child_us: 0,
                    });
            }
            crate::EventKind::End => {
                let Some(stack) = stacks.get_mut(&event.track) else {
                    continue;
                };
                let Some(open_at) = stack.iter().rposition(|f| f.name == event.name) else {
                    continue;
                };
                let frame = stack.remove(open_at);
                let duration = event.ts_us.saturating_sub(frame.begin_ts);
                let self_us = duration.saturating_sub(frame.child_us);
                if let Some(parent) = stack.last_mut() {
                    parent.child_us += duration;
                }
                if self_us > 0 {
                    let mut line = String::with_capacity(64);
                    line.push_str(&event.track);
                    for ancestor in stack.iter() {
                        line.push(';');
                        line.push_str(&ancestor.name);
                    }
                    line.push(';');
                    line.push_str(&frame.name);
                    *folded.entry(line).or_default() += self_us;
                }
            }
            _ => {}
        }
    }
    folded
}

/// Writes the folded stacks of an in-memory event stream.
pub fn write_folded(events: &[Event], writer: &mut dyn Write) -> io::Result<()> {
    let rec: Vec<RecEvent> = events.iter().map(RecEvent::from).collect();
    write_folded_rec(&rec, writer)
}

/// Writes the folded stacks of a recorded `itpseq-trace/v1` JSONL
/// document (the `trace-report --folded` path).
pub fn folded_from_jsonl(text: &str) -> Result<String, String> {
    let rec = parse_trace_jsonl(text)?;
    let mut out = Vec::new();
    write_folded_rec(&rec, &mut out).map_err(|e| e.to_string())?;
    String::from_utf8(out).map_err(|e| e.to_string())
}

fn write_folded_rec(events: &[RecEvent], writer: &mut dyn Write) -> io::Result<()> {
    for (stack, weight) in fold(events) {
        writeln!(writer, "{stack} {weight}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(ts_us: u64, track: &str, name: &str, kind: EventKind) -> RecEvent {
        RecEvent {
            ts_us,
            track: track.to_string(),
            name: name.to_string(),
            kind,
            args: Vec::new(),
        }
    }

    #[test]
    fn folded_stacks_telescope_to_root_totals() {
        // run [0..100] { sat [10..30] { minimize [15..25] }, sat [40..50] }
        let events = vec![
            ev(0, "main", "run", EventKind::Begin),
            ev(10, "main", "sat", EventKind::Begin),
            ev(15, "main", "minimize", EventKind::Begin),
            ev(25, "main", "minimize", EventKind::End),
            ev(30, "main", "sat", EventKind::End),
            ev(40, "main", "sat", EventKind::Begin),
            ev(50, "main", "sat", EventKind::End),
            ev(100, "main", "run", EventKind::End),
        ];
        let folded = fold(&events);
        assert_eq!(folded.get("main;run"), Some(&70));
        assert_eq!(folded.get("main;run;sat"), Some(&20));
        assert_eq!(folded.get("main;run;sat;minimize"), Some(&10));
        // Balance: the weights sum to the root span's total duration.
        assert_eq!(folded.values().sum::<u64>(), 100);
    }

    #[test]
    fn tracks_do_not_mix_and_zero_self_frames_are_dropped() {
        let events = vec![
            ev(0, "PDR", "run", EventKind::Begin),
            ev(0, "BMC", "run", EventKind::Begin),
            // PDR's run is fully covered by its child: zero self time.
            ev(0, "PDR", "sat", EventKind::Begin),
            ev(40, "PDR", "sat", EventKind::End),
            ev(40, "PDR", "run", EventKind::End),
            ev(60, "BMC", "run", EventKind::End),
        ];
        let folded = fold(&events);
        assert_eq!(folded.get("PDR;run;sat"), Some(&40));
        assert_eq!(folded.get("PDR;run"), None);
        assert_eq!(folded.get("BMC;run"), Some(&60));
    }

    #[test]
    fn output_lines_parse_as_stack_and_weight() {
        let events = vec![
            ev(0, "main", "run", EventKind::Begin),
            ev(10, "main", "run", EventKind::End),
            ev(20, "main", "run", EventKind::Begin), // left open: dropped
        ];
        let mut out = Vec::new();
        write_folded_rec(&events, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "main;run 10\n");
        for line in text.lines() {
            let (stack, weight) = line.rsplit_once(' ').expect("stack and weight");
            assert!(!stack.is_empty());
            weight.parse::<u64>().expect("numeric weight");
        }
    }
}
