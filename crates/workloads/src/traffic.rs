//! Interlocked traffic-light controllers.

use aig::builder::{latch_word, word_equals_const, word_increment, word_mux};
use aig::{Aig, Lit};

/// Two traffic lights at a crossing, each driven by a phase counter.
///
/// Each direction cycles through `red (0..red_len)`, `green`, `yellow` and
/// back; the two controllers are started half a period apart so that the
/// green phases never overlap.  The safety property is "never both green".
/// With `seeded_bug`, the second controller starts in the same phase as the
/// first and the property fails as soon as both reach green.
pub fn crossing(phase_bits: usize, seeded_bug: bool) -> Aig {
    assert!(phase_bits >= 2, "need at least two phase bits");
    let mut aig = Aig::new();
    aig.set_name(format!(
        "traffic{phase_bits}{}",
        if seeded_bug { "bug" } else { "ok" }
    ));
    let period = 1u64 << phase_bits;
    let half = period / 2;
    // Green exactly in the first half of the phase counter for light A and
    // in the second half for light B, implemented with one phase counter
    // per light and different reset offsets.
    let mut greens = Vec::new();
    for light in 0..2 {
        let offset = if light == 0 || seeded_bug { 0 } else { half };
        let (ids, phase) = latch_word(&mut aig, phase_bits, offset);
        let wrap = word_equals_const(&mut aig, &phase, period - 1);
        let inc = word_increment(&mut aig, &phase, Lit::TRUE);
        let zero = aig::builder::word_const(phase_bits, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        // "green" when the top phase bit is 0 (first half of the period).
        greens.push(!phase[phase_bits - 1]);
    }
    let both_green = aig.and(greens[0], greens[1]);
    aig.add_bad(both_green);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_lights_are_never_both_green() {
        let aig = crossing(3, false);
        let stim = vec![vec![]; 40];
        assert_eq!(aig::simulate(&aig, &stim).first_failure(), None);
    }

    #[test]
    fn aligned_lights_are_both_green_immediately() {
        let aig = crossing(3, true);
        let stim = vec![vec![]; 4];
        assert_eq!(aig::simulate(&aig, &stim).first_failure(), Some(0));
    }

    #[test]
    fn exact_reachability_confirms_verdicts() {
        assert_eq!(
            bdd::reach::analyze(&crossing(3, false), 0, 200_000).verdict,
            bdd::BddVerdict::Pass
        );
        assert!(matches!(
            bdd::reach::analyze(&crossing(3, true), 0, 200_000).verdict,
            bdd::BddVerdict::Fail { .. }
        ));
    }
}
