//! Criterion group for Fig. 7: ITPSEQ with exact-k versus assume-k checks.

use cnf::BmcCheck;
use criterion::{criterion_group, criterion_main, Criterion};
use mc::{Engine, Options};
use std::time::Duration;

fn fig7_exact_vs_assume(c: &mut Criterion) {
    let base = Options::default()
        .with_timeout(Duration::from_secs(10))
        .with_max_bound(30);
    let suite: Vec<workloads::Benchmark> =
        workloads::suite::mid_size().into_iter().take(4).collect();
    let mut group = c.benchmark_group("fig7_exact_vs_assume");
    group.sample_size(10);
    for benchmark in &suite {
        for (label, check) in [
            ("exact", BmcCheck::Exact),
            ("assume", BmcCheck::ExactAssume),
        ] {
            let options = base.clone().with_check(check);
            group.bench_function(format!("{}/{}", label, benchmark.name), |b| {
                b.iter(|| Engine::ItpSeq.verify(&benchmark.aig, 0, &options))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig7_exact_vs_assume);
criterion_main!(benches);
