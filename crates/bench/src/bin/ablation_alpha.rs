//! Ablation: sweep of the serial fraction `αs` of SITPSEQ
//! (0 = fully parallel ITPSEQ, 1 = fully serial), reporting solved counts,
//! cumulative time and average fixed-point depths.
//!
//! Run with `cargo run -p itpseq-bench --bin ablation_alpha --release`.

use itpseq_bench::{experiment_options, run_engine};
use mc::{Engine, Verdict};

fn main() {
    let suite = workloads::suite::full();
    let base = experiment_options();
    println!("# SITPSEQ αs sweep over {} instances", suite.len());
    println!(
        "{:>5} {:>7} {:>7} {:>10} {:>8} {:>8} {:>10}",
        "alpha", "solved", "proved", "time[ms]", "avg_kfp", "avg_jfp", "sat_calls"
    );
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let options = base.clone().with_alpha(alpha);
        let mut solved = 0usize;
        let mut proved = 0usize;
        let mut total_ms = 0.0f64;
        let mut sat_calls = 0u64;
        let mut kfps = Vec::new();
        let mut jfps = Vec::new();
        for benchmark in &suite {
            let record = run_engine(benchmark, Engine::SerialItpSeq, &options);
            total_ms += record.millis();
            sat_calls += record.result.stats.sat_calls;
            match record.result.verdict {
                Verdict::Proved { k_fp, j_fp } => {
                    solved += 1;
                    proved += 1;
                    kfps.push(k_fp as f64);
                    jfps.push(j_fp as f64);
                }
                Verdict::Falsified { .. } => solved += 1,
                Verdict::Inconclusive { .. } => {}
            }
        }
        let avg = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "{:>5.2} {:>7} {:>7} {:>10.0} {:>8.2} {:>8.2} {:>10}",
            alpha,
            solved,
            proved,
            total_ms,
            avg(&kfps),
            avg(&jfps),
            sat_calls
        );
    }
}
