//! Plain bounded model checking.
//!
//! BMC only ever falsifies properties; it is included both as the baseline
//! the interpolation engines are built on and because the paper repeatedly
//! contrasts the cost of the three target formulations (*bound-k*,
//! *exact-k*, *exact-assume-k*).
//!
//! # Incremental unrolling
//!
//! The bound loop runs on one persistent [`cnf::IncrementalUnroller`] and
//! one long-lived [`sat::IncrementalSolver`] per run: bound `k+1` extends
//! bound `k`'s solver with only the *delta* clauses of the new frame, so
//! total encoding work across a `max_bound = K` run is `O(K)` (the scratch
//! path re-encoded all `k` frames at every bound, `O(K²)`), and learned
//! clauses survive from bound to bound.  The per-bound targets become
//! incremental constraints:
//!
//! * **exact-k** — the target `¬p(V^k)` is passed as an *assumption*, so
//!   nothing has to be retracted at the next bound;
//! * **exact-assume-k** — same assumption, plus the permanent unit
//!   `p(V^{k-1})` once bound `k-1` is refuted (the property held there, so
//!   the constraint is sound for every later bound);
//! * **bound-k** — the growing disjunction `⋁_{i≤k} ¬p(V^i)` is asserted
//!   through a per-bound [assertion group](sat::IncrementalSolver::assert_group)
//!   whose activation literal is allocated by the *unroller* (one
//!   variable-numbering authority), retired when the bound grows.
//!
//! Verdicts and counterexample depths are identical to the scratch path by
//! construction — each bound solves an equisatisfiable formula, and the
//! loop still reports the first satisfiable bound (see the
//! scratch-vs-incremental cross-check in the tests).
//!
//! For designs with several bad-state properties, [`crate::multi::bmc`]
//! amortizes one unroller/solver pair across *all* of them (targets as
//! per-property assumptions, per-property retirement) instead of running
//! this engine once per property.

use crate::engines::{CancelToken, EngineProbe, RunBudget};
use crate::types::StopReason;
use crate::{Certificate, EngineResult, EngineStats, Options, Verdict};
use aig::Aig;
use cnf::{BmcCheck, IncrementalUnroller};
use sat::{IncrementalSolver, SolveResult, Solver, SolverStats};
use std::time::{Duration, Instant};
use telemetry::ArgValue;

/// Outcome of the depth-0 check every engine runs before its main loop.
enum Depth0 {
    /// The initial states themselves violate the property.
    Violated,
    /// No violation at depth 0; the main loop may start at bound 1.
    Safe,
    /// The check was interrupted (cancellation or deadline) before an
    /// answer.
    Interrupted,
}

/// Result and cost of a depth-0 check (see [`initial_violation`]).
struct Depth0Check {
    outcome: Depth0,
    /// Solver statistics of the check — callers fold the delta into
    /// [`EngineStats`] so table1 does not undercount.
    solver: SolverStats,
    /// Clauses handed to the solver.
    clauses: u64,
    /// Time spent encoding (not solving) the instance.
    encode_time: Duration,
    /// The violating cycle-0 input assignment when the check found one.
    inputs: Option<Vec<bool>>,
}

/// Checks whether a bad state is already reachable at depth 0, i.e. the
/// initial states themselves violate the property.  All engines run this
/// check before their main loops, which start at bound 1.
///
/// The run's `budget` (interrupt flag, memory budget, fault plan) governs
/// the solver, so even a hostile depth-0 instance stays cancellable.
fn initial_violation(
    aig: &Aig,
    bad_index: usize,
    budget: Option<&RunBudget>,
    reduce: Option<u64>,
) -> Depth0Check {
    let encode_start = Instant::now();
    let mut unroller = cnf::Unroller::new(aig);
    unroller.assert_initial(0);
    let bad = unroller.bad_lit(0, bad_index);
    unroller.assert_lit(bad);
    // Pin down the cycle-0 input variables before the unroller is consumed,
    // so a violating model can be read back as a replayable trace.  Inputs
    // outside the bad cone become fresh unconstrained variables; they add
    // no clauses and cannot change the verdict.
    let input_lits: Vec<cnf::Lit> = (0..aig.num_inputs())
        .map(|i| unroller.input_lit(0, i))
        .collect();
    let cnf = unroller.into_cnf();
    let mut solver = Solver::new();
    solver.set_proof_logging(false);
    solver.set_reduce_interval(reduce);
    if let Some(budget) = budget {
        budget.govern(&mut solver);
    }
    solver.add_cnf(&cnf);
    let encode_time = encode_start.elapsed();
    let (outcome, inputs) = match solver.solve() {
        SolveResult::Sat => {
            let model = input_lits
                .iter()
                .map(|&lit| solver.lit_value(lit).unwrap_or(false))
                .collect();
            (Depth0::Violated, Some(model))
        }
        SolveResult::Unsat => (Depth0::Safe, None),
        SolveResult::Interrupted => (Depth0::Interrupted, None),
    };
    Depth0Check {
        outcome,
        solver: solver.stats(),
        clauses: cnf.clauses.len() as u64,
        encode_time,
        inputs,
    }
}

/// Runs the depth-0 check shared by every engine's entry point under the
/// run's budget flag, folds its costs into `stats`, and returns the final
/// verdict when the run is already decided: a violation at depth 0, or an
/// interrupt (whose reason — `"cancelled"` or `"timeout"` — is read off
/// the budget *after* the solve, so a cancellation arriving mid-check is
/// reported as such).  `None` means the initial states are safe and the
/// main loop may start.  A depth-0 falsification comes with its
/// single-cycle input trace as a [`Certificate::Trace`] (unless
/// [`Options::certificates`] is off).
pub(crate) fn depth0_verdict(
    aig: &Aig,
    bad_index: usize,
    budget: &RunBudget,
    stats: &mut EngineStats,
    options: &Options,
) -> Option<(Verdict, Option<Certificate>)> {
    let span = options
        .telemetry
        .span_args("depth0", || vec![("bad", ArgValue::U64(bad_index as u64))]);
    let depth0 = initial_violation(aig, bad_index, Some(budget), options.reduce_interval());
    span.end();
    stats.sat_calls += 1;
    stats.add_solver_delta(depth0.solver);
    stats.clauses_encoded += depth0.clauses;
    stats.encode_time += depth0.encode_time;
    match depth0.outcome {
        Depth0::Violated => {
            let cert = depth0
                .inputs
                .filter(|_| options.certificates)
                .map(|frame| Certificate::Trace(vec![frame]));
            Some((Verdict::Falsified { depth: 0 }, cert))
        }
        Depth0::Interrupted => Some((
            Verdict::Inconclusive {
                reason: budget.interrupt_reason(),
                bound_reached: 0,
            },
            None,
        )),
        Depth0::Safe => None,
    }
}

/// The persistent state of an incremental BMC run: the unrolling cache,
/// the long-lived solver and the per-bound target bookkeeping.
struct IncrementalBmc {
    unroller: IncrementalUnroller,
    solver: IncrementalSolver,
    check: BmcCheck,
    bad_index: usize,
    /// Frames unrolled so far (`bads[f - 1]` is the bad literal at frame
    /// `f`).
    bound: usize,
    bads: Vec<cnf::Lit>,
    /// The live bound-k target group (bound-k formulation only).
    group: Option<sat::ClauseGuard>,
    /// `frame_inputs[f]` pins frame `f`'s primary-input variables so a
    /// counterexample model can be read back as a replayable trace.
    /// Empty when [`Options::certificates`] is off (the variables are
    /// then never allocated — the seed encoding, bit for bit).
    frame_inputs: Vec<Vec<cnf::Lit>>,
    num_inputs: usize,
    record_inputs: bool,
}

impl IncrementalBmc {
    fn new(
        aig: &Aig,
        bad_index: usize,
        check: BmcCheck,
        reduce: Option<u64>,
        budget: &RunBudget,
        record_inputs: bool,
        stats: &mut EngineStats,
    ) -> IncrementalBmc {
        let encode_start = Instant::now();
        let mut unroller = IncrementalUnroller::new(aig);
        unroller.assert_initial(0);
        let frame_inputs = if record_inputs {
            vec![(0..aig.num_inputs())
                .map(|i| unroller.input_lit(0, i))
                .collect()]
        } else {
            Vec::new()
        };
        let mut solver = IncrementalSolver::new();
        // Recycling could only reclaim solver-allocated activation
        // variables, and this engine allocates all of its (unroller-owned)
        // variables itself — turn it off so the solver does not record a
        // replay copy of the whole unrolling.
        solver.set_recycle_threshold(0);
        solver.set_reduce_interval(reduce);
        budget.govern_incremental(&mut solver);
        stats.encode_time += encode_start.elapsed();
        IncrementalBmc {
            unroller,
            solver,
            check,
            bad_index,
            bound: 0,
            bads: Vec::new(),
            group: None,
            frame_inputs,
            num_inputs: aig.num_inputs(),
            record_inputs,
        }
    }

    /// Extends the unrolling and the solver by one frame and installs the
    /// next bound's target; returns the assumptions for its solve call.
    fn advance(&mut self, stats: &mut EngineStats) -> Vec<cnf::Lit> {
        let encode_start = Instant::now();
        let k = self.bound + 1;
        // The previous bound's target must not constrain this one.
        if let Some(guard) = self.group.take() {
            self.solver.retire(guard);
        }
        // assume-k: bound k-1 was refuted, so the property held there —
        // from now on `p(V^{k-1})` is a permanent constraint.
        if self.check == BmcCheck::ExactAssume && k >= 2 {
            let bad_prev = self.bads[k - 2];
            self.solver.add_clause([!bad_prev]);
            stats.clauses_encoded += 1;
        }
        self.unroller.add_frame();
        let bad = self.unroller.bad_lit(k, self.bad_index);
        self.bads.push(bad);
        if self.record_inputs {
            // Allocate frame k's input variables now, before the solve, so
            // reading a model back never disturbs variable numbering.
            let inputs = (0..self.num_inputs)
                .map(|i| self.unroller.input_lit(k, i))
                .collect();
            self.frame_inputs.push(inputs);
        }
        // Only the delta reaches the solver; everything older is already
        // loaded (and its learned clauses are still alive).
        for clause in self.unroller.pending_clauses() {
            self.solver.add_clause(clause.lits.iter().copied());
        }
        stats.clauses_encoded += self.unroller.pending_clauses().len() as u64;
        self.unroller.mark_drained();
        self.bound = k;
        let assumptions = match self.check {
            BmcCheck::Exact | BmcCheck::ExactAssume => vec![bad],
            BmcCheck::Bound => {
                // The growing disjunction is re-asserted under a fresh
                // activation literal — allocated by the unroller, so frame
                // variables and activation variables can never collide.
                let activation = self.unroller.builder_mut().new_lit();
                self.group = Some(self.solver.assert_group(activation, [self.bads.clone()]));
                stats.clauses_encoded += 1;
                Vec::new()
            }
        };
        stats.encode_time += encode_start.elapsed();
        assumptions
    }

    /// Reads the counterexample input trace (cycles `0..=depth`) off the
    /// solver's satisfying assignment.
    fn extract_trace(&self, depth: usize) -> Vec<Vec<bool>> {
        self.frame_inputs[..=depth]
            .iter()
            .map(|frame| {
                frame
                    .iter()
                    .map(|&lit| self.solver.lit_value(lit).unwrap_or(false))
                    .collect()
            })
            .collect()
    }
}

/// Runs BMC on bad-state property `bad_index`, increasing the bound until a
/// counterexample is found or the bound/time budget is exhausted.
pub fn verify(aig: &Aig, bad_index: usize, options: &Options) -> EngineResult {
    verify_with_cancel(aig, bad_index, options, &CancelToken::new())
}

/// [`verify`] under a cancellation token: the bound loop and each SAT
/// query stop soon after the token is cancelled *or* the wall-clock budget
/// runs out (a `RunBudget` watchdog raises the solver interrupt flag, so
/// even one long query cannot overshoot `options.timeout` arbitrarily).
pub fn verify_with_cancel(
    aig: &Aig,
    bad_index: usize,
    options: &Options,
    cancel: &CancelToken,
) -> EngineResult {
    let start = Instant::now();
    let budget = RunBudget::arm(cancel, start, options);
    let telemetry = &options.telemetry;
    let mut stats = EngineStats {
        visible_latches: aig.num_latches(),
        ..EngineStats::default()
    };
    let _run = telemetry.span_args("BMC.run", || {
        vec![("latches", ArgValue::U64(aig.num_latches() as u64))]
    });
    let finish = |mut stats: EngineStats, verdict: Verdict, certificate: Option<Certificate>| {
        telemetry.instant_args("verdict", || {
            vec![("verdict", ArgValue::Str(verdict.to_string()))]
        });
        stats.time = start.elapsed();
        EngineResult {
            verdict,
            stats,
            certificate,
        }
    };

    if let Some((verdict, cert)) = depth0_verdict(aig, bad_index, &budget, &mut stats, options) {
        return finish(stats, verdict, cert);
    }

    // `bound-k` already covers all depths up to k, so for plain BMC the
    // exact/assume schemes are the natural incremental formulations; all
    // three now run on one persistent unroller + solver pair.
    let mut incremental = IncrementalBmc::new(
        aig,
        bad_index,
        options.check,
        options.reduce_interval(),
        &budget,
        options.certificates,
        &mut stats,
    );
    let probe = EngineProbe::new(telemetry, options.probe_interval);
    incremental.solver.set_progress_probe(probe.probe());
    for k in 1..=options.max_bound {
        probe.set_bound(k);
        if let Some(reason) = budget.stop_reason() {
            return finish(
                stats,
                Verdict::Inconclusive {
                    reason,
                    bound_reached: k.saturating_sub(1),
                },
                None,
            );
        }
        let _bound = telemetry.span_args("bound", || vec![("k", ArgValue::U64(k as u64))]);
        let assumptions = incremental.advance(&mut stats);
        stats.sat_calls += 1;
        let query = telemetry.span_args("sat", || vec![("k", ArgValue::U64(k as u64))]);
        let before = incremental.solver.stats();
        let result = incremental.solver.solve(&assumptions);
        stats.add_solver_delta(incremental.solver.stats() - before);
        query.end();
        match result {
            SolveResult::Sat => {
                let cert = options
                    .certificates
                    .then(|| Certificate::Trace(incremental.extract_trace(k)));
                return finish(stats, Verdict::Falsified { depth: k }, cert);
            }
            SolveResult::Unsat => {}
            // Answering "no counterexample at k" without solving would let
            // the loop report a non-minimal depth later — stop instead.
            SolveResult::Interrupted => {
                return finish(
                    stats,
                    Verdict::Inconclusive {
                        reason: budget.interrupt_reason(),
                        bound_reached: k - 1,
                    },
                    None,
                );
            }
        }
    }
    finish(
        stats,
        Verdict::Inconclusive {
            reason: StopReason::BoundExhausted,
            bound_reached: options.max_bound,
        },
        None,
    )
}

/// Checks a single bound and returns whether a counterexample of that exact
/// formulation exists.
pub fn check_bound(aig: &Aig, bad_index: usize, bound: usize, check: BmcCheck) -> bool {
    check_bound_with_stats(aig, bad_index, bound, check).0
}

/// [`check_bound`] plus the solver statistics of the query, so callers can
/// fold the conflicts into their own accounting instead of dropping them.
pub fn check_bound_with_stats(
    aig: &Aig,
    bad_index: usize,
    bound: usize,
    check: BmcCheck,
) -> (bool, SolverStats) {
    let instance = cnf::bmc::build(aig, bad_index, bound, check);
    let mut solver = Solver::new();
    solver.set_proof_logging(false);
    solver.add_cnf(&instance.cnf);
    let violated = solver.solve() == SolveResult::Sat;
    (violated, solver.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Options;
    use aig::builder::{latch_word, word_equals_const, word_increment};

    fn counter(width: usize, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, lits) = latch_word(&mut aig, width, 0);
        let next = word_increment(&mut aig, &lits, aig::Lit::TRUE);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &lits, bad_at);
        aig.add_bad(bad);
        aig
    }

    /// An always-safe design with enough combinational logic that every
    /// frame contributes a measurable clause delta.
    fn safe_counter(width: usize) -> Aig {
        // A modular counter can never reach a value outside its range.
        let mut aig = Aig::new();
        let (ids, lits) = latch_word(&mut aig, width, 0);
        let next = word_increment(&mut aig, &lits, aig::Lit::TRUE);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let hi = word_equals_const(&mut aig, &lits, (1 << width) - 1);
        let lo = word_equals_const(&mut aig, &lits, 0);
        // "top value and zero at once" is unsatisfiable combinationally.
        let bad = aig.and(hi, lo);
        aig.add_bad(bad);
        aig
    }

    /// A design whose depth-0 check is a pigeonhole refutation: hostile
    /// for the solver, trivial for a working interrupt hook.
    fn hostile_depth0(holes: usize) -> Aig {
        let mut aig = Aig::new();
        let pigeons = holes + 1;
        let var: Vec<Vec<aig::Lit>> = (0..pigeons)
            .map(|_| {
                (0..holes)
                    .map(|_| aig::Lit::positive(aig.add_input()))
                    .collect()
            })
            .collect();
        let mut formula = aig::Lit::TRUE;
        for row in &var {
            let mut any = aig::Lit::FALSE;
            for &v in row {
                any = aig.or(any, v);
            }
            formula = aig.and(formula, any);
        }
        for h in 0..holes {
            for (p1, row1) in var.iter().enumerate() {
                for row2 in &var[p1 + 1..] {
                    let both = aig.and(row1[h], row2[h]);
                    formula = aig.and(formula, !both);
                }
            }
        }
        let l = aig.add_latch(false);
        aig.set_next(l, aig.latch_lit(l));
        aig.add_bad(formula);
        aig
    }

    /// The pre-incremental reference: rebuild the instance from scratch at
    /// every bound, exactly as the engine did before the unrolling cache.
    fn verify_scratch(aig: &Aig, bad_index: usize, options: &Options) -> (Verdict, u64) {
        let mut sat_calls = 0u64;
        let depth0 = initial_violation(aig, bad_index, None, Some(sat::DEFAULT_REDUCE_FIRST));
        sat_calls += 1;
        if matches!(depth0.outcome, Depth0::Violated) {
            return (Verdict::Falsified { depth: 0 }, sat_calls);
        }
        for k in 1..=options.max_bound {
            let instance = cnf::bmc::build(aig, bad_index, k, options.check);
            let mut solver = Solver::new();
            solver.add_cnf(&instance.cnf);
            sat_calls += 1;
            if solver.solve() == SolveResult::Sat {
                return (Verdict::Falsified { depth: k }, sat_calls);
            }
        }
        (
            Verdict::Inconclusive {
                reason: StopReason::BoundExhausted,
                bound_reached: options.max_bound,
            },
            sat_calls,
        )
    }

    #[test]
    fn finds_counterexample_at_exact_depth() {
        let aig = counter(4, 9);
        let result = verify(&aig, 0, &Options::default());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 9 });
        assert!(result.stats.sat_calls >= 9);
    }

    #[test]
    fn counterexample_comes_with_a_replayable_trace() {
        let aig = counter(4, 9);
        let result = verify(&aig, 0, &Options::default());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 9 });
        let Some(Certificate::Trace(inputs)) = result.certificate else {
            panic!("falsified BMC run must carry a trace certificate");
        };
        assert_eq!(inputs.len(), 10, "depth 9 needs 10 cycles of inputs");
        let sim = aig::simulate(&aig, &inputs);
        assert!(sim.bad[9][0], "replay must hit the bad state at depth 9");
        // The A/B switch: no certificate, same verdict.
        let off = verify(&aig, 0, &Options::default().with_certificates(false));
        assert_eq!(off.verdict, Verdict::Falsified { depth: 9 });
        assert_eq!(off.certificate, None);
    }

    #[test]
    fn input_driven_counterexample_trace_replays() {
        // Bad fires when the input was high two cycles in a row.
        let mut aig = Aig::new();
        let i = aig::Lit::positive(aig.add_input());
        let l = aig.add_latch(false);
        aig.set_next(l, i);
        let seen_two = aig.and(aig.latch_lit(l), i);
        aig.add_bad(seen_two);
        let result = verify(&aig, 0, &Options::default());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 1 });
        let Some(Certificate::Trace(inputs)) = result.certificate else {
            panic!("missing trace");
        };
        let sim = aig::simulate(&aig, &inputs);
        assert!(sim.bad[1][0], "replay must hit the bad state at depth 1");
    }

    #[test]
    fn gives_up_on_true_properties() {
        // A stuck-at-0 latch whose bad state never fires.
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        let cur = aig.latch_lit(l);
        aig.set_next(l, aig::Lit::FALSE);
        aig.add_bad(cur);
        let result = verify(&aig, 0, &Options::default().with_max_bound(5));
        assert!(matches!(
            result.verdict,
            Verdict::Inconclusive {
                bound_reached: 5,
                ..
            }
        ));
    }

    #[test]
    fn bound_check_formulations_agree_on_failing_depth() {
        let aig = counter(3, 5);
        for check in [BmcCheck::Bound, BmcCheck::Exact, BmcCheck::ExactAssume] {
            let result = verify(&aig, 0, &Options::default().with_check(check));
            assert_eq!(result.verdict, Verdict::Falsified { depth: 5 }, "{check:?}");
        }
    }

    #[test]
    fn check_bound_matches_reachability() {
        let aig = counter(3, 5);
        assert!(!check_bound(&aig, 0, 4, BmcCheck::Exact));
        assert!(check_bound(&aig, 0, 5, BmcCheck::Exact));
        assert!(check_bound(&aig, 0, 5, BmcCheck::ExactAssume));
        assert!(check_bound(&aig, 0, 6, BmcCheck::Bound));
    }

    #[test]
    fn check_bound_reports_its_solver_stats() {
        let aig = counter(4, 11);
        let (violated, stats) = check_bound_with_stats(&aig, 0, 11, BmcCheck::Exact);
        assert!(violated);
        assert!(
            stats.propagations > 0,
            "an 11-frame query must do real work"
        );
    }

    #[test]
    fn incremental_loop_matches_the_scratch_loop() {
        // Same verdicts, counterexample depths and SAT-call counts as the
        // per-bound rebuild, for every formulation, on failing and safe
        // designs.
        let designs = [counter(3, 5), counter(4, 9), counter(2, 2), safe_counter(3)];
        for check in [BmcCheck::Bound, BmcCheck::Exact, BmcCheck::ExactAssume] {
            for aig in &designs {
                let options = Options::default().with_max_bound(12).with_check(check);
                let incremental = verify(aig, 0, &options);
                let (scratch_verdict, scratch_calls) = verify_scratch(aig, 0, &options);
                assert_eq!(incremental.verdict, scratch_verdict, "{check:?}");
                assert_eq!(incremental.stats.sat_calls, scratch_calls, "{check:?}");
            }
        }
    }

    #[test]
    fn total_encoding_work_grows_linearly_with_the_bound() {
        // The acceptance criterion of the unrolling cache: clauses handed
        // to the solver across a max_bound = K run are O(K).  Doubling the
        // bound must roughly double (not quadruple) the volume, for every
        // formulation.
        let aig = safe_counter(4);
        for check in [BmcCheck::Bound, BmcCheck::Exact, BmcCheck::ExactAssume] {
            let run = |bound: usize| {
                let result = verify(
                    &aig,
                    0,
                    &Options::default().with_max_bound(bound).with_check(check),
                );
                assert!(
                    !result.verdict.is_conclusive(),
                    "safe design must exhaust the bound"
                );
                result.stats.clauses_encoded
            };
            let (half, full) = (run(10), run(20));
            assert!(half > 0);
            assert!(
                full < 2 * half,
                "{check:?}: encoding must be linear in the bound, got {half} vs {full}"
            );
        }
    }

    #[test]
    fn hostile_depth0_check_is_cancellable() {
        // Regression: the depth-0 solver used to be built without an
        // interrupt hook, so a pre-cancelled portfolio token still had to
        // sit through the whole (here: pigeonhole-hard) refutation.
        let aig = hostile_depth0(10);
        let cancel = CancelToken::new();
        cancel.cancel();
        let start = Instant::now();
        let result = verify_with_cancel(&aig, 0, &Options::default(), &cancel);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "cancelled depth-0 check must stop promptly"
        );
        assert_eq!(
            result.verdict,
            Verdict::Inconclusive {
                reason: StopReason::Cancelled,
                bound_reached: 0,
            }
        );
    }

    #[test]
    fn deadline_interrupts_a_single_long_solve() {
        // Regression: the loop only compared `options.timeout` between
        // bounds, so one long SAT call overshot the budget arbitrarily.
        let aig = hostile_depth0(10);
        let options = Options::default().with_timeout(Duration::from_millis(50));
        let start = Instant::now();
        let result = verify(&aig, 0, &options);
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "the deadline watchdog must interrupt the solve"
        );
        assert_eq!(
            result.verdict,
            Verdict::Inconclusive {
                reason: StopReason::Timeout,
                bound_reached: 0,
            }
        );
    }

    #[test]
    fn depth0_conflicts_reach_the_engine_stats() {
        // A small pigeonhole cone makes the depth-0 refutation conflict
        // for real; those conflicts used to be dropped on the floor.
        let aig = hostile_depth0(4);
        let depth0 = initial_violation(&aig, 0, None, Some(sat::DEFAULT_REDUCE_FIRST));
        assert!(matches!(depth0.outcome, Depth0::Safe));
        assert!(depth0.solver.conflicts > 0, "php(4) must conflict");
        // With max_bound = 0 the engine's statistics are exactly the
        // depth-0 check's, so the accumulation is observable end to end.
        let result = verify(&aig, 0, &Options::default().with_max_bound(0));
        assert!(result.stats.conflicts > 0);
        assert!(result.stats.clauses_encoded > 0);
        assert_eq!(result.stats.sat_calls, 1);
    }
}
