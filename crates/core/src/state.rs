//! Symbolic state sets shared by the interpolation engines.
//!
//! Interpolants, their column conjunctions `ℐ_j` and the accumulated
//! reachability over-approximations `R_j` are all Boolean functions over
//! the design latches.  They are stored as literals of a single
//! combinational [`aig::Aig`] manager whose primary input `i` stands for
//! latch `i`; containment checks (`ℐ_j ⇒ R_{j-1}`) are discharged with the
//! SAT solver, and state sets are re-encoded into time-frame CNF when they
//! seed the next bounded check.

use aig::{Aig, AigNode};
use cnf::Unroller;
use sat::{SolveResult, Solver};
use std::collections::HashMap;

/// A manager for symbolic state sets over the latches of one design.
#[derive(Clone, Debug)]
pub struct StateSpace {
    mgr: Aig,
    latch_inputs: Vec<aig::Lit>,
}

impl StateSpace {
    /// Creates a state space for a design with `num_latches` latches.
    pub fn new(num_latches: usize) -> StateSpace {
        let mut mgr = Aig::new();
        let latch_inputs = (0..num_latches)
            .map(|_| aig::Lit::positive(mgr.add_input()))
            .collect();
        StateSpace { mgr, latch_inputs }
    }

    /// Number of latches (dimensions) of the state space.
    pub fn num_latches(&self) -> usize {
        self.latch_inputs.len()
    }

    /// Returns the literal standing for latch `i`.
    pub fn latch(&self, i: usize) -> aig::Lit {
        self.latch_inputs[i]
    }

    /// Gives mutable access to the underlying circuit manager (used by the
    /// interpolation context to build interpolants in place).
    pub fn manager_mut(&mut self) -> &mut Aig {
        &mut self.mgr
    }

    /// Gives read access to the underlying circuit manager.
    pub fn manager(&self) -> &Aig {
        &self.mgr
    }

    /// The state set containing exactly the initial state(s) of `design`.
    pub fn initial_states(&mut self, design: &Aig) -> aig::Lit {
        let lits: Vec<aig::Lit> = (0..design.num_latches())
            .map(|i| self.latch(i).xor_complement(!design.init(i)))
            .collect();
        self.mgr.and_many(lits)
    }

    /// Conjunction of two state sets.
    pub fn and(&mut self, a: aig::Lit, b: aig::Lit) -> aig::Lit {
        self.mgr.and(a, b)
    }

    /// Disjunction of two state sets.
    pub fn or(&mut self, a: aig::Lit, b: aig::Lit) -> aig::Lit {
        self.mgr.or(a, b)
    }

    /// Checks the implication `a ⇒ b` with a SAT call on `a ∧ ¬b`.
    pub fn implies(&self, a: aig::Lit, b: aig::Lit) -> bool {
        if a == aig::Lit::FALSE || b == aig::Lit::TRUE || a == b {
            return true;
        }
        let mut builder = cnf::CnfBuilder::new();
        let vars: Vec<cnf::Lit> = (0..self.num_latches()).map(|_| builder.new_lit()).collect();
        let mut cache = HashMap::new();
        let mut leaf = |_: &mut cnf::CnfBuilder, id: aig::NodeId| match self.mgr.node(id) {
            AigNode::Input { index } => vars[index],
            _ => unreachable!("state sets only depend on latch inputs"),
        };
        let a_lit = cnf::tseitin::encode_cone(&mut builder, &self.mgr, a, &mut cache, &mut leaf);
        let b_lit = cnf::tseitin::encode_cone(&mut builder, &self.mgr, b, &mut cache, &mut leaf);
        builder.add_unit(a_lit);
        builder.add_unit(!b_lit);
        let mut solver = Solver::new();
        solver.add_cnf(&builder.into_cnf());
        solver.solve() == SolveResult::Unsat
    }

    /// Evaluates a state set on a concrete latch valuation.
    pub fn contains(&self, set: aig::Lit, latches: &[bool]) -> bool {
        self.mgr.eval(set, latches, &[])
    }
}

/// Encodes a state-set literal of `space` over the latch variables of
/// `frame` in `unroller`, returning the CNF literal equisatisfiable with
/// "the state at `frame` belongs to the set".
///
/// `latch_map[i]` gives the index, within the unrolled design, of the latch
/// that dimension `i` of the state space talks about; pass the identity for
/// unabstracted models.
pub fn encode_state_lit(
    unroller: &mut Unroller<'_>,
    frame: usize,
    space: &StateSpace,
    set: aig::Lit,
    latch_map: &[usize],
) -> cnf::Lit {
    let frame_latches = unroller.latch_lits(frame);
    let mut cache = HashMap::new();
    cnf::tseitin::encode_cone(
        unroller.builder_mut(),
        space.manager(),
        set,
        &mut cache,
        &mut |_, id| match space.manager().node(id) {
            AigNode::Input { index } => frame_latches[latch_map[index]],
            _ => unreachable!("state sets only depend on latch inputs"),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_latch_design() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_latch(false);
        let b = aig.add_latch(true);
        let _ = (a, b);
        aig
    }

    #[test]
    fn initial_states_matches_reset_values() {
        let design = two_latch_design();
        let mut ss = StateSpace::new(2);
        let init = ss.initial_states(&design);
        assert!(ss.contains(init, &[false, true]));
        assert!(!ss.contains(init, &[true, true]));
        assert!(!ss.contains(init, &[false, false]));
    }

    #[test]
    fn implication_checks() {
        let mut ss = StateSpace::new(2);
        let a = ss.latch(0);
        let b = ss.latch(1);
        let ab = ss.and(a, b);
        let a_or_b = ss.or(a, b);
        assert!(ss.implies(ab, a));
        assert!(ss.implies(ab, a_or_b));
        assert!(ss.implies(a, a_or_b));
        assert!(!ss.implies(a_or_b, ab));
        assert!(!ss.implies(a, b));
        assert!(ss.implies(aig::Lit::FALSE, a));
        assert!(ss.implies(a, aig::Lit::TRUE));
    }

    #[test]
    fn encode_state_lit_constrains_frame_variables() {
        // Design: one latch toggling from 0; constrain frame 0 to the set
        // "latch = 1" and check that together with the reset state the CNF
        // is unsatisfiable.
        let mut design = Aig::new();
        let l = design.add_latch(false);
        let cur = design.latch_lit(l);
        design.set_next(l, !cur);
        design.add_bad(cur);

        let ss = StateSpace::new(1);
        let one = ss.latch(0);

        let mut unroller = Unroller::new(&design);
        unroller.assert_initial(0);
        let set_lit = encode_state_lit(&mut unroller, 0, &ss, one, &[0]);
        unroller.assert_lit(set_lit);
        let mut solver = Solver::new();
        solver.add_cnf(&unroller.into_cnf());
        assert_eq!(solver.solve(), SolveResult::Unsat);

        // Without the initial-state constraint the set is satisfiable.
        let mut unroller = Unroller::new(&design);
        let set_lit = encode_state_lit(&mut unroller, 0, &ss, one, &[0]);
        unroller.assert_lit(set_lit);
        let mut solver = Solver::new();
        solver.add_cnf(&unroller.into_cnf());
        assert_eq!(solver.solve(), SolveResult::Sat);
    }

    #[test]
    fn latch_map_redirects_dimensions() {
        // A state space over one abstract latch that corresponds to the
        // second latch of the concrete design.
        let mut design = Aig::new();
        let _l0 = design.add_latch(false);
        let l1 = design.add_latch(true);
        let _ = l1;
        let ss = StateSpace::new(1);
        let set = ss.latch(0); // "abstract latch is 1"
        let mut unroller = Unroller::new(&design);
        unroller.assert_initial(0);
        let lit = encode_state_lit(&mut unroller, 0, &ss, set, &[1]);
        unroller.assert_lit(lit);
        let mut solver = Solver::new();
        solver.add_cnf(&unroller.into_cnf());
        // Latch 1 resets to 1, so the constraint is consistent.
        assert_eq!(solver.solve(), SolveResult::Sat);
    }
}
