//! HWMCC-style benchmark-directory runner.
//!
//! Walks a directory of ASCII AIGER (`.aag`) files, runs `verify_all`
//! on every design and emits a per-design/per-property report — the
//! real-benchmark ingestion path next to the synthetic `table1` suite.
//!
//! Run with
//! `cargo run --release -p itpseq-bench --bin hwmcc -- tests/data`.
//!
//! Options:
//!
//! * `--engine bmc|pdr|portfolio` — the `verify_all` backend (default
//!   `portfolio`: COI grouping + racing multi-PDR/multi-BMC),
//! * `--json PATH` — additionally write the machine-readable report
//!   (schema `itpseq-hwmcc/v2`, with a per-design `preprocess` reduction
//!   report), the artifact CI uploads,
//! * `--trace PATH` — record engine telemetry for every design into one
//!   `itpseq-trace/v1` JSONL stream,
//! * `--chrome-trace PATH` — the same telemetry as a Chrome trace-event
//!   file (load in Perfetto or `chrome://tracing`),
//! * `--report PATH` — the span-tree analysis of the recorded telemetry
//!   (schema `itpseq-report/v1`),
//! * `--folded PATH` — the telemetry as inferno-compatible collapsed
//!   stacks (pipe through `inferno-flamegraph` for an SVG),
//! * `--timeout-ms N` / `--max-bound N` — per-design budget (defaults:
//!   5000 ms, bound 40),
//! * `--certify` / `--cert-dir DIR` — write per-design certificate
//!   bundles (schema `itpseq-cert/v1`) for the independent checker; the
//!   `.aag` written next to each document is the *post-promotion* design
//!   (before preprocessing — certificates are reconstructed back to it),
//!   so property indices match the certified statuses.
//!
//! Files without an AIGER 1.9 `B` section fall back to the pre-1.9 HWMCC
//! convention: every *output* is a bad-state property
//! ([`aig::Aig::promote_outputs_to_bad`]).  Unparsable files are reported
//! (and counted as errors in the exit code) but do not abort the run, and
//! each design runs inside its own panic-containment domain: a fault in
//! one design is reported as its error while the rest of the directory
//! still completes.

use itpseq_bench::{
    cert_file_stem, hwmcc_records_to_json, with_capture, write_cert_bundle, HwmccRecord,
    TraceCapture, TracePaths,
};
use mc::{CertRecord, Engine, Options};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: hwmcc DIR [--engine bmc|pdr|portfolio] [--json PATH] \
         [--trace PATH] [--chrome-trace PATH] [--report PATH] [--folded PATH] \
         [--timeout-ms N] [--max-bound N] [--certify] [--cert-dir DIR]"
    );
    std::process::exit(2);
}

fn engine_by_name(name: &str) -> Option<Engine> {
    match name.to_ascii_lowercase().as_str() {
        "bmc" => Some(Engine::Bmc),
        "pdr" => Some(Engine::Pdr),
        "portfolio" => Some(Engine::Portfolio),
        _ => None,
    }
}

/// The `.aag` files of `dir`, sorted by file name for a stable report.
fn aag_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.is_file() && path.extension().is_some_and(|ext| ext == "aag"))
        .collect();
    files.sort();
    Ok(files)
}

/// The panic payload's message, for the per-design fault report.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Runs one file; the returned design is the parsed, *post-promotion*
/// AIG (the one the engines actually saw), used for certificate bundles.
fn run_file(path: &Path, engine: Engine, options: &Options) -> (HwmccRecord, Option<aig::Aig>) {
    let file = file_name(path);
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            return (
                HwmccRecord {
                    file,
                    inputs: 0,
                    latches: 0,
                    ands: 0,
                    promoted_outputs: false,
                    result: Err(format!("cannot read: {e}")),
                    preprocess: None,
                },
                None,
            )
        }
    };
    let mut aig = match aig::parse_aag(&text) {
        Ok(aig) => aig,
        Err(e) => {
            return (
                HwmccRecord {
                    file,
                    inputs: 0,
                    latches: 0,
                    ands: 0,
                    promoted_outputs: false,
                    result: Err(e.to_string()),
                    preprocess: None,
                },
                None,
            )
        }
    };
    let promoted_outputs = aig.promote_outputs_to_bad() > 0;
    // The staged pipeline, spelled out so the report can carry the
    // per-pass reduction statistics: preprocess once, solve every
    // property on the reduced model, reconstruct statuses/certificates
    // back to the post-promotion design the bundle ships.
    let (result, preprocess) = if options.preprocess.enabled() {
        let prepared = mc::prepare(&aig, options);
        let stats = prepared.stats.clone();
        (prepared.verify_all(engine, options), Some(stats))
    } else {
        (engine.verify_all(&aig, options), None)
    };
    let record = HwmccRecord {
        file,
        inputs: aig.num_inputs(),
        latches: aig.num_latches(),
        ands: aig.num_ands(),
        promoted_outputs,
        result: Ok(result),
        preprocess,
    };
    (record, Some(aig))
}

fn main() {
    let mut dir: Option<String> = None;
    let mut engine = Engine::Portfolio;
    let mut json_path: Option<String> = None;
    let mut trace = TracePaths::default();
    let mut timeout = Duration::from_secs(5);
    let mut max_bound = 40usize;
    let mut cert_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--certify" => {
                cert_dir.get_or_insert_with(|| PathBuf::from("certs"));
            }
            "--cert-dir" => cert_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--engine" => {
                let name = args.next().unwrap_or_else(|| usage());
                engine = engine_by_name(&name).unwrap_or_else(|| usage());
            }
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace.jsonl = Some(args.next().unwrap_or_else(|| usage())),
            "--chrome-trace" => trace.chrome = Some(args.next().unwrap_or_else(|| usage())),
            "--report" => trace.report = Some(args.next().unwrap_or_else(|| usage())),
            "--folded" => trace.folded = Some(args.next().unwrap_or_else(|| usage())),
            "--timeout-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                timeout = Duration::from_millis(ms);
            }
            "--max-bound" => {
                max_bound = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_string()),
            _ => usage(),
        }
    }
    let dir = dir.unwrap_or_else(|| usage());
    let files = aag_files(Path::new(&dir)).unwrap_or_else(|e| {
        eprintln!("hwmcc: cannot list {dir}: {e}");
        std::process::exit(2);
    });
    if files.is_empty() {
        eprintln!("hwmcc: no .aag files under {dir}");
        std::process::exit(2);
    }

    let capture = TraceCapture::new(trace);
    let options = with_capture(
        Options::default()
            .with_timeout(timeout)
            .with_max_bound(max_bound),
        capture.as_ref(),
    );
    println!(
        "# hwmcc run — {} designs, engine {}, timeout {} ms, bound {}",
        files.len(),
        engine.name(),
        timeout.as_millis(),
        max_bound
    );
    println!(
        "{:<28} {:>4} {:>4} {:>5} | per-property statuses",
        "file", "#PI", "#FF", "#P"
    );

    let mut records = Vec::with_capacity(files.len());
    let mut errors = 0usize;
    for path in &files {
        // One design is one containment domain: a panic that escapes the
        // engines' own containment becomes this design's error record and
        // the remaining designs still run.
        let (record, design) = catch_unwind(AssertUnwindSafe(|| run_file(path, engine, &options)))
            .unwrap_or_else(|payload| {
                (
                    HwmccRecord {
                        file: file_name(path),
                        inputs: 0,
                        latches: 0,
                        ands: 0,
                        promoted_outputs: false,
                        result: Err(format!("panic: {}", panic_message(payload.as_ref()))),
                        preprocess: None,
                    },
                    None,
                )
            });
        match &record.result {
            Ok(result) => {
                let cells: Vec<String> = result
                    .statuses
                    .iter()
                    .enumerate()
                    .map(|(i, s)| format!("p{i}: {s}"))
                    .collect();
                println!(
                    "{:<28} {:>4} {:>4} {:>5} | {}{}",
                    record.file,
                    record.inputs,
                    record.latches,
                    result.statuses.len(),
                    cells.join("; "),
                    if record.promoted_outputs {
                        "  [outputs promoted]"
                    } else {
                        ""
                    }
                );
            }
            Err(message) => {
                errors += 1;
                println!("{:<28} skipped: {message}", record.file);
            }
        }
        if let (Some(dir), Ok(result), Some(design)) = (&cert_dir, &record.result, &design) {
            let _write = options.telemetry.span("certificate.write");
            let cert_records: Vec<CertRecord> = result
                .statuses
                .iter()
                .enumerate()
                .map(|(i, status)| CertRecord::from_status(i, Some(engine.name()), status))
                .collect();
            let stem = cert_file_stem(record.file.trim_end_matches(".aag"));
            write_cert_bundle(dir, &stem, design, &cert_records).unwrap_or_else(|e| {
                eprintln!("hwmcc: cannot write certificates to {}: {e}", dir.display());
                std::process::exit(1);
            });
        }
        records.push(record);
    }

    if let Some(path) = json_path {
        std::fs::write(&path, hwmcc_records_to_json(engine, &records)).unwrap_or_else(|e| {
            eprintln!("hwmcc: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {} design records to {path}", records.len());
    }
    if let Some(capture) = &capture {
        if let Err(message) = capture.write() {
            eprintln!("hwmcc: {message}");
            std::process::exit(1);
        }
    }
    if errors > 0 {
        eprintln!("hwmcc: {errors} file(s) failed to parse");
        std::process::exit(1);
    }
}
