//! Regenerates Table I: per-benchmark detail with #PI, #FF, the exact BDD
//! diameters (d_F, d_B) and Time / k_fp / j_fp for each engine, including
//! the racing portfolio.
//!
//! Run with `cargo run -p itpseq-bench --bin table1 --release`.
//!
//! Options:
//!
//! * `--suite full|mid|industrial|smoke` — benchmark selection (default
//!   `full`; `smoke` is the fast subset CI reruns on every push),
//! * `--json PATH` — additionally write the records as machine-readable
//!   JSON (schema `itpseq-table1/v6`, which adds the fault-isolation
//!   counters `panics_contained`, `memlimit_hits`, `faults_injected` and
//!   `pool_seq_reruns` on top of v5's preprocessing reduction counters),
//!   the artifact CI uploads,
//! * `--chaos SEED` — arm a deterministic fault plan per run, derived
//!   from `SEED` and the run index ([`mc::FaultPlan::seeded`]): each run
//!   gets one pseudo-random injected fault, which may cost its verdict
//!   (reported `inconclusive` with a machine-readable reason) but must
//!   never crash the process or flip a conclusive answer,
//! * `--mem-mb N` — per-run memory budget in MiB; a run over budget
//!   stops with reason `memlimit`, surfaced exactly like a timeout,
//! * `--trace PATH` — record engine telemetry for every run into one
//!   `itpseq-trace/v1` JSONL stream,
//! * `--chrome-trace PATH` — the same telemetry as a Chrome trace-event
//!   file (load in Perfetto or `chrome://tracing`),
//! * `--report PATH` — the span-tree analysis of the recorded telemetry
//!   (schema `itpseq-report/v1`: per-track span aggregates, counter
//!   rates, portfolio wasted work),
//! * `--folded PATH` — the telemetry as inferno-compatible collapsed
//!   stacks (pipe through `inferno-flamegraph` for an SVG),
//! * `--certify` / `--cert-dir DIR` — write per-benchmark certificate
//!   bundles (`<name>.aag` + `<name>.certs.json`, schema
//!   `itpseq-cert/v1`) for the independent checker
//!   (`cargo run --bin certify`); `--certify` defaults the directory to
//!   `certs`.

use itpseq_bench::{
    cert_file_stem, experiment_options, records_to_json, run_engine, suite_by_name, with_capture,
    write_cert_bundle, RunRecord, TraceCapture, TracePaths,
};
use mc::{CertRecord, Engine};
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: table1 [--suite full|mid|industrial|smoke] [--json PATH] \
         [--trace PATH] [--chrome-trace PATH] [--report PATH] [--folded PATH] \
         [--certify] [--cert-dir DIR] [--chaos SEED] [--mem-mb N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut suite_name = "full".to_string();
    let mut json_path: Option<String> = None;
    let mut trace = TracePaths::default();
    let mut cert_dir: Option<PathBuf> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut mem_mb: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--suite" => suite_name = args.next().unwrap_or_else(|| usage()),
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace.jsonl = Some(args.next().unwrap_or_else(|| usage())),
            "--chrome-trace" => trace.chrome = Some(args.next().unwrap_or_else(|| usage())),
            "--report" => trace.report = Some(args.next().unwrap_or_else(|| usage())),
            "--folded" => trace.folded = Some(args.next().unwrap_or_else(|| usage())),
            "--certify" => {
                cert_dir.get_or_insert_with(|| PathBuf::from("certs"));
            }
            "--cert-dir" => cert_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--chaos" => {
                chaos_seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--mem-mb" => {
                mem_mb = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            _ => usage(),
        }
    }
    let suite = suite_by_name(&suite_name).unwrap_or_else(|| usage());

    let capture = TraceCapture::new(trace);
    let mut options = with_capture(experiment_options(), capture.as_ref());
    if let Some(seed) = chaos_seed {
        eprintln!("table1: chaos mode, fault plan seed {seed}");
    }
    if let Some(mb) = mem_mb {
        options = options.with_memory_limit(mb << 20);
    }
    let engines = [
        Engine::Itp,
        Engine::ItpSeq,
        Engine::SerialItpSeq,
        Engine::ItpSeqCba,
        Engine::Pdr,
        Engine::Portfolio,
    ];

    println!("# Table I — ovf means budget exhausted, '-' means not available");
    println!(
        "{:<34} {:>4} {:>4} | {:>4} {:>7} {:>4} {:>7} | {}",
        "name",
        "#PI",
        "#FF",
        "dF",
        "TimeF",
        "dB",
        "TimeB",
        engines
            .iter()
            .map(|e| format!("{:>9} {:>5} {:>5}", e.name(), "k_fp", "j_fp"))
            .collect::<Vec<_>>()
            .join(" | ")
    );

    let mut records: Vec<RunRecord> = Vec::new();
    for benchmark in &suite {
        // BDD columns (diameters), with a node limit standing in for the
        // paper's memory limit.
        let bdd_start = Instant::now();
        let analysis = bdd::reach::analyze(&benchmark.aig, 0, 2_000_000);
        let bdd_ms = bdd_start.elapsed().as_secs_f64() * 1e3;
        let (df, db) = (
            analysis
                .forward_diameter
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".to_string()),
            analysis
                .backward_diameter
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".to_string()),
        );
        let bdd_time = if analysis.forward_diameter.is_some() {
            format!("{bdd_ms:.0}")
        } else {
            "ovf".to_string()
        };

        let mut engine_cells = Vec::new();
        let mut cert_records = Vec::new();
        for engine in engines {
            // A fault plan fires exactly once across all its clones, so
            // chaos mode derives a fresh plan per run from the seed and
            // the run index — deterministic, and every run gets a fault.
            let run_options = match chaos_seed {
                Some(seed) => options
                    .clone()
                    .with_faults(mc::FaultPlan::seeded(seed ^ records.len() as u64)),
                None => options.clone(),
            };
            let record = run_engine(benchmark, engine, &run_options);
            let (time, k, j) = record.cells();
            engine_cells.push(format!("{time:>9} {k:>5} {j:>5}"));
            if cert_dir.is_some() {
                cert_records.push(CertRecord::from_result(
                    0,
                    Some(engine.name()),
                    &record.result,
                ));
            }
            records.push(record);
        }
        if let Some(dir) = &cert_dir {
            let _write = options.telemetry.span("certificate.write");
            let stem = cert_file_stem(&benchmark.name);
            write_cert_bundle(dir, &stem, &benchmark.aig, &cert_records).unwrap_or_else(|e| {
                eprintln!(
                    "table1: cannot write certificates to {}: {e}",
                    dir.display()
                );
                std::process::exit(1);
            });
        }

        println!(
            "{:<34} {:>4} {:>4} | {:>4} {:>7} {:>4} {:>7} | {}",
            benchmark.name,
            benchmark.aig.num_inputs(),
            benchmark.aig.num_latches(),
            df,
            bdd_time,
            db,
            bdd_time,
            engine_cells.join(" | ")
        );
    }

    if let Some(path) = json_path {
        std::fs::write(&path, records_to_json(&records)).unwrap_or_else(|e| {
            eprintln!("table1: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {} records to {path}", records.len());
    }
    if let Some(dir) = &cert_dir {
        eprintln!(
            "wrote certificate bundles for {} benchmarks to {}",
            suite.len(),
            dir.display()
        );
    }
    if let Some(capture) = &capture {
        if let Err(message) = capture.write() {
            eprintln!("table1: {message}");
            std::process::exit(1);
        }
    }
}
