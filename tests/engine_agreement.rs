//! Cross-crate integration tests: all engines (the paper's five, IC3/PDR
//! and the racing portfolio) must agree with each other and with exact
//! BDD reachability on the benchmark suite's smaller instances, and
//! falsified depths must be reproducible by simulation.

use itpseq::bdd::BddVerdict;
use itpseq::mc::{Engine, Options, Verdict};
use std::time::Duration;

fn options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(10))
        .with_max_bound(40)
}

/// Small designs for which exact BDD reachability is cheap.
fn small_designs() -> Vec<itpseq::workloads::Benchmark> {
    itpseq::workloads::suite::mid_size()
        .into_iter()
        .filter(|b| b.aig.num_latches() <= 10)
        .collect()
}

#[test]
fn engines_agree_with_exact_reachability() {
    for benchmark in small_designs() {
        let exact = itpseq::bdd::reach::analyze(&benchmark.aig, 0, 2_000_000);
        for engine in Engine::ALL {
            let result = engine.verify(&benchmark.aig, 0, &options());
            match exact.verdict {
                BddVerdict::Pass => {
                    // BMC can only falsify; every proving engine must
                    // conclude with a proof.
                    if engine == Engine::Bmc {
                        assert!(
                            !result.verdict.is_falsified(),
                            "BMC on {}: {}",
                            benchmark.name,
                            result.verdict
                        );
                    } else {
                        assert!(
                            result.verdict.is_proved(),
                            "{} on {}: expected proof, got {}",
                            engine.name(),
                            benchmark.name,
                            result.verdict
                        );
                    }
                }
                BddVerdict::Fail { depth } => assert_eq!(
                    result.verdict,
                    Verdict::Falsified { depth },
                    "{} on {}",
                    engine.name(),
                    benchmark.name
                ),
                BddVerdict::Overflow => {}
            }
        }
    }
}

#[test]
fn expected_suite_verdicts_hold() {
    for benchmark in small_designs() {
        if let Some(expect_fail) = benchmark.expect_fail {
            for engine in [Engine::SerialItpSeq, Engine::Pdr, Engine::Portfolio] {
                let result = engine.verify(&benchmark.aig, 0, &options());
                assert_eq!(
                    result.verdict.is_falsified(),
                    expect_fail,
                    "{} on {}: {}",
                    engine.name(),
                    benchmark.name,
                    result.verdict
                );
            }
        }
    }
}

#[test]
fn bmc_and_sequence_engines_report_the_same_counterexample_depth() {
    for benchmark in small_designs() {
        if benchmark.expect_fail != Some(true) {
            continue;
        }
        let bmc = Engine::Bmc.verify(&benchmark.aig, 0, &options());
        for engine in [Engine::ItpSeq, Engine::Pdr, Engine::Portfolio] {
            let result = engine.verify(&benchmark.aig, 0, &options());
            assert_eq!(
                bmc.verdict,
                result.verdict,
                "{} on {}",
                engine.name(),
                benchmark.name
            );
        }
    }
}

#[test]
fn aiger_roundtrip_preserves_verdicts() {
    // Serialise every small design to ASCII AIGER, parse it back and check
    // that the verification verdict is unchanged — the workflow used for
    // external benchmark files.
    for benchmark in small_designs().into_iter().take(6) {
        let text = itpseq::aig::to_aag(&benchmark.aig);
        let reparsed = itpseq::aig::parse_aag(&text).expect("reparse");
        let original = Engine::SerialItpSeq.verify(&benchmark.aig, 0, &options());
        let roundtrip = Engine::SerialItpSeq.verify(&reparsed, 0, &options());
        assert_eq!(
            original.verdict.is_proved(),
            roundtrip.verdict.is_proved(),
            "{}",
            benchmark.name
        );
        assert_eq!(
            original.verdict.is_falsified(),
            roundtrip.verdict.is_falsified(),
            "{}",
            benchmark.name
        );
    }
}
