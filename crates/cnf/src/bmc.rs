//! The three BMC formulations of the paper: *bound-k*, *exact-k* and
//! *exact-assume-k*.
//!
//! Section II-A of *Interpolation Sequences Revisited* defines, for a design
//! with initial states `S0`, transition relation `T` and property `p`:
//!
//! * `bmc_B^k = S0 ∧ T^k ∧ ⋁_{i=1..k} ¬p(V^i)` — **bound-k**, a violation at
//!   *any* depth up to `k`;
//! * `bmc_E^k = S0 ∧ T^k ∧ ¬p(V^k)` — **exact-k**, a violation at depth
//!   exactly `k` (earlier violations not excluded);
//! * `bmc_A^k = S0 ∧ T^k ∧ ⋀_{i=1..k-1} p(V^i) ∧ ¬p(V^k)` —
//!   **exact-assume-k**, a violation at depth `k` along a path where the
//!   property held at every earlier frame.
//!
//! The partition labels follow the `Γ_{1..k+1}` decomposition used for
//! interpolation sequences: partition 1 holds `S0 ∧ T(V^0,V^1)`, partition
//! `i` (2 ≤ i ≤ k) holds `T(V^{i-1},V^i)` (and, for assume-k, `p(V^{i-1})`),
//! and partition `k+1` holds the target.

use crate::{Cnf, Lit, Unroller};
use aig::Aig;

/// Which of the three BMC target formulations to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BmcCheck {
    /// `⋁_{i=1..k} ¬p(V^i)` — used by standard interpolation.
    Bound,
    /// `¬p(V^k)` — used by plain interpolation sequences.
    Exact,
    /// `⋀_{i<k} p(V^i) ∧ ¬p(V^k)` — the cheaper check advocated by the
    /// paper for interpolation sequences.
    ExactAssume,
}

impl BmcCheck {
    /// A short human-readable name used in benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            BmcCheck::Bound => "bound-k",
            BmcCheck::Exact => "exact-k",
            BmcCheck::ExactAssume => "assume-k",
        }
    }
}

/// A fully built BMC instance: the CNF plus the frame variable maps needed
/// to interpret models and interpolants.
#[derive(Clone, Debug)]
pub struct BmcInstance {
    /// The partition-labelled CNF formula.
    pub cnf: Cnf,
    /// `frame_latches[f][i]` is the SAT literal of latch `i` at frame `f`.
    pub frame_latches: Vec<Vec<Lit>>,
    /// `frame_inputs[f][i]` is the SAT literal of input `i` at frame `f`,
    /// when that input was referenced by the encoding.
    pub frame_inputs: Vec<Vec<Option<Lit>>>,
    /// The bound `k` of the instance.
    pub bound: usize,
    /// The formulation used for the target.
    pub check: BmcCheck,
}

/// Builds the BMC instance `bmc^k` for bad-state property `bad_index` of
/// `aig`, using the requested `check` formulation.
///
/// # Panics
///
/// Panics if `bound == 0` or if `bad_index` is out of range.
pub fn build(aig: &Aig, bad_index: usize, bound: usize, check: BmcCheck) -> BmcInstance {
    assert!(bound >= 1, "BMC bound must be at least 1");
    assert!(bad_index < aig.num_bad(), "bad-state index out of range");
    let mut unroller = Unroller::new(aig);

    // Partition 1: S0 ∧ T(V^0, V^1).
    unroller.builder_mut().set_partition(1);
    unroller.assert_initial(0);
    unroller.add_frame();

    // Partitions 2..=bound: T(V^{i-1}, V^i), plus p(V^{i-1}) for assume-k.
    for frame in 2..=bound {
        unroller.builder_mut().set_partition(frame as u32);
        if check == BmcCheck::ExactAssume {
            let bad_prev = unroller.bad_lit(frame - 1, bad_index);
            unroller.assert_lit(!bad_prev);
        }
        unroller.add_frame();
    }

    // Partition bound + 1: the target.
    unroller.builder_mut().set_partition(bound as u32 + 1);
    match check {
        BmcCheck::Bound => {
            let bads: Vec<Lit> = (1..=bound)
                .map(|f| unroller.bad_lit(f, bad_index))
                .collect();
            // At least one frame violates the property.
            unroller.builder_mut().add_clause(bads);
        }
        BmcCheck::Exact | BmcCheck::ExactAssume => {
            let bad = unroller.bad_lit(bound, bad_index);
            unroller.assert_lit(bad);
        }
    }

    let frame_latches: Vec<Vec<Lit>> = (0..=bound).map(|f| unroller.latch_lits(f)).collect();
    let frame_inputs: Vec<Vec<Option<Lit>>> = (0..=bound)
        .map(|f| {
            (0..aig.num_inputs())
                .map(|i| {
                    // Only report inputs that were actually allocated.
                    let lit = unroller.input_lit(f, i);
                    Some(lit)
                })
                .collect()
        })
        .collect();
    BmcInstance {
        cnf: unroller.into_cnf(),
        frame_latches,
        frame_inputs,
        bound,
        check,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_sat(cnf: &Cnf) -> bool {
        crate::testutil::dpll_sat(cnf)
    }

    /// A 2-bit counter that always increments; bad when it reaches 3.
    fn counter2() -> Aig {
        let mut aig = Aig::new();
        let (ids, lits) = aig::builder::latch_word(&mut aig, 2, 0);
        let next = aig::builder::word_increment(&mut aig, &lits, aig::Lit::TRUE);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = aig.and(lits[0], lits[1]);
        aig.add_bad(bad);
        aig
    }

    /// A toggler whose bad state (latch = 1) is reached at every odd frame.
    fn toggler() -> Aig {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        let cur = aig.latch_lit(l);
        aig.set_next(l, !cur);
        aig.add_bad(cur);
        aig
    }

    #[test]
    fn exact_k_matches_counter_distance() {
        let aig = counter2();
        for k in 1..=4 {
            let inst = build(&aig, 0, k, BmcCheck::Exact);
            let expected = k == 3; // counter holds 3 exactly at frame 3 (and 7, ...)
            assert_eq!(brute_force_sat(&inst.cnf), expected, "bound {k}");
        }
    }

    #[test]
    fn bound_k_accumulates_violations() {
        let aig = counter2();
        assert!(!brute_force_sat(&build(&aig, 0, 2, BmcCheck::Bound).cnf));
        assert!(brute_force_sat(&build(&aig, 0, 3, BmcCheck::Bound).cnf));
        assert!(brute_force_sat(&build(&aig, 0, 4, BmcCheck::Bound).cnf));
    }

    #[test]
    fn assume_k_requires_first_violation_at_k() {
        let aig = toggler();
        // bad holds at frames 1, 3, 5, ...; with assume-k, a violation at
        // frame 3 requires p to hold at frames 1 and 2, impossible.
        assert!(brute_force_sat(
            &build(&aig, 0, 1, BmcCheck::ExactAssume).cnf
        ));
        assert!(!brute_force_sat(
            &build(&aig, 0, 2, BmcCheck::ExactAssume).cnf
        ));
        assert!(!brute_force_sat(
            &build(&aig, 0, 3, BmcCheck::ExactAssume).cnf
        ));
        // exact-k instead allows the earlier violation at frame 1.
        assert!(brute_force_sat(&build(&aig, 0, 3, BmcCheck::Exact).cnf));
    }

    #[test]
    fn partitions_span_one_to_k_plus_one() {
        let aig = counter2();
        let inst = build(&aig, 0, 3, BmcCheck::Exact);
        assert_eq!(inst.cnf.num_partitions(), 4);
        for p in 1..=4 {
            assert!(
                inst.cnf.clauses.iter().any(|c| c.partition == p),
                "partition {p} must not be empty"
            );
        }
    }

    #[test]
    fn frame_latch_maps_have_expected_shape() {
        let aig = counter2();
        let inst = build(&aig, 0, 2, BmcCheck::Exact);
        assert_eq!(inst.frame_latches.len(), 3);
        assert!(inst.frame_latches.iter().all(|f| f.len() == 2));
        assert_eq!(inst.bound, 2);
        assert_eq!(inst.check, BmcCheck::Exact);
    }

    #[test]
    fn check_names_are_stable() {
        assert_eq!(BmcCheck::Bound.name(), "bound-k");
        assert_eq!(BmcCheck::Exact.name(), "exact-k");
        assert_eq!(BmcCheck::ExactAssume.name(), "assume-k");
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn zero_bound_is_rejected() {
        let aig = counter2();
        let _ = build(&aig, 0, 0, BmcCheck::Exact);
    }
}
