#!/usr/bin/env python3
"""Validate the benchmark artifacts CI uploads.

Each ``--kind`` is one checked artifact contract (previously an inline
script in ``.github/workflows/ci.yml``):

* ``table1-counters FILE`` — ``itpseq-table1/v6`` JSON: every record
  carries the SAT-core and search counters, the preprocessing reduction
  counters and the fault-isolation counters, and the suite as a whole
  exercised minimization, clause deletion and database reduction.
* ``chaos-counters FILE`` — ``itpseq-table1/v6`` JSON from a ``--chaos``
  run: fault injection was armed, so the counters must show faults
  actually fired, every verdict must still be a recognised kind, and
  every inconclusive record must carry a machine-readable reason.
* ``trace-schema TRACE CHROME BASELINE TRACED`` — ``itpseq-trace/v1``
  JSONL: balanced span tree per track, verdict markers, engine-run
  spans, non-empty Chrome export, and the no-op-sink baseline run is
  not suspiciously slower than the recording run.
* ``hwmcc-schema FILE`` — ``itpseq-hwmcc/v2`` JSON: fixture designs all
  parsed, every property has a recognised status, at least one verdict
  is conclusive, the outputs-as-properties fallback was exercised, and
  the preprocessing pipeline reports per-pass reduction statistics with
  nonzero AND-gate and latch removal somewhere in the fixture set (the
  industrial-shaped fixture guarantees both).
* ``report REPORT FOLDED`` — ``itpseq-report/v1`` JSON plus its folded
  flamegraph export: non-empty span aggregates with engine-run spans,
  per-track self times summing to the busy time and bounded by the wall
  time, the ``baseline`` comparison field present (and passing when a
  comparison was embedded), and a non-empty well-formed collapsed-stack
  file whose per-track weights equal the report's busy times.

Exit status is non-zero (an ``AssertionError`` traceback) on any
violated contract, which fails the CI step.
"""

import argparse
import json
import sys


FAULT_COUNTERS = [
    "panics_contained",
    "memlimit_hits",
    "faults_injected",
    "pool_seq_reruns",
]


def load_table1(path):
    doc = json.load(open(path))
    assert doc["schema"] == "itpseq-table1/v6", doc["schema"]
    records = doc["records"]
    assert records, "the run produced no records"
    return records


def check_table1_counters(path):
    records = load_table1(path)
    counters = [
        "learned_deleted",
        "minimized_literals",
        "db_reductions",
        "decisions",
        "propagations",
        "restarts",
    ]
    reduction = [
        "preprocess_time_ms",
        "ands_removed",
        "latches_removed",
        "inputs_removed",
        "cert_clauses_subsumed",
    ]
    for record in records:
        for field in reduction + FAULT_COUNTERS:
            assert field in record, f"{field} missing from {record['benchmark']}"

    for record in records:
        for counter in counters:
            assert counter in record, f"{counter} missing from {record['benchmark']}"
    # Restarts can legitimately stay zero on the tiny smoke instances;
    # search activity itself cannot.
    for counter in counters[:-1]:
        total = sum(r[counter] for r in records)
        assert total > 0, f"{counter} is zero across the whole smoke suite"
        print(f"total {counter}: {total}")
    # Without injection armed, no run may report a fault.
    injected = sum(r["faults_injected"] for r in records)
    assert injected == 0, f"faults reported without injection armed: {injected}"


def check_chaos_counters(path):
    records = load_table1(path)
    for record in records:
        for field in FAULT_COUNTERS:
            assert field in record, f"{field} missing from {record['benchmark']}"
        assert record["verdict"] in ("proved", "falsified", "inconclusive"), record
        if record["verdict"] == "inconclusive":
            assert record["reason"], f"opaque inconclusive record: {record}"
    injected = sum(r["faults_injected"] for r in records)
    contained = sum(r["panics_contained"] for r in records)
    degraded = sum(r["verdict"] == "inconclusive" for r in records)
    assert injected > 0, "injection was armed but no fault fired"
    print(
        f"{len(records)} records: {injected} faults injected, "
        f"{contained} panics contained, {degraded} degraded verdicts"
    )


def check_trace_schema(trace_path, chrome_path, baseline_path, traced_path):
    lines = open(trace_path).read().splitlines()
    assert lines, "empty trace"
    header = json.loads(lines[0])
    assert header["schema"] == "itpseq-trace/v1", header
    events = [json.loads(line) for line in lines[1:]]
    assert events, "trace carries no events"
    depth, spans = {}, 0
    for e in events:
        assert {"seq", "ts_us", "track", "ph", "name"} <= e.keys(), e
        if e["ph"] == "B":
            depth[e["track"]] = depth.get(e["track"], 0) + 1
        elif e["ph"] == "E":
            depth[e["track"]] = depth.get(e["track"], 0) - 1
            assert depth[e["track"]] >= 0, f"unbalanced span on {e['track']}"
            spans += 1
    assert spans > 0, "no complete spans recorded"
    assert any(
        e["name"] in ("verdict", "prop.decide") for e in events
    ), "no verdict / property-decision markers"
    assert any(
        e["name"].endswith(".run") or e["name"].endswith(".multi") for e in events
    ), "no engine run spans"
    chrome = json.load(open(chrome_path))
    assert chrome["traceEvents"], "empty chrome trace"
    base = json.load(open(baseline_path))
    traced = json.load(open(traced_path))
    base_ms = sum(d.get("time_ms", 0) for d in base["designs"])
    traced_ms = sum(d.get("time_ms", 0) for d in traced["designs"])
    print(
        f"{len(events)} events, {spans} spans; "
        f"no-op {base_ms:.0f} ms vs recorded {traced_ms:.0f} ms"
    )
    assert (
        base_ms <= traced_ms * 3 + 1000
    ), f"no-op-sink run suspiciously slow: {base_ms} vs {traced_ms}"


def check_hwmcc_schema(path):
    doc = json.load(open(path))
    assert doc["schema"] == "itpseq-hwmcc/v2", doc["schema"]
    designs = doc["designs"]
    assert len(designs) >= 4, f"expected the fixture designs, got {len(designs)}"
    conclusive = 0
    pass_names = {"strash", "constants", "stuck", "dead", "coi"}
    for design in designs:
        assert "error" not in design, design
        assert design["properties"], f"{design['file']} has no properties"
        for prop in design["properties"]:
            assert prop["status"] in ("proved", "falsified", "inconclusive"), prop
            conclusive += prop["status"] != "inconclusive"
        pre = design.get("preprocess")
        assert pre is not None, f"{design['file']} carries no preprocess report"
        assert pre["passes"], f"{design['file']} ran no preprocessing passes"
        for stage in pre["passes"]:
            assert stage["pass"] in pass_names, stage
            for field in ("ands_removed", "latches_removed", "inputs_removed"):
                assert field in stage, stage
    assert conclusive > 0, "the fixture run decided nothing"
    assert any(
        d["promoted_outputs"] for d in designs
    ), "the outputs-as-properties fallback fixture must be exercised"
    reduced_ands = sum(d["preprocess"]["ands_removed"] for d in designs)
    reduced_latches = sum(d["preprocess"]["latches_removed"] for d in designs)
    assert reduced_ands > 0, "no fixture design lost an AND gate to preprocessing"
    assert reduced_latches > 0, "no fixture design lost a latch to preprocessing"
    print(
        f"{len(designs)} designs, {conclusive} conclusive properties, "
        f"preprocessing removed {reduced_ands} ands / {reduced_latches} latches"
    )


def check_report(report_path, folded_path):
    doc = json.load(open(report_path))
    assert doc["schema"] == "itpseq-report/v1", doc["schema"]
    assert doc["total_events"] > 0, "report over an empty trace"
    spans = doc["spans"]
    assert spans, "no span aggregates"
    assert any(
        s["name"].endswith(".run") or s["name"].endswith(".multi") for s in spans
    ), "no engine run spans in the aggregates"
    for span in spans:
        assert span["self_us"] <= span["total_us"], span
        assert span["min_us"] <= span["p50_us"] <= span["p99_us"] <= span["max_us"], span
    tracks = {t["track"]: t for t in doc["tracks"]}
    assert tracks, "no tracks"
    for name, track in tracks.items():
        self_sum = sum(s["self_us"] for s in spans if s["track"] == name)
        assert self_sum == track["busy_us"], (
            f"{name}: self times sum to {self_sum}, busy is {track['busy_us']}"
        )
        assert track["busy_us"] <= track["wall_us"], track
    # The key is always emitted; a null means "no comparison requested",
    # an embedded comparison must have passed for the artifact to count.
    assert "baseline" in doc, "report carries no baseline field"
    if doc["baseline"] is not None:
        assert doc["baseline"]["passed"], doc["baseline"]

    folded = open(folded_path).read().splitlines()
    assert folded, "empty folded flamegraph export"
    weights = {}
    for line in folded:
        stack, weight = line.rsplit(" ", 1)
        frames = stack.split(";")
        assert frames and all(frames), f"malformed stack: {line!r}"
        weights[frames[0]] = weights.get(frames[0], 0) + int(weight)
    for name, total in weights.items():
        assert name in tracks, f"folded track {name} missing from the report"
        assert total == tracks[name]["busy_us"], (
            f"{name}: folded weight {total} != busy {tracks[name]['busy_us']}"
        )
    print(
        f"{len(spans)} span aggregates over {len(tracks)} tracks, "
        f"{len(folded)} folded stacks, baseline "
        + ("compared" if doc["baseline"] is not None else "not compared")
    )


KINDS = {
    "table1-counters": (check_table1_counters, 1),
    "chaos-counters": (check_chaos_counters, 1),
    "trace-schema": (check_trace_schema, 4),
    "hwmcc-schema": (check_hwmcc_schema, 1),
    "report": (check_report, 2),
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kind", required=True, choices=sorted(KINDS))
    parser.add_argument("files", nargs="+", help="artifact file(s), see --kind docs")
    args = parser.parse_args()
    check, arity = KINDS[args.kind]
    if len(args.files) != arity:
        parser.error(f"--kind {args.kind} takes exactly {arity} file argument(s)")
    check(*args.files)


if __name__ == "__main__":
    sys.exit(main())
