//! Serial interpolation sequences (`SITPSEQ`, Fig. 4, Definition 3).
//!
//! The first `⌊αs · n⌋` elements of each sequence are computed serially —
//! every `I_j` from its own refutation of `I_{j-1} ∧ A_j ∧ ⋀_{i>j} A_i` —
//! and the remaining elements in parallel from one proof.  The cumulative
//! interpolation effect of the serial prefix tends to increase abstraction
//! and converge at smaller depths, at the price of extra SAT calls.

use crate::engines::seq::{run, SeqConfig};
use crate::engines::CancelToken;
use crate::{EngineResult, Options};
use aig::Aig;

/// Runs the serial interpolation-sequence engine on bad-state property
/// `bad_index`, with the serial fraction taken from
/// [`Options::alpha_serial`].
pub fn verify(design: &Aig, bad_index: usize, options: &Options) -> EngineResult {
    verify_with_cancel(design, bad_index, options, &CancelToken::new())
}

/// [`verify`] under a cancellation token (see [`crate::CancelToken`]).
pub fn verify_with_cancel(
    design: &Aig,
    bad_index: usize,
    options: &Options,
    cancel: &CancelToken,
) -> EngineResult {
    run(
        design,
        bad_index,
        options,
        SeqConfig {
            name: "SITPSEQ",
            alpha_serial: options.alpha_serial,
            use_cba: false,
        },
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Options, Verdict};
    use aig::builder::{latch_word, word_equals_const, word_increment, word_mux};

    fn modular_counter(width: usize, modulus: u64, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, bits) = latch_word(&mut aig, width, 0);
        let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
        let inc = word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(width, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &bits, bad_at);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn proves_unreachable_counter_value() {
        let aig = modular_counter(3, 6, 6);
        let result = verify(&aig, 0, &Options::default());
        assert!(result.verdict.is_proved(), "verdict: {}", result.verdict);
    }

    #[test]
    fn falsifies_reachable_counter_value() {
        let aig = modular_counter(3, 6, 3);
        let result = verify(&aig, 0, &Options::default());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 3 });
    }

    #[test]
    fn every_alpha_setting_is_sound() {
        for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for bad_at in [3u64, 7] {
                let aig = modular_counter(3, 6, bad_at);
                let exact = bdd::reach::analyze(&aig, 0, 1_000_000);
                let got = verify(&aig, 0, &Options::default().with_alpha(alpha));
                match exact.verdict {
                    bdd::BddVerdict::Pass => assert!(
                        got.verdict.is_proved(),
                        "alpha={alpha} bad_at={bad_at}: {}",
                        got.verdict
                    ),
                    bdd::BddVerdict::Fail { depth } => assert_eq!(
                        got.verdict,
                        Verdict::Falsified { depth },
                        "alpha={alpha} bad_at={bad_at}"
                    ),
                    bdd::BddVerdict::Overflow => unreachable!(),
                }
            }
        }
    }

    #[test]
    fn serial_steps_issue_more_sat_calls_than_parallel() {
        let aig = modular_counter(3, 6, 7);
        let parallel = verify(&aig, 0, &Options::default().with_alpha(0.0));
        let serial = verify(&aig, 0, &Options::default().with_alpha(1.0));
        assert!(parallel.verdict.is_proved());
        assert!(serial.verdict.is_proved());
        assert!(serial.stats.sat_calls >= parallel.stats.sat_calls);
    }
}
