//! Shows the AIGER interface: export a workload to ASCII AIGER, read it
//! back, and verify the reparsed design — the workflow a user with their
//! own `.aag` benchmarks would follow.
//!
//! Run with `cargo run --example aiger_roundtrip`.

use itpseq::aig::{parse_aag, to_aag};
use itpseq::mc::{Engine, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = itpseq::workloads::fifo::controller(3, false);
    let text = to_aag(&original);
    println!(
        "serialized {} to {} bytes of ASCII AIGER (header: {})",
        original.name(),
        text.len(),
        text.lines().next().unwrap_or_default()
    );

    let reparsed = parse_aag(&text)?;
    println!(
        "reparsed: {} inputs, {} latches, {} AND gates, {} bad-state properties",
        reparsed.num_inputs(),
        reparsed.num_latches(),
        reparsed.num_ands(),
        reparsed.num_bad()
    );

    let result = Engine::SerialItpSeq.verify(&reparsed, 0, &Options::default());
    println!("SITPSEQ verdict on the reparsed design: {}", result.verdict);
    assert!(result.verdict.is_proved());
    Ok(())
}
