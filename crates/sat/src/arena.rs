//! Flat clause storage for the CDCL core.
//!
//! All clauses — original and learned — live in one contiguous `Vec<u32>`
//! (the *arena*): a four-word header followed by the literal codes.  The
//! solver refers to a clause by [`ClauseRef`], the word offset of its
//! header, so following a watcher touches exactly one allocation instead
//! of chasing a `Vec<Vec<Lit>>` double indirection per clause.
//!
//! Header layout (see the `w0..w3` accessors):
//!
//! | word | content |
//! |------|---------|
//! | 0    | number of literals |
//! | 1    | flag bits (learned / deleted / pinned / relocated) + LBD |
//! | 2    | interpolation partition (original clauses only) |
//! | 3    | proof-clause id, or [`NO_PROOF_ID`]; forwarding address during GC |
//!
//! Deletion only flips a flag and detaches the watchers; the words stay
//! behind as garbage until the solver runs a compacting collection
//! ([`ClauseArena::copy_into`] + forwarding addresses), which preserves
//! clause order — and therefore proof-id order — exactly.

use cnf::Lit;

/// Number of `u32` header words preceding a clause's literals.
const HEADER: u32 = 4;

const FLAG_LEARNED: u32 = 1 << 31;
const FLAG_DELETED: u32 = 1 << 30;
const FLAG_PINNED: u32 = 1 << 29;
const FLAG_RELOCATED: u32 = 1 << 28;
const LBD_MASK: u32 = FLAG_RELOCATED - 1;

/// Sentinel proof id for clauses created while proof logging is off.
pub(crate) const NO_PROOF_ID: u32 = u32::MAX;

/// Reference to an arena clause: the word offset of its header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct ClauseRef(u32);

/// The flat clause store.  See the module docs for the layout.
#[derive(Clone, Debug, Default)]
pub(crate) struct ClauseArena {
    data: Vec<u32>,
    /// Words occupied by deleted clauses, reclaimable by compaction.
    wasted: usize,
    /// Number of live (non-deleted) clauses.
    live: usize,
}

impl ClauseArena {
    pub fn with_capacity(words: usize) -> ClauseArena {
        ClauseArena {
            data: Vec::with_capacity(words),
            wasted: 0,
            live: 0,
        }
    }

    /// Appends a clause and returns its reference.
    pub fn alloc(
        &mut self,
        lits: &[Lit],
        learned: bool,
        partition: u32,
        proof_id: u32,
    ) -> ClauseRef {
        let at = self.data.len() as u32;
        self.data.push(lits.len() as u32);
        self.data.push(if learned { FLAG_LEARNED } else { 0 });
        self.data.push(partition);
        self.data.push(proof_id);
        self.data.extend(lits.iter().map(|l| l.code()));
        self.live += 1;
        ClauseRef(at)
    }

    #[inline]
    pub fn size(&self, c: ClauseRef) -> usize {
        self.data[c.0 as usize] as usize
    }

    #[inline]
    pub fn lit(&self, c: ClauseRef, i: usize) -> Lit {
        Lit::from_code(self.data[c.0 as usize + HEADER as usize + i])
    }

    #[inline]
    pub fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        let base = c.0 as usize + HEADER as usize;
        self.data.swap(base + i, base + j);
    }

    #[inline]
    pub fn lbd(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize + 1] & LBD_MASK
    }

    pub fn set_lbd(&mut self, c: ClauseRef, lbd: u32) {
        let w = &mut self.data[c.0 as usize + 1];
        *w = (*w & !LBD_MASK) | lbd.min(LBD_MASK);
    }

    #[inline]
    pub fn is_learned(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize + 1] & FLAG_LEARNED != 0
    }

    #[inline]
    pub fn is_deleted(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize + 1] & FLAG_DELETED != 0
    }

    pub fn mark_deleted(&mut self, c: ClauseRef) {
        debug_assert!(!self.is_deleted(c));
        self.data[c.0 as usize + 1] |= FLAG_DELETED;
        self.wasted += HEADER as usize + self.size(c);
        self.live -= 1;
    }

    #[inline]
    pub fn is_pinned(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize + 1] & FLAG_PINNED != 0
    }

    pub fn pin(&mut self, c: ClauseRef) {
        self.data[c.0 as usize + 1] |= FLAG_PINNED;
    }

    /// The interpolation partition of an original clause.
    #[inline]
    pub fn partition(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize + 2]
    }

    #[inline]
    pub fn proof_id(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize + 3]
    }

    /// Number of live clauses.
    #[cfg(test)]
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Total words in use (live + garbage).
    pub fn len_words(&self) -> usize {
        self.data.len()
    }

    /// Bytes backing the arena (the reserved capacity, not just the words
    /// in use — the memory governor accounts for what is actually held).
    pub fn bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<u32>()
    }

    /// Words occupied by deleted clauses.
    pub fn wasted_words(&self) -> usize {
        self.wasted
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Walks every clause (including deleted ones) in allocation order.
    pub fn refs(&self) -> impl Iterator<Item = ClauseRef> + '_ {
        let mut at = 0u32;
        std::iter::from_fn(move || {
            if (at as usize) < self.data.len() {
                let c = ClauseRef(at);
                at += HEADER + self.data[at as usize];
                Some(c)
            } else {
                None
            }
        })
    }

    /// Copies a clause verbatim into `to` (a compaction target) and
    /// returns its new reference.
    pub fn copy_into(&self, c: ClauseRef, to: &mut ClauseArena) -> ClauseRef {
        let at = to.data.len() as u32;
        let words = HEADER as usize + self.size(c);
        to.data
            .extend_from_slice(&self.data[c.0 as usize..c.0 as usize + words]);
        to.live += 1;
        ClauseRef(at)
    }

    /// Records the compaction target of `c` (stored in the proof-id word;
    /// the old arena is dropped right after the pointer fix-up pass).
    pub fn set_forward(&mut self, c: ClauseRef, new: ClauseRef) {
        self.data[c.0 as usize + 1] |= FLAG_RELOCATED;
        self.data[c.0 as usize + 3] = new.0;
    }

    /// The compaction target recorded by [`Self::set_forward`].
    pub fn forward(&self, c: ClauseRef) -> ClauseRef {
        debug_assert!(self.data[c.0 as usize + 1] & FLAG_RELOCATED != 0);
        ClauseRef(self.data[c.0 as usize + 3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::Var;

    fn lit(v: u32, neg: bool) -> Lit {
        Lit::new(Var::new(v), neg)
    }

    #[test]
    fn alloc_and_read_back() {
        let mut arena = ClauseArena::default();
        let a = arena.alloc(&[lit(0, false), lit(1, true)], false, 3, 7);
        let b = arena.alloc(&[lit(2, false)], true, 0, NO_PROOF_ID);
        assert_eq!(arena.size(a), 2);
        assert_eq!(arena.lit(a, 0), lit(0, false));
        assert_eq!(arena.lit(a, 1), lit(1, true));
        assert_eq!(arena.partition(a), 3);
        assert_eq!(arena.proof_id(a), 7);
        assert!(!arena.is_learned(a));
        assert!(arena.is_learned(b));
        assert_eq!(arena.refs().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(arena.num_live(), 2);
    }

    #[test]
    fn lbd_and_flags_roundtrip() {
        let mut arena = ClauseArena::default();
        let c = arena.alloc(&[lit(0, false), lit(1, false), lit(2, false)], true, 0, 5);
        arena.set_lbd(c, 9);
        assert_eq!(arena.lbd(c), 9);
        assert!(!arena.is_pinned(c));
        arena.pin(c);
        assert!(arena.is_pinned(c));
        assert_eq!(arena.lbd(c), 9, "pinning must not clobber the LBD");
        assert_eq!(arena.proof_id(c), 5);
        arena.mark_deleted(c);
        assert!(arena.is_deleted(c));
        assert_eq!(arena.num_live(), 0);
        assert_eq!(arena.wasted_words(), 4 + 3);
    }

    #[test]
    fn swaps_move_literals() {
        let mut arena = ClauseArena::default();
        let c = arena.alloc(&[lit(0, false), lit(1, false), lit(2, false)], false, 0, 0);
        arena.swap_lits(c, 0, 2);
        assert_eq!(arena.lit(c, 0), lit(2, false));
        assert_eq!(arena.lit(c, 2), lit(0, false));
    }

    #[test]
    fn compaction_preserves_order_and_content() {
        let mut arena = ClauseArena::default();
        let a = arena.alloc(&[lit(0, false), lit(1, false)], false, 1, 0);
        let b = arena.alloc(&[lit(2, false), lit(3, false), lit(4, true)], true, 0, 1);
        let c = arena.alloc(&[lit(5, true)], false, 2, 2);
        arena.mark_deleted(b);
        let mut to = ClauseArena::with_capacity(arena.len_words() - arena.wasted_words());
        for r in arena.refs().collect::<Vec<_>>() {
            if arena.is_deleted(r) {
                continue;
            }
            let new = arena.copy_into(r, &mut to);
            arena.set_forward(r, new);
        }
        let new_a = arena.forward(a);
        let new_c = arena.forward(c);
        assert_eq!(to.refs().collect::<Vec<_>>(), vec![new_a, new_c]);
        assert_eq!(to.size(new_a), 2);
        assert_eq!(to.lit(new_a, 1), lit(1, false));
        assert_eq!(to.partition(new_c), 2);
        assert_eq!(to.proof_id(new_c), 2);
        assert_eq!(to.wasted_words(), 0);
        assert_eq!(to.num_live(), 2);
    }
}
