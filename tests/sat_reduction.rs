//! A/B regression harness for the SAT core's learned-clause database
//! reduction: every engine must report the same *semantic* outcome with
//! reduction on (the default) and off ([`Options::with_reduce_db`]).
//!
//! "Semantic" means the verdict kind and — for falsified properties — the
//! counterexample depth, which every engine reports minimally (BMC and
//! the sequence engines ascend bound by bound, PDR keeps obligation
//! push-forward off).  Those are properties of the *design*, so deleting
//! learned clauses can never legitimately change them.  `k_fp`/`j_fp` of
//! proving runs are deliberately *not* compared: they depend on the
//! refutation proofs the search happens to find, and reduction (like any
//! search-order change) may shift them without being wrong.

use itpseq::cnf::BmcCheck;
use itpseq::mc::{Engine, Options, Verdict};
use proptest::prelude::*;
use std::time::Duration;

fn options(reduce: bool, check: BmcCheck) -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(10))
        .with_max_bound(40)
        .with_check(check)
        .with_reduce_db(reduce)
}

/// Small designs for which the duplicated runs stay cheap.
fn small_designs() -> Vec<itpseq::workloads::Benchmark> {
    itpseq::workloads::suite::mid_size()
        .into_iter()
        .filter(|b| b.aig.num_latches() <= 10)
        .collect()
}

/// The semantically pinned part of a verdict: its kind, and the exact
/// counterexample depth when falsified.
fn semantic(verdict: &Verdict) -> (u8, Option<usize>) {
    match verdict {
        Verdict::Proved { .. } => (0, None),
        Verdict::Falsified { depth } => (1, Some(*depth)),
        Verdict::Inconclusive { .. } => (2, None),
    }
}

/// Whole-suite sweep: BMC (whose entire verdict, including the bound
/// reached, is semantic), PDR and the serial sequence engine agree with
/// themselves across the reduction switch on every small design.
#[test]
fn suite_verdicts_are_identical_with_reduction_on_and_off() {
    for benchmark in small_designs() {
        for engine in [Engine::Bmc, Engine::Pdr, Engine::SerialItpSeq] {
            let with = engine.verify(&benchmark.aig, 0, &options(true, BmcCheck::ExactAssume));
            let without = engine.verify(&benchmark.aig, 0, &options(false, BmcCheck::ExactAssume));
            assert_eq!(
                semantic(&with.verdict),
                semantic(&without.verdict),
                "{} on {}: reduction changed the outcome ({} vs {})",
                engine.name(),
                benchmark.name,
                with.verdict,
                without.verdict
            );
            if engine == Engine::Bmc {
                // BMC reports nothing search-dependent: the full verdict
                // must match bit for bit.
                assert_eq!(with.verdict, without.verdict, "BMC on {}", benchmark.name);
            }
        }
    }
}

/// The reduction run must actually exercise the machinery somewhere on
/// the suite — otherwise the A/B comparison above proves nothing.
#[test]
fn reduction_machinery_is_exercised_on_the_suite() {
    let mut deleted = 0;
    let mut minimized = 0;
    for benchmark in small_designs() {
        for engine in [Engine::Pdr, Engine::SerialItpSeq] {
            let result = engine.verify(&benchmark.aig, 0, &options(true, BmcCheck::ExactAssume));
            deleted += result.stats.learned_deleted;
            minimized += result.stats.minimized_literals;
        }
    }
    assert!(minimized > 0, "minimization must fire on the suite");
    assert!(deleted > 0, "clause deletion must fire on the suite");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized cross-product of benchmark × engine × BMC formulation:
    /// the semantic outcome is invariant under the reduction switch.
    #[test]
    fn reduction_preserves_verdicts_and_depths(
        bench_sel in 0usize..1024,
        engine_sel in 0usize..5,
        check_sel in 0usize..3,
    ) {
        let designs = small_designs();
        let benchmark = &designs[bench_sel % designs.len()];
        let engine = [
            Engine::Bmc,
            Engine::Itp,
            Engine::ItpSeq,
            Engine::ItpSeqCba,
            Engine::Pdr,
        ][engine_sel];
        let check = [BmcCheck::Bound, BmcCheck::Exact, BmcCheck::ExactAssume][check_sel];
        let with = engine.verify(&benchmark.aig, 0, &options(true, check));
        let without = engine.verify(&benchmark.aig, 0, &options(false, check));
        prop_assert!(
            semantic(&with.verdict) == semantic(&without.verdict),
            "{} on {} with {:?}: {} vs {}",
            engine.name(),
            benchmark.name,
            check,
            with.verdict,
            without.verdict
        );
    }
}
