//! End-to-end proof-certificate round-trips: every conclusive verdict
//! from every engine must serialize to an `itpseq-cert/v1` document that
//! the independent checker (`crates/certify`, no engine code on its
//! trust path) accepts after re-parsing both the JSON and the `.aag`
//! design from text — and corrupted certificates must be rejected.

use certify::{check_entry, parse_document, Cert, CertEntry, Outcome};
use itpseq::aig::{self, Aig};
use itpseq::mc::{certificate::document_json, CertRecord, Engine, Options, Verdict};
use std::time::Duration;

fn options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(10))
        .with_max_bound(40)
}

/// Small designs so all seven engines stay fast.
fn small_designs() -> Vec<itpseq::workloads::Benchmark> {
    itpseq::workloads::suite::mid_size()
        .into_iter()
        .filter(|b| b.aig.num_latches() <= 8)
        .collect()
}

/// Serializes `records` against `aig`, then re-parses both the JSON
/// document and the AIGER text — the exact path the CLI checker takes —
/// and checks every entry.
fn round_trip(name: &str, aig: &Aig, records: &[CertRecord]) -> Vec<(CertEntry, Outcome)> {
    let document = document_json(&format!("{name}.aag"), records);
    let parsed = parse_document(&document).unwrap_or_else(|e| panic!("{name}: {e}"));
    let design = aig::parse_aag(&aig::to_aag(aig)).expect("emitted design must re-parse");
    parsed
        .entries
        .into_iter()
        .map(|entry| {
            let outcome = check_entry(&design, &entry);
            (entry, outcome)
        })
        .collect()
}

#[test]
fn every_engine_round_trips_checker_accepted_certificates() {
    let options = options();
    for benchmark in small_designs() {
        for engine in Engine::ALL {
            let result = engine.verify(&benchmark.aig, 0, &options);
            let conclusive = !matches!(result.verdict, Verdict::Inconclusive { .. });
            let records = [CertRecord::from_result(0, Some(engine.name()), &result)];
            for (entry, outcome) in round_trip(&benchmark.name, &benchmark.aig, &records) {
                if conclusive {
                    assert_eq!(
                        outcome,
                        Outcome::Accepted,
                        "{} via {} ({}): certificate must be accepted",
                        benchmark.name,
                        engine.name(),
                        entry.verdict
                    );
                } else {
                    assert!(
                        matches!(outcome, Outcome::Skipped(_)),
                        "{} via {}: inconclusive entries carry nothing to check",
                        benchmark.name,
                        engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn verify_all_certificates_check_out_per_property() {
    let options = options();
    for file in ["counter_multi.aag", "arbiter_multi.aag"] {
        let text = std::fs::read_to_string(format!("tests/data/{file}")).unwrap();
        let mut aig = aig::parse_aag(&text).unwrap();
        aig.promote_outputs_to_bad();
        for engine in [Engine::Pdr, Engine::Bmc, Engine::Portfolio] {
            let result = engine.verify_all(&aig, &options);
            let records: Vec<CertRecord> = result
                .statuses
                .iter()
                .enumerate()
                .map(|(i, status)| CertRecord::from_status(i, Some(engine.name()), status))
                .collect();
            for (entry, outcome) in round_trip(file, &aig, &records) {
                match entry.verdict.as_str() {
                    "proved" | "falsified" => assert_eq!(
                        outcome,
                        Outcome::Accepted,
                        "{file} p{} via {} ({})",
                        entry.property,
                        engine.name(),
                        entry.verdict
                    ),
                    _ => assert!(matches!(outcome, Outcome::Skipped(_))),
                }
            }
        }
    }
}

/// A latch fed straight from the primary input, `bad = latch`: the only
/// depth-1 counterexample drives the input high at cycle 0, so flipping
/// that one bit must invalidate the trace.
fn input_driven() -> Aig {
    let mut aig = Aig::new();
    let input = aig::Lit::positive(aig.add_input());
    let latch = aig.add_latch(false);
    aig.set_next(latch, input);
    let bad = aig.latch_lit(latch);
    aig.add_bad(bad);
    aig
}

#[test]
fn corrupting_one_input_bit_is_rejected() {
    let aig = input_driven();
    let result = Engine::Bmc.verify(&aig, 0, &options());
    assert_eq!(result.verdict, Verdict::Falsified { depth: 1 });
    let records = [CertRecord::from_result(0, Some("BMC"), &result)];
    let mut entries = round_trip("input_driven", &aig, &records);
    let (mut entry, outcome) = entries.pop().unwrap();
    assert_eq!(outcome, Outcome::Accepted);

    let Some(Cert::Trace(inputs)) = &mut entry.certificate else {
        panic!("falsified entry must carry a trace");
    };
    inputs[0][0] = !inputs[0][0];
    let design = aig::parse_aag(&aig::to_aag(&aig)).unwrap();
    assert!(
        matches!(check_entry(&design, &entry), Outcome::Rejected(_)),
        "a flipped input bit must be caught by replay"
    );
}

#[test]
fn corrupting_one_invariant_clause_is_rejected() {
    // The mod-6 counter with unreachable bad state 7, proved by PDR.
    let text = std::fs::read_to_string("tests/data/counter_multi.aag").unwrap();
    let mut aig = aig::parse_aag(&text).unwrap();
    aig.promote_outputs_to_bad();
    let proved = (0..aig.num_bad())
        .map(|p| (p, Engine::Pdr.verify(&aig, p, &options())))
        .find(|(_, r)| matches!(r.verdict, Verdict::Proved { .. }))
        .expect("the fixture has a provable property");
    let (property, result) = proved;
    let records = [CertRecord::from_result(property, Some("PDR"), &result)];
    let (entry, outcome) = round_trip("counter_multi", &aig, &records).pop().unwrap();
    assert_eq!(outcome, Outcome::Accepted);

    let Some(Cert::Invariant {
        num_latches,
        clauses,
        cone,
    }) = entry.certificate.clone()
    else {
        panic!("proved entry must carry an invariant");
    };
    let design = aig::parse_aag(&aig::to_aag(&aig)).unwrap();
    let corrupt = |clauses: Vec<Vec<(usize, bool)>>| CertEntry {
        certificate: Some(Cert::Invariant {
            num_latches,
            clauses,
            cone: cone.clone(),
        }),
        ..entry.clone()
    };

    // Emptying one clause makes the invariant the constant FALSE — the
    // reset state no longer satisfies it, so initiation must fail.
    let mut emptied = clauses.clone();
    emptied[0].clear();
    let Outcome::Rejected(reason) = check_entry(&design, &corrupt(emptied)) else {
        panic!("an emptied clause must be rejected");
    };
    assert!(reason.contains("initiation"), "{reason}");

    // Flipping one literal's phase turns a lemma into a clause that some
    // reachable state violates: one of the three queries must fail.
    let mut flipped = clauses.clone();
    let (latch, phase) = flipped[0][0];
    flipped[0][0] = (latch, !phase);
    assert!(
        matches!(
            check_entry(&design, &corrupt(flipped)),
            Outcome::Rejected(_)
        ),
        "a flipped clause literal must be rejected"
    );
}

#[test]
fn certification_changes_no_verdicts() {
    // The A/B acceptance gate: `Options::certificates` may only control
    // whether evidence is attached, never what the engines conclude.
    let on = options();
    let off = options().with_certificates(false);
    for benchmark in small_designs() {
        for engine in Engine::ALL {
            let with = engine.verify(&benchmark.aig, 0, &on);
            let without = engine.verify(&benchmark.aig, 0, &off);
            assert_eq!(
                with.verdict,
                without.verdict,
                "{} via {}: certificates flipped the verdict",
                benchmark.name,
                engine.name()
            );
            assert!(
                without.certificate.is_none(),
                "{} via {}: certificates off must not emit evidence",
                benchmark.name,
                engine.name()
            );
        }
    }
}
