//! Criterion group for Fig. 6: one engine comparison per representative
//! benchmark (a passing and a failing instance per class).

use criterion::{criterion_group, criterion_main, Criterion};
use mc::{Engine, Options};
use std::time::Duration;

fn representative_suite() -> Vec<workloads::Benchmark> {
    vec![
        workloads::suite::mid_size().remove(0), // small passing counter
        workloads::suite::mid_size().remove(1), // small failing counter
        workloads::suite::industrial().remove(1), // failing industrial-like
    ]
}

fn fig6_engines(c: &mut Criterion) {
    let options = Options::default()
        .with_timeout(Duration::from_secs(10))
        .with_max_bound(30);
    let mut group = c.benchmark_group("fig6_engines");
    group.sample_size(10);
    for benchmark in representative_suite() {
        for engine in [
            Engine::Itp,
            Engine::ItpSeq,
            Engine::SerialItpSeq,
            Engine::ItpSeqCba,
        ] {
            group.bench_function(format!("{}/{}", engine.name(), benchmark.name), |b| {
                b.iter(|| engine.verify(&benchmark.aig, 0, &options))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig6_engines);
criterion_main!(benches);
