//! CNF layer: variables, literals, clauses, Tseitin encoding and
//! time-frame unrolling for bounded model checking.
//!
//! The model-checking engines of the reproduction talk to the SAT solver
//! exclusively through this crate:
//!
//! * [`Var`] / [`Lit`] / [`Clause`] — the propositional vocabulary,
//! * [`CnfBuilder`] — clause accumulation with *partition labels*, the
//!   bookkeeping required to extract interpolation sequences from one
//!   refutation proof (each clause remembers which `A_i` of
//!   `Γ = {A_1, …, A_n}` it belongs to),
//! * [`tseitin`] — encoding of combinational AIG cones,
//! * [`unroll::Unroller`] — time-frame expansion of a sequential AIG with
//!   per-frame variable maps,
//! * [`incremental::IncrementalUnroller`] — the persistent variant whose
//!   frames, variable maps and Tseitin caches survive across bounds,
//!   emitting only delta clauses as the unrolling grows,
//! * [`bmc`] — the three BMC formulations of the paper (*bound-k*,
//!   *exact-k*, *exact-assume-k*),
//! * [`dimacs`] — DIMACS export for debugging and interoperability.
//!
//! # Example
//!
//! ```
//! use cnf::{CnfBuilder, Lit};
//!
//! let mut builder = CnfBuilder::new();
//! let a = builder.new_var();
//! let b = builder.new_var();
//! builder.add_clause([Lit::positive(a), Lit::positive(b)]);
//! builder.add_clause([!Lit::positive(a)]);
//! assert_eq!(builder.num_clauses(), 2);
//! ```

pub mod bmc;
pub mod dimacs;
pub mod incremental;
#[cfg(test)]
mod testutil;
pub mod tseitin;
mod types;
pub mod unroll;

pub use bmc::{BmcCheck, BmcInstance};
pub use incremental::IncrementalUnroller;
pub use types::{Clause, Cnf, CnfBuilder, Lit, Var};
pub use unroll::Unroller;
