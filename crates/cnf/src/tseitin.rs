//! Tseitin encoding of combinational AIG cones.
//!
//! The encoder walks an AIG cone and emits, for every AND node, the three
//! standard Tseitin clauses relating a fresh SAT variable to its fan-ins.
//! Leaf nodes (primary inputs and latches) are mapped to SAT literals by a
//! caller-supplied closure, which is how the time-frame [`crate::Unroller`]
//! and the interpolant re-encoding in the model checker hook frame-specific
//! variables into the encoding.

use crate::{CnfBuilder, Lit};
use aig::{Aig, AigNode, NodeId};
use std::collections::HashMap;

/// Encodes the cone of `root` into `builder`, returning the SAT literal
/// equisatisfiably equal to `root`.
///
/// * `leaf` maps a non-AND node (input or latch) to its SAT literal; it is
///   called at most once per node thanks to `cache`.
/// * `cache` memoises the encoding of every visited node, so repeated calls
///   with the same cache share the Tseitin variables and clauses of common
///   sub-cones.
///
/// A constant root is encoded by allocating a fresh variable constrained to
/// the constant value with a unit clause.
pub fn encode_cone(
    builder: &mut CnfBuilder,
    aig: &Aig,
    root: aig::Lit,
    cache: &mut HashMap<NodeId, Lit>,
    leaf: &mut dyn FnMut(&mut CnfBuilder, NodeId) -> Lit,
) -> Lit {
    let node_lit = encode_node(builder, aig, root.node(), cache, leaf);
    if root.is_complemented() {
        !node_lit
    } else {
        node_lit
    }
}

fn encode_node(
    builder: &mut CnfBuilder,
    aig: &Aig,
    node: NodeId,
    cache: &mut HashMap<NodeId, Lit>,
    leaf: &mut dyn FnMut(&mut CnfBuilder, NodeId) -> Lit,
) -> Lit {
    if let Some(&lit) = cache.get(&node) {
        return lit;
    }
    // Iterative DFS so deep cones cannot overflow the call stack.
    let mut stack = vec![(node, false)];
    while let Some((id, expanded)) = stack.pop() {
        if cache.contains_key(&id) {
            continue;
        }
        match aig.node(id) {
            AigNode::Const => {
                // A fresh variable pinned to false represents the constant.
                let v = builder.new_lit();
                builder.add_unit(!v);
                cache.insert(id, v);
            }
            AigNode::Input { .. } | AigNode::Latch { .. } => {
                let lit = leaf(builder, id);
                cache.insert(id, lit);
            }
            AigNode::And { left, right } => {
                if expanded {
                    let l = cache[&left.node()].xor_sign(left.is_complemented());
                    let r = cache[&right.node()].xor_sign(right.is_complemented());
                    let out = builder.new_lit();
                    // out -> l, out -> r, (l & r) -> out
                    builder.add_clause([!out, l]);
                    builder.add_clause([!out, r]);
                    builder.add_clause([out, !l, !r]);
                    cache.insert(id, out);
                } else {
                    stack.push((id, true));
                    stack.push((left.node(), false));
                    stack.push((right.node(), false));
                }
            }
        }
    }
    cache[&node]
}

/// Small helper used by the encoder: conditionally complements a literal.
trait XorSign {
    fn xor_sign(self, negate: bool) -> Self;
}

impl XorSign for Lit {
    fn xor_sign(self, negate: bool) -> Lit {
        if negate {
            !self
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CnfBuilder;
    use aig::Aig;
    use std::collections::HashMap;

    /// Exhaustively checks that the encoding of `root` is functionally
    /// equivalent to the AIG evaluation over all input assignments.
    fn check_equivalence(aig: &Aig, root: aig::Lit) {
        let n = aig.num_inputs();
        for assignment in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| (assignment >> i) & 1 == 1).collect();
            let expected = aig.eval(root, &inputs, &[]);

            let mut builder = CnfBuilder::new();
            // Allocate one SAT var per primary input, in order.
            let input_vars: Vec<Lit> = (0..n).map(|_| builder.new_lit()).collect();
            let mut cache = HashMap::new();
            let root_lit = encode_cone(&mut builder, aig, root, &mut cache, &mut |_, id| match aig
                .node(id)
            {
                aig::AigNode::Input { index } => input_vars[index],
                _ => unreachable!("combinational cone has only input leaves"),
            });
            // Pin the inputs and the root, then check satisfiability by
            // brute-force evaluation over the auxiliary variables.
            for (i, &lit) in input_vars.iter().enumerate() {
                builder.add_unit(if inputs[i] { lit } else { !lit });
            }
            builder.add_unit(root_lit);
            let cnf = builder.into_cnf();
            let satisfiable = brute_force_sat(&cnf);
            assert_eq!(
                satisfiable, expected,
                "assignment {assignment:b}: encoding disagrees with evaluation"
            );
        }
    }

    fn brute_force_sat(cnf: &crate::Cnf) -> bool {
        let n = cnf.num_vars;
        assert!(n <= 20, "brute force limited to small formulas");
        (0..(1u64 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            cnf.evaluate(&assignment)
        })
    }

    #[test]
    fn encodes_single_and_gate() {
        let mut aig = Aig::new();
        let a = aig::Lit::positive(aig.add_input());
        let b = aig::Lit::positive(aig.add_input());
        let g = aig.and(a, b);
        check_equivalence(&aig, g);
        check_equivalence(&aig, !g);
    }

    #[test]
    fn encodes_xor_cone() {
        let mut aig = Aig::new();
        let a = aig::Lit::positive(aig.add_input());
        let b = aig::Lit::positive(aig.add_input());
        let x = aig.xor(a, b);
        check_equivalence(&aig, x);
    }

    #[test]
    fn encodes_mux_cone() {
        let mut aig = Aig::new();
        let s = aig::Lit::positive(aig.add_input());
        let a = aig::Lit::positive(aig.add_input());
        let b = aig::Lit::positive(aig.add_input());
        let m = aig.mux(s, a, b);
        check_equivalence(&aig, m);
    }

    #[test]
    fn encodes_constant_root() {
        let aig = Aig::new();
        let mut builder = CnfBuilder::new();
        let mut cache = HashMap::new();
        let t = encode_cone(
            &mut builder,
            &aig,
            aig::Lit::TRUE,
            &mut cache,
            &mut |_, _| unreachable!(),
        );
        builder.add_unit(t);
        assert!(brute_force_sat(&builder.clone().into_cnf()));
        let mut builder2 = CnfBuilder::new();
        let mut cache2 = HashMap::new();
        let f = encode_cone(
            &mut builder2,
            &aig,
            aig::Lit::FALSE,
            &mut cache2,
            &mut |_, _| unreachable!(),
        );
        builder2.add_unit(f);
        assert!(!brute_force_sat(&builder2.into_cnf()));
    }

    #[test]
    fn cache_shares_common_subcones() {
        let mut aig = Aig::new();
        let a = aig::Lit::positive(aig.add_input());
        let b = aig::Lit::positive(aig.add_input());
        let g = aig.and(a, b);
        let h = aig.or(g, a);
        let mut builder = CnfBuilder::new();
        let vars: Vec<Lit> = (0..2).map(|_| builder.new_lit()).collect();
        let mut cache = HashMap::new();
        let mut leaf = |_: &mut CnfBuilder, id: aig::NodeId| match aig.node(id) {
            aig::AigNode::Input { index } => vars[index],
            _ => unreachable!(),
        };
        let _ = encode_cone(&mut builder, &aig, g, &mut cache, &mut leaf);
        let clauses_after_first = builder.num_clauses();
        let _ = encode_cone(&mut builder, &aig, h, &mut cache, &mut leaf);
        // The second cone re-uses the AND gate already encoded, so it adds at
        // most the clauses of the extra OR structure.
        assert!(builder.num_clauses() > clauses_after_first);
        assert!(builder.num_clauses() <= clauses_after_first + 3);
    }
}
