//! Unbounded model-checking engines from *Interpolation Sequences
//! Revisited* (Cabodi, Nocco, Quer — DATE 2011).
//!
//! This crate is the paper's primary contribution, rebuilt on top of the
//! substrates of the workspace (AIG circuits, partitioned CNF unrolling, a
//! proof-logging CDCL solver, Craig interpolation and BDDs):
//!
//! * [`engines::bmc`] — plain bounded model checking with the *bound-k*,
//!   *exact-k* and *exact-assume-k* formulations (Section II-A / III),
//! * [`engines::itp`] — McMillan-style standard interpolation
//!   (`ITPVERIF`, Fig. 1),
//! * [`engines::itpseq`] — parallel interpolation sequences
//!   (`ITPSEQVERIF`, Fig. 2),
//! * [`engines::sitpseq`] — serial interpolation sequences
//!   (`SITPSEQ`, Fig. 4, Definition 3),
//! * [`engines::itpseq_cba`] — serial interpolation sequences tightly
//!   integrated with counterexample-based abstraction
//!   (`ITPSEQCBAVERIF`, Fig. 5),
//! * [`engines::pdr`] — IC3/property-directed reachability, the
//!   post-2011 competitor every modern checker ships, included for
//!   head-to-head comparisons against the paper's engines,
//! * [`engines::portfolio`] — the racing portfolio ([`Engine::Portfolio`]):
//!   PDR, ITPSEQCBA and BMC run concurrently per property, the first
//!   conclusive verdict wins and the losers are cancelled through
//!   [`CancelToken`]s,
//! * [`multi`] — multi-property verification ([`verify_all`] /
//!   [`Engine::verify_all`]): amortized multi-BMC and multi-PDR backends
//!   plus a COI-grouping property scheduler, with per-property statuses
//!   bit-identical in kind and counterexample depth to the per-property
//!   loop.
//!
//! All engines return an [`EngineResult`] carrying the verdict together
//! with the depth statistics `(k_fp, j_fp)` the paper's Table I reports
//! (for PDR, `k_fp` is the convergence level and `j_fp` the frame at
//! which the trace reached its fixpoint).
//!
//! Every engine also exposes a `verify_with_cancel` entry point taking a
//! [`CancelToken`]; with [`Options::threads`] above 1, PDR additionally
//! parallelizes its per-frame propagation queries and generalization
//! candidates across worker threads without changing verdict kinds or
//! counterexample depths (see [`engines::pdr`] for the precise
//! determinism contract).
//!
//! # Example
//!
//! ```
//! use mc::{Engine, Options, Verdict};
//!
//! // A 3-bit saturating counter that can never reach 7 because it resets
//! // at 5: the property "counter != 7" holds.
//! let mut aig = aig::Aig::new();
//! let (ids, bits) = aig::builder::latch_word(&mut aig, 3, 0);
//! let at5 = aig::builder::word_equals_const(&mut aig, &bits, 5);
//! let inc = aig::builder::word_increment(&mut aig, &bits, aig::Lit::TRUE);
//! let zero = aig::builder::word_const(3, 0);
//! let next = aig::builder::word_mux(&mut aig, at5, &zero, &inc);
//! for (id, n) in ids.iter().zip(next.iter()) {
//!     aig.set_next(*id, *n);
//! }
//! let bad = aig::builder::word_equals_const(&mut aig, &bits, 7);
//! aig.add_bad(bad);
//!
//! let result = Engine::ItpSeq.verify(&aig, 0, &Options::default());
//! assert!(matches!(result.verdict, Verdict::Proved { .. }));
//! ```

pub mod abstraction;
pub mod certificate;
pub mod engines;
pub mod multi;
pub mod pipeline;
pub mod state;
mod types;

pub use certificate::{CertRecord, Certificate, InvariantCert, InvariantCone};
pub use engines::{bmc, itp, itpseq, itpseq_cba, pdr, portfolio, sitpseq, CancelToken};
pub use multi::verify_all;
pub use pipeline::{prepare, prepare_property, Prepared};
pub use sat::{FaultKind, FaultPlan, FaultSite, MemoryBudget};
pub use telemetry::Telemetry;
pub use types::{
    Engine, EngineResult, EngineStats, MultiResult, Options, PropertyStatus, StopReason, Verdict,
};
