//! Demonstrates when counterexample-based abstraction pays off: an
//! "industrial-like" design whose property depends on a handful of latches
//! buried inside a much larger circuit.
//!
//! Run with `cargo run --example abstraction_payoff --release`.

use itpseq::mc::{Engine, Options};
use itpseq::workloads::industrial::{pipeline, IndustrialParams};

fn main() {
    let design = pipeline(IndustrialParams {
        counter_bits: 4,
        modulus: 10,
        bad_at: 12,
        pipeline_depth: 4,
        payload_latches: 40,
        seed: 3,
    });
    println!(
        "design: {} — {} latches, {} inputs, {} AND gates",
        design.name(),
        design.num_latches(),
        design.num_inputs(),
        design.num_ands()
    );
    let options = Options::default();

    for engine in [Engine::ItpSeq, Engine::SerialItpSeq, Engine::ItpSeqCba] {
        let result = engine.verify(&design, 0, &options);
        println!(
            "  {:<9} -> {:<26} visible latches: {:>3}/{:<3}  refinements: {:>2}  sat calls: {:>3}  {:.1} ms",
            engine.name(),
            result.verdict.to_string(),
            result.stats.visible_latches,
            design.num_latches(),
            result.stats.refinements,
            result.stats.sat_calls,
            result.stats.time.as_secs_f64() * 1e3
        );
    }
    println!(
        "ITPSEQCBA proves the property while keeping most of the design abstracted away,\n\
         which is exactly the effect Section V of the paper describes."
    );
}
