//! Cycle-accurate simulation of sequential AIGs.
//!
//! Simulation is used for two purposes in the reproduction: validating the
//! synthetic workloads (known-failing properties must actually fail on some
//! concrete input sequence) and replaying counterexamples produced by the
//! model-checking engines.

use crate::{Aig, AigNode};

/// The value trace produced by [`simulate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimTrace {
    /// `latches[t][i]` is the value of latch `i` at the start of cycle `t`.
    pub latches: Vec<Vec<bool>>,
    /// `bad[t][j]` is the value of bad-state literal `j` during cycle `t`.
    pub bad: Vec<Vec<bool>>,
    /// `outputs[t][j]` is the value of output `j` during cycle `t`.
    pub outputs: Vec<Vec<bool>>,
}

impl SimTrace {
    /// Returns the first cycle in which any bad-state literal is asserted,
    /// or `None` when the property holds throughout the trace.
    pub fn first_failure(&self) -> Option<usize> {
        self.bad.iter().position(|cycle| cycle.iter().any(|&b| b))
    }
}

/// Simulates the design for `inputs.len()` cycles starting from the reset
/// state.
///
/// `inputs[t][i]` is the value driven on primary input `i` during cycle `t`.
///
/// # Panics
///
/// Panics if any input vector is shorter than the number of primary inputs.
pub fn simulate(aig: &Aig, inputs: &[Vec<bool>]) -> SimTrace {
    let mut state: Vec<bool> = (0..aig.num_latches()).map(|i| aig.init(i)).collect();
    let mut trace = SimTrace {
        latches: Vec::with_capacity(inputs.len()),
        bad: Vec::with_capacity(inputs.len()),
        outputs: Vec::with_capacity(inputs.len()),
    };
    for frame in inputs {
        assert!(
            frame.len() >= aig.num_inputs(),
            "input vector narrower than the number of primary inputs"
        );
        let values = evaluate_frame(aig, frame, &state);
        trace.latches.push(state.clone());
        trace.bad.push(
            aig.bad_lits()
                .map(|l| values[l.node() as usize] ^ l.is_complemented())
                .collect(),
        );
        trace.outputs.push(
            aig.outputs()
                .map(|l| values[l.node() as usize] ^ l.is_complemented())
                .collect(),
        );
        // Advance the state.
        state = (0..aig.num_latches())
            .map(|i| {
                let next = aig.next(i);
                values[next.node() as usize] ^ next.is_complemented()
            })
            .collect();
    }
    trace
}

/// Evaluates all nodes for one clock cycle; returns the positive-phase value
/// of every node.
fn evaluate_frame(aig: &Aig, inputs: &[bool], latches: &[bool]) -> Vec<bool> {
    let mut values = vec![false; aig.num_nodes()];
    for id in aig.node_ids() {
        values[id as usize] = match aig.node(id) {
            AigNode::Const => false,
            AigNode::Input { index } => inputs[index],
            AigNode::Latch { index } => latches[index],
            AigNode::And { left, right } => {
                let l = values[left.node() as usize] ^ left.is_complemented();
                let r = values[right.node() as usize] ^ right.is_complemented();
                l && r
            }
        };
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{latch_word, word_equals_const, word_increment};
    use crate::{Aig, Lit};

    /// A 3-bit free-running counter with a bad state at a given value.
    fn counter(bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, lits) = latch_word(&mut aig, 3, 0);
        let next = word_increment(&mut aig, &lits, Lit::TRUE);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &lits, bad_at);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn counter_reaches_bad_state_at_expected_cycle() {
        let aig = counter(5);
        let inputs = vec![vec![]; 10];
        let trace = simulate(&aig, &inputs);
        assert_eq!(trace.first_failure(), Some(5));
    }

    #[test]
    fn counter_wraps_around() {
        let aig = counter(2);
        let inputs = vec![vec![]; 12];
        let trace = simulate(&aig, &inputs);
        // Failure at cycle 2 and again at cycle 10 after wrap-around.
        assert!(trace.bad[2][0]);
        assert!(trace.bad[10][0]);
        assert_eq!(trace.first_failure(), Some(2));
    }

    #[test]
    fn trace_records_initial_state() {
        let aig = counter(7);
        let trace = simulate(&aig, &[vec![], vec![]]);
        assert_eq!(trace.latches[0], vec![false, false, false]);
        assert_eq!(trace.latches[1], vec![true, false, false]);
    }

    #[test]
    fn inputs_drive_combinational_outputs() {
        let mut aig = Aig::new();
        let a = Lit::positive(aig.add_input());
        let b = Lit::positive(aig.add_input());
        let o = aig.xor(a, b);
        aig.add_output(o);
        let trace = simulate(
            &aig,
            &[vec![false, false], vec![true, false], vec![true, true]],
        );
        assert_eq!(trace.outputs[0], vec![false]);
        assert_eq!(trace.outputs[1], vec![true]);
        assert_eq!(trace.outputs[2], vec![false]);
        assert_eq!(trace.first_failure(), None);
    }

    #[test]
    fn empty_input_sequence_gives_empty_trace() {
        let aig = counter(1);
        let trace = simulate(&aig, &[]);
        assert!(trace.latches.is_empty());
        assert_eq!(trace.first_failure(), None);
    }
}
