//! Resolution proofs produced by the solver.
//!
//! The proof is a DAG of clauses.  Leaves are the original clauses (with
//! their interpolation partition); internal nodes are learned clauses, each
//! carrying the *trivial resolution chain* by which conflict analysis
//! derived it; the root is the empty clause, derived by the final chain.
//!
//! A chain `(start, [(v₁, c₁), (v₂, c₂), …])` denotes the linear resolution
//! `((start ⊗_{v₁} c₁) ⊗_{v₂} c₂) ⊗ …` where `⊗_v` resolves on variable
//! `v`.  Chains reference clauses by their index in [`Proof::clauses`].

use cnf::{Lit, Var};

/// Index of a clause inside a [`Proof`].
pub type ProofClauseId = usize;

/// A linear resolution chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chain {
    /// The clause the chain starts from.
    pub start: ProofClauseId,
    /// Successive resolution steps: `(pivot variable, antecedent clause)`.
    pub steps: Vec<(Var, ProofClauseId)>,
}

/// Where a proof clause comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClauseOrigin {
    /// An input clause, tagged with its interpolation partition
    /// (1-based; 0 means "outside every partition").
    Original {
        /// The partition index assigned when the clause was added.
        partition: u32,
    },
    /// A clause learned by conflict analysis, derived by `chain`.
    Learned {
        /// The resolution chain deriving this clause.
        chain: Chain,
    },
}

/// A single clause of the proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofClause {
    /// The literals of the clause.
    pub lits: Vec<Lit>,
    /// Leaf (original) or derived (learned).
    pub origin: ClauseOrigin,
}

impl ProofClause {
    /// Returns `true` for input clauses.
    pub fn is_original(&self) -> bool {
        matches!(self.origin, ClauseOrigin::Original { .. })
    }

    /// Returns the partition of an original clause, or `None` for learned
    /// clauses.
    pub fn partition(&self) -> Option<u32> {
        match self.origin {
            ClauseOrigin::Original { partition } => Some(partition),
            ClauseOrigin::Learned { .. } => None,
        }
    }
}

/// A complete refutation proof.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Proof {
    /// All clauses, original and learned, in the order the solver created
    /// them (chains only ever reference earlier clauses).
    pub clauses: Vec<ProofClause>,
    /// The chain deriving the empty clause.  `None` only for proofs of
    /// formulas that were never refuted (which the solver never returns).
    pub empty_clause_chain: Option<Chain>,
}

impl Proof {
    /// Number of original (leaf) clauses.
    pub fn num_original(&self) -> usize {
        self.clauses.iter().filter(|c| c.is_original()).count()
    }

    /// Number of learned clauses.
    pub fn num_learned(&self) -> usize {
        self.clauses.len() - self.num_original()
    }

    /// Returns the largest partition index appearing on any original clause.
    pub fn num_partitions(&self) -> u32 {
        self.clauses
            .iter()
            .filter_map(|c| c.partition())
            .max()
            .unwrap_or(0)
    }

    /// Replays a resolution chain and returns the resulting clause literals
    /// (sorted and deduplicated).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description when a step's pivot does not
    /// occur with opposite phases in the two operands, which would make the
    /// chain invalid.
    pub fn replay_chain(&self, chain: &Chain) -> Result<Vec<Lit>, String> {
        let mut current: Vec<Lit> = self.clauses[chain.start].lits.clone();
        current.sort_unstable();
        current.dedup();
        for &(pivot, antecedent) in &chain.steps {
            let other = &self.clauses[antecedent].lits;
            let pos = Lit::positive(pivot);
            let neg = Lit::negative(pivot);
            let in_current_pos = current.contains(&pos);
            let in_current_neg = current.contains(&neg);
            let in_other_pos = other.contains(&pos);
            let in_other_neg = other.contains(&neg);
            let ok = (in_current_pos && in_other_neg) || (in_current_neg && in_other_pos);
            if !ok {
                return Err(format!(
                    "pivot {pivot:?} does not occur with opposite phases in operands"
                ));
            }
            current.retain(|&l| l.var() != pivot);
            for &l in other {
                if l.var() != pivot && !current.contains(&l) {
                    current.push(l);
                }
            }
            current.sort_unstable();
        }
        Ok(current)
    }

    /// Checks the whole proof: every learned clause must be derivable by its
    /// chain (the replayed clause must be a subset of the recorded one), and
    /// the final chain must derive the empty clause.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn check(&self) -> Result<(), String> {
        for (id, clause) in self.clauses.iter().enumerate() {
            if let ClauseOrigin::Learned { chain } = &clause.origin {
                if chain.start >= id || chain.steps.iter().any(|&(_, c)| c >= id) {
                    return Err(format!("clause {id} references a later clause"));
                }
                let derived = self.replay_chain(chain)?;
                let mut recorded: Vec<Lit> = clause.lits.clone();
                recorded.sort_unstable();
                recorded.dedup();
                if !derived.iter().all(|l| recorded.contains(l)) {
                    return Err(format!(
                        "clause {id}: derived clause {derived:?} is not a subset of recorded {recorded:?}"
                    ));
                }
            }
        }
        match &self.empty_clause_chain {
            None => Err("proof has no final chain".to_string()),
            Some(chain) => {
                let derived = self.replay_chain(chain)?;
                if derived.is_empty() {
                    Ok(())
                } else {
                    Err(format!(
                        "final chain derives {derived:?}, not the empty clause"
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, neg: bool) -> Lit {
        Lit::new(Var::new(v), neg)
    }

    /// Hand-built proof of UNSAT for {a, ¬a ∨ b, ¬b}.
    fn tiny_proof() -> Proof {
        Proof {
            clauses: vec![
                ProofClause {
                    lits: vec![lit(0, false)],
                    origin: ClauseOrigin::Original { partition: 1 },
                },
                ProofClause {
                    lits: vec![lit(0, true), lit(1, false)],
                    origin: ClauseOrigin::Original { partition: 1 },
                },
                ProofClause {
                    lits: vec![lit(1, true)],
                    origin: ClauseOrigin::Original { partition: 2 },
                },
            ],
            empty_clause_chain: Some(Chain {
                start: 2,
                steps: vec![(Var::new(1), 1), (Var::new(0), 0)],
            }),
        }
    }

    #[test]
    fn replay_of_valid_chain_gives_empty_clause() {
        let proof = tiny_proof();
        let chain = proof.empty_clause_chain.clone().unwrap();
        assert_eq!(proof.replay_chain(&chain).unwrap(), vec![]);
        assert!(proof.check().is_ok());
    }

    #[test]
    fn replay_detects_bad_pivot() {
        let proof = tiny_proof();
        let bad = Chain {
            start: 0,
            steps: vec![(Var::new(1), 2)],
        };
        assert!(proof.replay_chain(&bad).is_err());
    }

    #[test]
    fn counts_are_consistent() {
        let proof = tiny_proof();
        assert_eq!(proof.num_original(), 3);
        assert_eq!(proof.num_learned(), 0);
        assert_eq!(proof.num_partitions(), 2);
    }

    #[test]
    fn check_rejects_missing_final_chain() {
        let mut proof = tiny_proof();
        proof.empty_clause_chain = None;
        assert!(proof.check().is_err());
    }

    #[test]
    fn check_rejects_forward_references() {
        let mut proof = tiny_proof();
        proof.clauses.push(ProofClause {
            lits: vec![],
            origin: ClauseOrigin::Learned {
                chain: Chain {
                    start: 5,
                    steps: vec![],
                },
            },
        });
        assert!(proof.check().is_err());
    }
}
