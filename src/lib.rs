//! Umbrella crate of the *Interpolation Sequences Revisited* (DATE 2011)
//! reproduction.
//!
//! Re-exports every workspace crate under a single dependency so that
//! examples, integration tests and downstream users can write
//! `use itpseq::mc::Engine` without tracking the individual crates:
//!
//! * [`aig`] — sequential circuits as And-Inverter Graphs,
//! * [`cnf`] — partitioned CNF, Tseitin encoding and BMC unrolling,
//! * [`sat`] — the proof-logging CDCL solver, with activation-literal
//!   clause retirement for incremental engines,
//! * [`itp`] — Craig interpolants and interpolation sequences,
//! * [`bdd`] — exact reachability and circuit diameters,
//! * [`mc`] — the verification engines: the paper's ITP, ITPSEQ, SITPSEQ
//!   and ITPSEQCBA plus an IC3/PDR competitor,
//! * [`telemetry`] — structured span/event tracing with JSONL and
//!   Chrome-trace export,
//! * [`workloads`] — the synthetic benchmark suite.
//!
//! # Quick start
//!
//! ```
//! use itpseq::mc::{Engine, Options, Verdict};
//!
//! let design = itpseq::workloads::counter::modular(3, 6, 7);
//! let result = Engine::ItpSeqCba.verify(&design, 0, &Options::default());
//! assert!(matches!(result.verdict, Verdict::Proved { .. }));
//! ```

pub use aig;
pub use bdd;
pub use cnf;
pub use itp;
pub use mc;
pub use sat;
pub use telemetry;
pub use workloads;
