//! Cross-checks of the incremental unrolling cache against the scratch
//! path: the cached engines must report the same verdicts, counterexample
//! depths and SAT-call counts as per-bound rebuilds, and an
//! [`IncrementalUnroller`](itpseq::cnf::IncrementalUnroller) grown to `k`
//! must be equisatisfiable with an
//! [`Unroller`](itpseq::cnf::Unroller) built at `k` from scratch.

use itpseq::cnf::{BmcCheck, IncrementalUnroller, Unroller};
use itpseq::mc::{Engine, Options, Verdict};
use itpseq::sat::{SolveResult, Solver};
use proptest::prelude::*;
use std::time::Duration;

fn options(check: BmcCheck) -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(10))
        .with_max_bound(40)
        .with_check(check)
}

/// Small designs for which exhaustive cross-checks are cheap.
fn small_designs() -> Vec<itpseq::workloads::Benchmark> {
    itpseq::workloads::suite::mid_size()
        .into_iter()
        .filter(|b| b.aig.num_latches() <= 10)
        .collect()
}

/// The pre-cache BMC reference: a fresh unroller and a fresh solver at
/// every bound.
fn scratch_bmc(aig: &itpseq::aig::Aig, options: &Options) -> (Verdict, u64) {
    let mut sat_calls = 0u64;
    // Depth-0 check.
    let mut unroller = Unroller::new(aig);
    unroller.assert_initial(0);
    let bad = unroller.bad_lit(0, 0);
    unroller.assert_lit(bad);
    let mut solver = Solver::new();
    solver.add_cnf(&unroller.into_cnf());
    sat_calls += 1;
    if solver.solve() == SolveResult::Sat {
        return (Verdict::Falsified { depth: 0 }, sat_calls);
    }
    for k in 1..=options.max_bound {
        let instance = itpseq::cnf::bmc::build(aig, 0, k, options.check);
        let mut solver = Solver::new();
        solver.add_cnf(&instance.cnf);
        sat_calls += 1;
        if solver.solve() == SolveResult::Sat {
            return (Verdict::Falsified { depth: k }, sat_calls);
        }
    }
    (
        Verdict::Inconclusive {
            reason: itpseq::mc::StopReason::BoundExhausted,
            bound_reached: options.max_bound,
        },
        sat_calls,
    )
}

/// The incremental BMC engine must agree with the per-bound scratch
/// rebuild — verdict, counterexample depth and SAT-call count — on the
/// whole engine-agreement suite, for every target formulation.
#[test]
fn incremental_bmc_matches_scratch_on_the_suite() {
    for benchmark in small_designs() {
        for check in [BmcCheck::Bound, BmcCheck::Exact, BmcCheck::ExactAssume] {
            let options = options(check);
            let incremental = Engine::Bmc.verify(&benchmark.aig, 0, &options);
            let (scratch_verdict, scratch_calls) = scratch_bmc(&benchmark.aig, &options);
            assert_eq!(
                incremental.verdict, scratch_verdict,
                "{} with {check:?}",
                benchmark.name
            );
            assert_eq!(
                incremental.stats.sat_calls, scratch_calls,
                "{} with {check:?}",
                benchmark.name
            );
        }
    }
}

/// The sequence engines run their bound loop on the unrolling cache; their
/// verdicts (including `k_fp`/`j_fp`, which depend on the exact refutation
/// proofs) must be unchanged, so they must still agree with BMC's
/// counterexample depths everywhere BMC falsifies.
#[test]
fn cached_sequence_engines_agree_with_bmc_depths() {
    for benchmark in small_designs() {
        let bmc = Engine::Bmc.verify(&benchmark.aig, 0, &options(BmcCheck::ExactAssume));
        if let Verdict::Falsified { depth } = bmc.verdict {
            for engine in [Engine::ItpSeq, Engine::SerialItpSeq, Engine::ItpSeqCba] {
                for check in [BmcCheck::Exact, BmcCheck::ExactAssume] {
                    let result = engine.verify(&benchmark.aig, 0, &options(check));
                    assert_eq!(
                        result.verdict,
                        Verdict::Falsified { depth },
                        "{} on {} with {check:?}",
                        engine.name(),
                        benchmark.name
                    );
                }
            }
        }
    }
}

/// Engine-level O(K) acceptance check: across a `max_bound = K` BMC run
/// on a safe design, the clauses handed to the solver grow linearly in K
/// (the scratch path grew quadratically).
#[test]
fn bmc_encoding_volume_is_linear_in_the_bound() {
    let benchmark = small_designs()
        .into_iter()
        .find(|b| b.expect_fail == Some(false))
        .expect("the suite has safe designs");
    let run = |bound: usize| {
        let result = Engine::Bmc.verify(
            &benchmark.aig,
            0,
            &options(BmcCheck::ExactAssume).with_max_bound(bound),
        );
        assert!(!result.verdict.is_conclusive());
        result.stats.clauses_encoded
    };
    let (half, full) = (run(15), run(30));
    assert!(
        full < 2 * half,
        "doubling the bound must at most double the encoding volume \
         ({half} clauses at K=15, {full} at K=30)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An incremental unroller grown frame by frame to `k` is
    /// equisatisfiable with a scratch unroller built at `k`, with the
    /// initial states asserted and the bad literal as the target.
    #[test]
    fn grown_unroller_equisatisfiable_with_scratch(
        modulus in 2u64..8,
        // The design uses a 3-bit word: `word_equals_const` truncates the
        // compared constant, so bad_at must stay within the word.
        bad_at in 0u64..8,
        k in 1usize..7,
    ) {
        let design = itpseq::workloads::counter::modular(3, modulus, bad_at);

        let mut incremental = IncrementalUnroller::new(&design);
        incremental.assert_initial(0);
        for f in 1..=k {
            incremental.add_frame();
            // Drain mid-growth, as the engine does; the snapshot below
            // must still cover everything.
            incremental.mark_drained();
            prop_assert_eq!(incremental.num_frames(), f + 1);
        }
        let bad = incremental.bad_lit(k, 0);
        let cached = incremental.snapshot_with([itpseq::cnf::Clause::new(vec![bad], 0)]);

        let mut scratch = Unroller::new(&design);
        scratch.assert_initial(0);
        for _ in 1..=k {
            scratch.add_frame();
        }
        let bad = scratch.bad_lit(k, 0);
        scratch.assert_lit(bad);
        let reference = scratch.into_cnf();

        let mut cached_solver = Solver::new();
        cached_solver.add_cnf(&cached);
        let mut reference_solver = Solver::new();
        reference_solver.add_cnf(&reference);
        let cached_sat = cached_solver.solve() == SolveResult::Sat;
        let reference_sat = reference_solver.solve() == SolveResult::Sat;
        prop_assert_eq!(cached_sat, reference_sat);
        // Both must also agree with the arithmetic truth: the counter is
        // deterministic, so its value at step k is exactly k mod modulus.
        let expected = k as u64 % modulus == bad_at;
        prop_assert_eq!(cached_sat, expected);
    }
}
