//! SAT-core microbenchmarks: the numbers the clause-arena overhaul moves.
//!
//! Three shapes, mirroring how the engines use the solver:
//!
//! * `php7_refutation` — one hard proof-logging refutation (conflict
//!   analysis, minimization and pinned-clause reduction all hot),
//! * `php7_no_proof` — the same search without proof logging, the
//!   configuration the IC3/PDR and incremental-BMC solvers run in; the
//!   gap between the two is the price of chain recording,
//! * `reduction_on/off` — an easier instance solved with and without
//!   learned-clause database reduction, pinning the cost/benefit of the
//!   reduction schedule itself,
//! * `incremental_retire` — a PDR-shaped workload: thousands of short
//!   queries with retirable clauses on one long-lived
//!   [`IncrementalSolver`], exercising the retirement sweep and the
//!   arena's compacting garbage collector.
//!
//! Baseline (pre-arena `Vec<ClauseData>` solver, same machine, PR 4 dev
//! notes): `sat/pigeonhole6_refutation` in the `micro` bench went from
//! ~7.2 ms to ~6.1 ms, and the `table1 --suite smoke` wall clock from
//! ~2.24 s to ~1.90 s.

use criterion::{criterion_group, criterion_main, Criterion};
use sat::{IncrementalSolver, Lit, SolveResult, Solver, Var};

fn pigeonhole(solver: &mut Solver, holes: usize) {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
    solver.ensure_vars((pigeons * holes) as u32);
    for p in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|h| Lit::positive(var(p, h))).collect();
        solver.add_clause(clause, 1);
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                solver.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))], 2);
            }
        }
    }
}

fn refutation_with_proof(c: &mut Criterion) {
    c.bench_function("fig_sat/php7_refutation", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            pigeonhole(&mut solver, 7);
            assert_eq!(solver.solve(), SolveResult::Unsat);
            solver.proof().expect("proof").num_learned()
        })
    });
}

fn refutation_without_proof(c: &mut Criterion) {
    c.bench_function("fig_sat/php7_no_proof", |b| {
        b.iter(|| {
            let mut solver = Solver::new();
            solver.set_proof_logging(false);
            pigeonhole(&mut solver, 7);
            assert_eq!(solver.solve(), SolveResult::Unsat);
            solver.stats().conflicts
        })
    });
}

fn reduction_ablation(c: &mut Criterion) {
    for (name, interval) in [
        ("fig_sat/php6_reduction_on", Some(sat::DEFAULT_REDUCE_FIRST)),
        ("fig_sat/php6_reduction_off", None),
    ] {
        c.bench_function(name, |b| {
            b.iter(|| {
                let mut solver = Solver::new();
                solver.set_proof_logging(false);
                solver.set_reduce_interval(interval);
                pigeonhole(&mut solver, 6);
                assert_eq!(solver.solve(), SolveResult::Unsat);
                solver.stats().conflicts
            })
        });
    }
}

/// PDR-shaped incremental load: one long-lived solver, thousands of
/// short-lived retirable clauses, constant retiring.
fn incremental_retire(c: &mut Criterion) {
    c.bench_function("fig_sat/incremental_retire", |b| {
        b.iter(|| {
            let mut solver = IncrementalSolver::new();
            let vars: Vec<Lit> = (0..24).map(|_| Lit::positive(solver.new_var())).collect();
            for w in vars.windows(2) {
                solver.add_clause([!w[0], w[1]]);
            }
            let mut sat_answers = 0u32;
            for round in 0..2000 {
                let x = vars[round % vars.len()];
                let y = vars[(round * 7 + 3) % vars.len()];
                let guard = solver.add_retirable_clause([!x, !y]);
                if solver.solve(&[x]) == SolveResult::Sat {
                    sat_answers += 1;
                }
                solver.retire(guard);
            }
            sat_answers
        })
    });
}

criterion_group!(
    benches,
    refutation_with_proof,
    refutation_without_proof,
    reduction_ablation,
    incremental_retire
);
criterion_main!(benches);
