//! Trace-report contract tests: the span-tree analytics over recorded
//! engine runs.
//!
//! * the structural aggregates of a `threads = 1` run are identical
//!   across repeats (the property the CI baseline gate builds on);
//! * per-track self times sum to the track's busy time and never exceed
//!   its wall time, and the folded flamegraph export balances to the
//!   same totals;
//! * portfolio wasted work equals the run-span totals of the losing
//!   entrants;
//! * `progress` heartbeat instants carry the engine's current bound;
//! * a baseline extracted from a run gates that same run clean, and the
//!   JSONL round trip preserves the report exactly.

use itpseq::mc::{Engine, Options, Telemetry};
use itpseq::telemetry::folded::write_folded;
use itpseq::telemetry::report::{Baseline, TraceReport};
use itpseq::telemetry::{ArgValue, Event, EventKind, MemorySink};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

fn options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(20))
        .with_max_bound(40)
}

fn counter(bad_at: u64) -> itpseq::aig::Aig {
    itpseq::workloads::counter::modular(4, 10, bad_at)
}

/// Runs `engine` with a fresh recording sink and returns the events.
fn record(engine: Engine, aig: &itpseq::aig::Aig, options: &Options) -> Vec<Event> {
    let sink = Arc::new(MemorySink::new());
    let traced = options.clone().with_telemetry(Telemetry::new(sink.clone()));
    let _ = engine.verify(aig, 0, &traced);
    sink.snapshot()
}

/// The time-free projection of a report: everything the baseline gate
/// may rely on (wall-clock fields are machine noise, all else repeats).
fn structure(report: &TraceReport) -> Vec<String> {
    let mut out: Vec<String> = report
        .spans
        .iter()
        .map(|s| format!("span:{}:{}:{}", s.track, s.name, s.count))
        .collect();
    out.extend(report.counters.iter().map(|c| {
        format!(
            "counter:{}:{}.{}:{}:{}",
            c.track, c.name, c.key, c.samples, c.total
        )
    }));
    out.extend(
        report
            .tracks
            .iter()
            .map(|t| format!("track:{}:{}:{}:{}", t.track, t.events, t.spans, t.unclosed)),
    );
    out
}

#[test]
fn report_structure_is_deterministic_across_repeats() {
    for engine in [Engine::Bmc, Engine::ItpSeq, Engine::Pdr] {
        let aig = counter(12);
        // A tiny probe interval forces counter samples and heartbeats even
        // on this small design; at threads = 1 they fire at the exact same
        // conflict counts every run.
        let options = options().with_probe_interval(16);
        let reference = structure(&TraceReport::from_events(&record(engine, &aig, &options)));
        assert!(!reference.is_empty(), "{engine:?}: aggregates must exist");
        for _ in 0..2 {
            let again = structure(&TraceReport::from_events(&record(engine, &aig, &options)));
            assert_eq!(reference, again, "{engine:?}: aggregates must repeat");
        }
    }
}

#[test]
fn self_times_balance_against_track_walls_and_folded_export() {
    let events = record(Engine::ItpSeq, &counter(12), &options());
    let report = TraceReport::from_events(&events);
    assert!(report.total_events > 0);

    // Per track: Σ self == busy (telescoping) and busy <= wall.
    for track in &report.tracks {
        assert_eq!(track.unclosed, 0, "{}: clean trace", track.track);
        let self_sum: u64 = report
            .spans
            .iter()
            .filter(|s| s.track == track.track)
            .map(|s| s.self_us)
            .sum();
        assert_eq!(
            self_sum, track.busy_us,
            "{}: self times telescope",
            track.track
        );
        assert!(
            track.busy_us <= track.wall_us,
            "{}: busy {} exceeds wall {}",
            track.track,
            track.busy_us,
            track.wall_us
        );
    }

    // The folded export balances to the identical per-track totals.
    let mut folded = Vec::new();
    write_folded(&events, &mut folded).expect("vec write");
    let folded = String::from_utf8(folded).expect("utf8");
    assert!(!folded.trim().is_empty(), "folded output must not be empty");
    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("stack and weight");
        let track = stack.split(';').next().expect("track frame");
        *weights.entry(track.to_string()).or_default() +=
            weight.parse::<u64>().expect("numeric weight");
    }
    for track in &report.tracks {
        assert_eq!(
            weights.get(&track.track).copied().unwrap_or(0),
            track.busy_us,
            "{}: folded weights must sum to the track's busy time",
            track.track
        );
    }
}

#[test]
fn portfolio_wasted_work_sums_losing_entrant_runs() {
    let events = record(Engine::Portfolio, &counter(12), &options());
    let report = TraceReport::from_events(&events);
    let portfolio = report.portfolio.as_ref().expect("a race was recorded");
    assert_eq!(portfolio.races, 1);
    assert_eq!(portfolio.decided, 1);

    let run_total = |entrant: &str| {
        report
            .spans
            .iter()
            .find(|s| s.track == entrant && s.name == format!("{entrant}.run"))
            .map_or(0, |s| s.total_us)
    };
    let winners: Vec<&str> = portfolio
        .entrants
        .iter()
        .filter(|e| e.wins > 0)
        .map(|e| e.entrant.as_str())
        .collect();
    assert_eq!(winners.len(), 1, "exactly one entrant wins");
    let losing_total: u64 = portfolio
        .entrants
        .iter()
        .filter(|e| e.wins == 0)
        .map(|e| run_total(&e.entrant))
        .sum();
    assert_eq!(
        portfolio.wasted_us, losing_total,
        "wasted work is exactly the losing entrants' run spans"
    );
    assert_eq!(portfolio.winner_us, run_total(winners[0]));
    for entrant in &portfolio.entrants {
        assert_eq!(entrant.runs, 1, "{}: one run in one race", entrant.entrant);
        assert_eq!(entrant.busy_us, run_total(&entrant.entrant));
    }
}

#[test]
fn heartbeats_carry_the_current_bound() {
    // The plain counter unrolls into pure unit propagation, so the
    // conflict-driven probe needs a design with actual search: the
    // industrial pipeline has free inputs and payload logic.
    let aig =
        itpseq::workloads::industrial::pipeline(itpseq::workloads::industrial::IndustrialParams {
            payload_latches: 48,
            ..Default::default()
        });
    let options = options().with_probe_interval(1);
    let events = record(Engine::Bmc, &aig, &options);
    let heartbeats: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name == "progress")
        .collect();
    assert!(!heartbeats.is_empty(), "heartbeats must fire");
    let bound_of = |event: &Event| {
        event.args.iter().find_map(|(k, v)| match v {
            ArgValue::U64(n) if *k == "bound" => Some(*n),
            _ => None,
        })
    };
    assert!(
        heartbeats
            .iter()
            .all(|e| bound_of(e).is_some_and(|b| b >= 1)),
        "every heartbeat names the bound the solver is working on"
    );
    // Counter samples ride along with every heartbeat.
    let report = TraceReport::from_events(&events);
    let conflicts = report
        .counters
        .iter()
        .find(|c| c.name == "solver" && c.key == "conflicts")
        .expect("solver conflict samples");
    assert_eq!(conflicts.samples, heartbeats.len() as u64);
    assert!(conflicts.total > 0);
}

#[test]
fn baseline_from_a_run_gates_that_run_and_jsonl_round_trips() {
    let events = record(Engine::Portfolio, &counter(12), &options());
    let report = TraceReport::from_events(&events);

    let baseline = Baseline::parse(&Baseline::from_report(&report).to_json()).expect("round trip");
    assert!(
        baseline.entries.iter().any(|e| e.name.ends_with(".run")),
        "entrant run spans are gated"
    );
    assert!(
        baseline.entries.iter().any(|e| e.name == "portfolio.race"),
        "the race span is gated"
    );
    let comparison = report.compare(&baseline, 0.0, "self.json");
    assert!(comparison.passed(), "{:?}", comparison.violations);

    // The full JSONL round trip preserves the report exactly.
    let mut jsonl = Vec::new();
    itpseq::telemetry::write_jsonl(&events, &mut jsonl).expect("vec write");
    let parsed = TraceReport::from_jsonl(&String::from_utf8(jsonl).expect("utf8"))
        .expect("recorded stream parses");
    assert_eq!(parsed, report);
    let json = parsed.to_json(Some(&comparison));
    assert!(json.contains(r#""schema": "itpseq-report/v1""#), "{json}");
    assert!(json.contains(r#""passed":true"#), "{json}");
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn scheduler_runs_report_group_utilization() {
    let aig = itpseq::workloads::counter::modular_multi(4, 10, &[3, 11, 7, 15]);
    let sink = Arc::new(MemorySink::new());
    let traced = options().with_telemetry(Telemetry::new(sink.clone()));
    let multi = Engine::Portfolio.verify_all(&aig, &traced);
    assert_eq!(multi.statuses.len(), 4);
    let report = TraceReport::from_events(&sink.snapshot());
    assert!(
        !report.scheduler.is_empty(),
        "scheduler runs report group tracks"
    );
    for group in &report.scheduler {
        assert!(group.track.starts_with("group"), "{}", group.track);
        assert!(group.scheduler_us > 0);
        assert!(
            group.utilization >= 0.0,
            "{}: utilization is a ratio",
            group.track
        );
    }
}
