//! The multi-property determinism contract: `verify_all` is *pure speed*.
//!
//! For every suite model (including the multi-bad variants) and for each
//! backend with an amortized implementation (BMC, PDR, Portfolio), the
//! per-property statuses of `verify_all` must agree with the
//! per-property `Engine::verify` loop — same verdict kind, bit-identical
//! counterexample depths — while multi-BMC's total encoding volume stays
//! `O(K + P)` where the loop pays `O(K·P)`.
//!
//! The small-design loops run everywhere; the full-suite and 10× stress
//! variants are `#[ignore]`d by default and exercised by CI's
//! thread-sanity job in release mode.

use itpseq::mc::{Engine, Options, PropertyStatus, Verdict};
use proptest::prelude::*;
use std::time::Duration;

fn options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(20))
        .with_max_bound(40)
}

/// The engines with genuinely amortized `verify_all` backends.
const MULTI_ENGINES: [Engine; 3] = [Engine::Bmc, Engine::Pdr, Engine::Portfolio];

/// Returns `true` when a verdict's inconclusiveness is a wall-clock
/// artifact (timeout/cancellation) rather than a deterministic outcome
/// (bound exhausted) — those comparisons are skipped so a loaded CI
/// runner cannot turn this into a machine-speed test.
fn budget_artifact(verdict: &Verdict) -> bool {
    matches!(
        verdict,
        Verdict::Inconclusive { reason, .. } if reason == "timeout" || reason == "cancelled"
    )
}

fn status_is_budget_artifact(status: &PropertyStatus) -> bool {
    budget_artifact(&status.verdict())
}

/// Asserts the agreement contract between one `verify_all` run and the
/// per-property loop, for every property of `aig`.
fn assert_agreement(aig: &aig::Aig, name: &str, engine: Engine, options: &Options) {
    let multi = engine.verify_all(aig, options);
    assert_eq!(multi.statuses.len(), aig.num_bad(), "{name}");
    for prop in 0..aig.num_bad() {
        let single = engine.verify(aig, prop, options).verdict;
        if budget_artifact(&single) || status_is_budget_artifact(&multi.statuses[prop]) {
            eprintln!(
                "skipping {name} property {prop} on {}: budget artifact",
                engine.name()
            );
            continue;
        }
        assert!(
            multi.statuses[prop].agrees_with(&single),
            "{} on {name} property {prop}: verify_all said {}, the loop said {}",
            engine.name(),
            multi.statuses[prop],
            single
        );
    }
}

#[test]
fn verify_all_matches_the_per_property_loop_on_the_multi_suite() {
    for benchmark in itpseq::workloads::suite::multi_property() {
        for engine in MULTI_ENGINES {
            assert_agreement(&benchmark.aig, &benchmark.name, engine, &options());
        }
    }
}

#[test]
fn verify_all_matches_the_loop_on_single_property_designs() {
    // The degenerate case: on a one-property design, verify_all is the
    // engine run (modulo bookkeeping).
    let suite: Vec<itpseq::workloads::Benchmark> = itpseq::workloads::suite::mid_size()
        .into_iter()
        .filter(|b| b.aig.num_latches() <= 8)
        .collect();
    assert!(suite.len() >= 10, "suite unexpectedly small");
    for benchmark in &suite {
        for engine in MULTI_ENGINES {
            assert_agreement(&benchmark.aig, &benchmark.name, engine, &options());
        }
    }
}

#[test]
#[ignore = "full-suite stress run; exercised in release mode by CI's thread-sanity job"]
fn verify_all_matches_the_per_property_loop_on_the_full_suite() {
    for benchmark in itpseq::workloads::suite::full() {
        for engine in MULTI_ENGINES {
            assert_agreement(&benchmark.aig, &benchmark.name, engine, &options());
        }
    }
    for benchmark in itpseq::workloads::suite::multi_property() {
        for engine in MULTI_ENGINES {
            assert_agreement(&benchmark.aig, &benchmark.name, engine, &options());
        }
    }
}

/// The multi-property determinism pass: repeated `verify_all` runs across
/// thread counts must reproduce identical status kinds and depths.
fn assert_determinism(runs: usize) {
    for benchmark in itpseq::workloads::suite::multi_property() {
        let reference: Vec<_> = Engine::Portfolio
            .verify_all(&benchmark.aig, &options())
            .statuses
            .iter()
            .map(PropertyStatus::kind_and_depth)
            .collect::<Vec<_>>()
            .into_iter()
            .map(|(kind, depth)| (kind.to_string(), depth))
            .collect();
        assert!(
            !reference.iter().any(|(kind, _)| kind == "inconclusive"),
            "{}: the multi suite must be decidable within budget: {reference:?}",
            benchmark.name
        );
        for threads in [1usize, 2, 0] {
            for run in 0..runs {
                let again: Vec<_> = Engine::Portfolio
                    .verify_all(&benchmark.aig, &options().with_threads(threads))
                    .statuses
                    .iter()
                    .map(PropertyStatus::kind_and_depth)
                    .map(|(kind, depth)| (kind.to_string(), depth))
                    .collect();
                assert_eq!(
                    reference, again,
                    "{} run {run} with {threads} threads",
                    benchmark.name
                );
            }
        }
    }
}

#[test]
fn verify_all_statuses_are_thread_count_invariant() {
    assert_determinism(1);
}

#[test]
#[ignore = "10x stress repetition; exercised in release mode by CI's thread-sanity job"]
fn verify_all_statuses_are_thread_count_invariant_10x() {
    assert_determinism(10);
}

#[test]
fn multi_bmc_encoding_is_linear_not_quadratic() {
    // The acceptance criterion: on a K-bound, P-property run, multi-BMC's
    // total clauses_encoded is O(K + P); the per-property loop pays
    // O(K·P).  Stuck-at-zero latches with bare latch literals as the bad
    // cones make the frame encoding the only volume, so the ratio is
    // clean: the loop re-encodes all K frames once per property.
    let props = 6usize;
    let mut aig = aig::Aig::new();
    for _ in 0..props {
        let latch = aig.add_latch(false);
        aig.set_next(latch, aig::Lit::FALSE);
        let lit = aig.latch_lit(latch);
        aig.add_bad(lit);
    }
    // exact-k: the per-bound targets are pure assumptions, so the
    // measured volume is exactly the frame encodings (assume-k would add
    // an O(K·P) trickle of unit clauses and blur the ratio).
    let run_options = |bound: usize| {
        options()
            .with_max_bound(bound)
            .with_check(itpseq::cnf::BmcCheck::Exact)
    };

    let multi = Engine::Bmc.verify_all(&aig, &run_options(12));
    assert!(
        multi
            .statuses
            .iter()
            .all(|s| !s.is_conclusive() && !status_is_budget_artifact(s)),
        "all properties are safe: {:?}",
        multi.statuses
    );
    let mut loop_total = 0u64;
    for prop in 0..props {
        loop_total += Engine::Bmc
            .verify(&aig, prop, &run_options(12))
            .stats
            .clauses_encoded;
    }
    let amortized = multi.stats.clauses_encoded;
    // Strictly below the loop, and by roughly the property count — the
    // frame encodings are paid once instead of P times.
    assert!(
        amortized < loop_total,
        "amortized {amortized} must beat the loop {loop_total}"
    );
    assert!(
        amortized * (props as u64 - 1) < loop_total,
        "amortized {amortized} must be ~P times below the loop {loop_total}"
    );
    // And linear in the bound: doubling K must not quadruple the volume.
    let double = Engine::Bmc
        .verify_all(&aig, &run_options(24))
        .stats
        .clauses_encoded;
    assert!(
        double < 3 * amortized,
        "doubling the bound must keep encoding linear: {amortized} -> {double}"
    );
}

#[test]
fn multi_bmc_counterexamples_replay_through_simulation() {
    for benchmark in itpseq::workloads::suite::multi_property() {
        let multi = Engine::Bmc.verify_all(&benchmark.aig, &options());
        for (prop, status) in multi.statuses.iter().enumerate() {
            let PropertyStatus::Falsified { depth, cex } = status else {
                continue;
            };
            let cex = cex.as_ref().unwrap_or_else(|| {
                panic!(
                    "{} property {prop}: multi-BMC attaches traces",
                    benchmark.name
                )
            });
            assert_eq!(cex.len(), depth + 1, "{} property {prop}", benchmark.name);
            let trace = aig::simulate(&benchmark.aig, cex);
            assert!(
                trace.bad[*depth][prop],
                "{} property {prop}: the trace must exhibit the bad state at depth {depth}",
                benchmark.name
            );
        }
    }
}

#[test]
fn suite_expectations_hold_through_verify_all() {
    for benchmark in itpseq::workloads::suite::multi_property() {
        let multi = Engine::Portfolio.verify_all(&benchmark.aig, &options());
        for (prop, expect) in benchmark.expect_fail.iter().enumerate() {
            if let Some(expect_fail) = expect {
                assert_eq!(
                    multi.statuses[prop].is_falsified(),
                    *expect_fail,
                    "{} property {prop}: {}",
                    benchmark.name,
                    multi.statuses[prop]
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized multi-property counters: verify_all agrees with the
    /// per-property loop for every amortized backend.
    #[test]
    fn verify_all_agrees_on_random_multi_counters(
        width in 2usize..5,
        modulus_sel in 0u64..1024,
        threshold_seed in 0u64..u64::MAX,
        num_props in 2usize..5,
        engine_sel in 0usize..3,
    ) {
        let modulus = 2 + modulus_sel % ((1 << width) - 1);
        let thresholds: Vec<u64> = (0..num_props)
            // Spread thresholds over [0, 2^width + 2): some reachable,
            // some provably unreachable.
            .map(|i| threshold_seed.rotate_left(13 * i as u32) % ((1 << width) + 2))
            .collect();
        let aig = itpseq::workloads::counter::modular_multi(width, modulus, &thresholds);
        let engine = MULTI_ENGINES[engine_sel];
        let options = options().with_max_bound((1 << width) + 4);
        let multi = engine.verify_all(&aig, &options);
        for prop in 0..aig.num_bad() {
            let single = engine.verify(&aig, prop, &options).verdict;
            prop_assert!(
                multi.statuses[prop].agrees_with(&single),
                "{} on {} property {prop}: {} vs {}",
                engine.name(),
                aig.name(),
                multi.statuses[prop],
                single
            );
        }
    }
}
