//! Word-level construction helpers on top of the bit-level AIG.
//!
//! The synthetic workload generators build counters, comparators and
//! one-hot control structures; this module provides the small amount of
//! word-level plumbing they need.  Words are little-endian vectors of
//! [`Lit`]s (`word[0]` is the least significant bit).

use crate::{Aig, Lit};

/// Builds a literal that is true iff `word` equals the constant `value`
/// (only the lowest `word.len()` bits of `value` are considered).
pub fn word_equals_const(aig: &mut Aig, word: &[Lit], value: u64) -> Lit {
    let lits: Vec<Lit> = word
        .iter()
        .enumerate()
        .map(|(i, &bit)| bit.xor_complement((value >> i) & 1 == 0))
        .collect();
    aig.and_many(lits)
}

/// Builds the bitwise equality of two equally sized words.
///
/// # Panics
///
/// Panics if the words have different lengths.
pub fn word_equals(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "word widths must match");
    let lits: Vec<Lit> = a
        .iter()
        .zip(b.iter())
        .map(|(&x, &y)| aig.iff(x, y))
        .collect();
    aig.and_many(lits)
}

/// Builds an unsigned "less than" comparator (`a < b`).
///
/// # Panics
///
/// Panics if the words have different lengths.
pub fn word_less_than(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "word widths must match");
    // Ripple from the most significant bit: lt_i = (!a_i & b_i) | (a_i<->b_i) & lt_{i-1}
    let mut lt = Lit::FALSE;
    for i in 0..a.len() {
        let eq = aig.iff(a[i], b[i]);
        let strictly = aig.and(!a[i], b[i]);
        let keep = aig.and(eq, lt);
        lt = aig.or(strictly, keep);
    }
    lt
}

/// Builds an incrementer: returns `word + inc` truncated to the word width
/// (wrap-around), where `inc` is a single-bit condition.
pub fn word_increment(aig: &mut Aig, word: &[Lit], inc: Lit) -> Vec<Lit> {
    let mut carry = inc;
    let mut out = Vec::with_capacity(word.len());
    for &bit in word {
        out.push(aig.xor(bit, carry));
        carry = aig.and(bit, carry);
    }
    out
}

/// Builds a word-level adder: returns `(sum, carry_out)` of `a + b`.
///
/// # Panics
///
/// Panics if the words have different lengths.
pub fn word_add(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "word widths must match");
    let mut carry = Lit::FALSE;
    let mut out = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let x = aig.xor(a[i], b[i]);
        out.push(aig.xor(x, carry));
        let c1 = aig.and(a[i], b[i]);
        let c2 = aig.and(x, carry);
        carry = aig.or(c1, c2);
    }
    (out, carry)
}

/// Builds a word-level multiplexer selecting `t` when `sel` holds, `e`
/// otherwise.
///
/// # Panics
///
/// Panics if the words have different lengths.
pub fn word_mux(aig: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    assert_eq!(t.len(), e.len(), "word widths must match");
    t.iter()
        .zip(e.iter())
        .map(|(&a, &b)| aig.mux(sel, a, b))
        .collect()
}

/// Builds a constant word of the given width.
pub fn word_const(width: usize, value: u64) -> Vec<Lit> {
    (0..width)
        .map(|i| {
            if (value >> i) & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Creates `width` fresh latches, all reset according to `init`, and returns
/// `(latch ids, current-state literals)`.
pub fn latch_word(aig: &mut Aig, width: usize, init: u64) -> (Vec<usize>, Vec<Lit>) {
    let mut ids = Vec::with_capacity(width);
    let mut lits = Vec::with_capacity(width);
    for i in 0..width {
        let id = aig.add_latch((init >> i) & 1 == 1);
        lits.push(aig.latch_lit(id));
        ids.push(id);
    }
    (ids, lits)
}

/// Creates `width` fresh primary inputs and returns their literals.
pub fn input_word(aig: &mut Aig, width: usize) -> Vec<Lit> {
    (0..width).map(|_| Lit::positive(aig.add_input())).collect()
}

/// Builds the literal "at most one of `lits` is true".
pub fn at_most_one(aig: &mut Aig, lits: &[Lit]) -> Lit {
    let mut violations = Vec::new();
    for i in 0..lits.len() {
        for j in (i + 1)..lits.len() {
            violations.push(aig.and(lits[i], lits[j]));
        }
    }
    let any = aig.or_many(violations);
    !any
}

/// Builds the literal "exactly one of `lits` is true".
pub fn exactly_one(aig: &mut Aig, lits: &[Lit]) -> Lit {
    let amo = at_most_one(aig, lits);
    let any = aig.or_many(lits.iter().copied());
    aig.and(amo, any)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_word(aig: &Aig, word: &[Lit], inputs: &[bool], latches: &[bool]) -> u64 {
        word.iter()
            .enumerate()
            .map(|(i, &l)| (aig.eval(l, inputs, latches) as u64) << i)
            .sum()
    }

    #[test]
    fn word_equals_const_matches() {
        let mut aig = Aig::new();
        let w = input_word(&mut aig, 3);
        let eq5 = word_equals_const(&mut aig, &w, 5);
        for v in 0..8u64 {
            let inputs: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(aig.eval(eq5, &inputs, &[]), v == 5, "value {v}");
        }
    }

    #[test]
    fn word_add_is_binary_addition() {
        let mut aig = Aig::new();
        let a = input_word(&mut aig, 3);
        let b = input_word(&mut aig, 3);
        let (sum, carry) = word_add(&mut aig, &a, &b);
        for va in 0..8u64 {
            for vb in 0..8u64 {
                let mut inputs = Vec::new();
                for i in 0..3 {
                    inputs.push((va >> i) & 1 == 1);
                }
                for i in 0..3 {
                    inputs.push((vb >> i) & 1 == 1);
                }
                let got = eval_word(&aig, &sum, &inputs, &[]);
                let cout = aig.eval(carry, &inputs, &[]) as u64;
                assert_eq!(got + (cout << 3), va + vb, "{va}+{vb}");
            }
        }
    }

    #[test]
    fn word_increment_wraps() {
        let mut aig = Aig::new();
        let w = input_word(&mut aig, 2);
        let next = word_increment(&mut aig, &w, Lit::TRUE);
        for v in 0..4u64 {
            let inputs: Vec<bool> = (0..2).map(|i| (v >> i) & 1 == 1).collect();
            assert_eq!(eval_word(&aig, &next, &inputs, &[]), (v + 1) % 4);
        }
    }

    #[test]
    fn word_less_than_is_unsigned() {
        let mut aig = Aig::new();
        let a = input_word(&mut aig, 3);
        let b = input_word(&mut aig, 3);
        let lt = word_less_than(&mut aig, &a, &b);
        for va in 0..8u64 {
            for vb in 0..8u64 {
                let mut inputs = Vec::new();
                for i in 0..3 {
                    inputs.push((va >> i) & 1 == 1);
                }
                for i in 0..3 {
                    inputs.push((vb >> i) & 1 == 1);
                }
                assert_eq!(aig.eval(lt, &inputs, &[]), va < vb, "{va}<{vb}");
            }
        }
    }

    #[test]
    fn exactly_one_and_at_most_one() {
        let mut aig = Aig::new();
        let w = input_word(&mut aig, 3);
        let amo = at_most_one(&mut aig, &w);
        let exo = exactly_one(&mut aig, &w);
        for v in 0..8u64 {
            let inputs: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            let ones = v.count_ones();
            assert_eq!(aig.eval(amo, &inputs, &[]), ones <= 1);
            assert_eq!(aig.eval(exo, &inputs, &[]), ones == 1);
        }
    }

    #[test]
    fn word_mux_selects() {
        let mut aig = Aig::new();
        let sel = Lit::positive(aig.add_input());
        let t = word_const(4, 0b1010);
        let e = word_const(4, 0b0101);
        let m = word_mux(&mut aig, sel, &t, &e);
        assert_eq!(eval_word(&aig, &m, &[true], &[]), 0b1010);
        assert_eq!(eval_word(&aig, &m, &[false], &[]), 0b0101);
    }

    #[test]
    fn latch_word_sets_reset_values() {
        let mut aig = Aig::new();
        let (ids, lits) = latch_word(&mut aig, 4, 0b0110);
        assert_eq!(ids.len(), 4);
        assert_eq!(lits.len(), 4);
        assert!(!aig.init(ids[0]));
        assert!(aig.init(ids[1]));
        assert!(aig.init(ids[2]));
        assert!(!aig.init(ids[3]));
    }
}
