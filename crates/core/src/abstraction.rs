//! Localization abstraction for the CBA-enhanced engine.
//!
//! An abstraction is a subset of *visible* latches.  The abstract model
//! keeps the visible latches and replaces every invisible latch by a fresh
//! primary input (a cut-point), which strictly over-approximates the
//! behaviour of the concrete design: every concrete trace is also an
//! abstract trace, so safety proofs on the abstract model carry over.

use aig::{Aig, AigNode, LatchId, Lit};
use std::collections::{BTreeSet, HashMap};

/// A localization abstraction: which latches stay latches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Abstraction {
    visible: BTreeSet<LatchId>,
}

impl Abstraction {
    /// The initial abstraction used by the CBA engine: the latches in the
    /// *direct combinational support* of the property.
    pub fn initial(design: &Aig, bad_index: usize) -> Abstraction {
        let support = aig::coi::combinational_support(design, design.bad(bad_index));
        Abstraction {
            visible: support.latches.into_iter().collect(),
        }
    }

    /// An abstraction in which every latch is visible (the concrete model).
    pub fn full(design: &Aig) -> Abstraction {
        Abstraction {
            visible: (0..design.num_latches()).collect(),
        }
    }

    /// Number of visible latches.
    pub fn num_visible(&self) -> usize {
        self.visible.len()
    }

    /// Returns `true` when latch `latch` is visible.
    pub fn is_visible(&self, latch: LatchId) -> bool {
        self.visible.contains(&latch)
    }

    /// Returns `true` when every latch of `design` is visible.
    pub fn is_complete(&self, design: &Aig) -> bool {
        self.visible.len() == design.num_latches()
    }

    /// Makes additional latches visible; returns how many were new.
    pub fn refine<I: IntoIterator<Item = LatchId>>(&mut self, latches: I) -> usize {
        let before = self.visible.len();
        self.visible.extend(latches);
        self.visible.len() - before
    }

    /// Iterates over the visible latches in increasing order.
    pub fn visible_latches(&self) -> impl Iterator<Item = LatchId> + '_ {
        self.visible.iter().copied()
    }

    /// Builds the abstract model.
    ///
    /// Returns the abstract design together with `latch_map`, where
    /// `latch_map[i]` is the concrete latch index corresponding to abstract
    /// latch `i` (visible latches keep their relative order).
    pub fn abstract_model(&self, design: &Aig, bad_index: usize) -> (Aig, Vec<LatchId>) {
        let mut abs = Aig::new();
        abs.set_name(format!("{}-abs{}", design.name(), self.visible.len()));
        // Copy primary inputs 1:1.
        let mut input_map: Vec<Lit> = Vec::with_capacity(design.num_inputs());
        for _ in 0..design.num_inputs() {
            input_map.push(Lit::positive(abs.add_input()));
        }
        // Visible latches become latches; invisible latches become inputs.
        let mut latch_repr: HashMap<LatchId, Lit> = HashMap::new();
        let mut latch_map: Vec<LatchId> = Vec::new();
        let mut abs_latches: Vec<(LatchId, usize)> = Vec::new();
        for latch in 0..design.num_latches() {
            if self.is_visible(latch) {
                let new = abs.add_latch(design.init(latch));
                latch_repr.insert(latch, abs.latch_lit(new));
                abs_latches.push((latch, new));
                latch_map.push(latch);
            } else {
                latch_repr.insert(latch, Lit::positive(abs.add_input()));
            }
        }
        // Copy the combinational logic reachable from the next-state
        // functions of visible latches and from the property.
        let mut cache: HashMap<u32, Lit> = HashMap::new();
        for &(orig, new) in &abs_latches {
            let next = copy_cone(
                design,
                design.next(orig),
                &mut abs,
                &input_map,
                &latch_repr,
                &mut cache,
            );
            abs.set_next(new, next);
        }
        let bad = copy_cone(
            design,
            design.bad(bad_index),
            &mut abs,
            &input_map,
            &latch_repr,
            &mut cache,
        );
        abs.add_bad(bad);
        (abs, latch_map)
    }
}

fn copy_cone(
    design: &Aig,
    lit: Lit,
    target: &mut Aig,
    input_map: &[Lit],
    latch_repr: &HashMap<LatchId, Lit>,
    cache: &mut HashMap<u32, Lit>,
) -> Lit {
    let node = lit.node();
    if let Some(&mapped) = cache.get(&node) {
        return mapped.xor_complement(lit.is_complemented());
    }
    let mapped = match design.node(node) {
        AigNode::Const => Lit::FALSE,
        AigNode::Input { index } => input_map[index],
        AigNode::Latch { index } => latch_repr[&index],
        AigNode::And { left, right } => {
            let l = copy_cone(design, left, target, input_map, latch_repr, cache);
            let r = copy_cone(design, right, target, input_map, latch_repr, cache);
            target.and(l, r)
        }
    };
    cache.insert(node, mapped);
    mapped.xor_complement(lit.is_complemented())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A design with two latch chains; only chain A feeds the property.
    fn chained_design() -> Aig {
        let mut aig = Aig::new();
        let a0 = aig.add_latch(false);
        let a1 = aig.add_latch(false);
        let b0 = aig.add_latch(false);
        let i0 = Lit::positive(aig.add_input());
        let a1lit = aig.latch_lit(a1);
        aig.set_next(a0, a1lit);
        aig.set_next(a1, i0);
        let b0lit = aig.latch_lit(b0);
        aig.set_next(b0, !b0lit);
        let bad = aig.latch_lit(a0);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn initial_abstraction_uses_direct_support() {
        let design = chained_design();
        let abs = Abstraction::initial(&design, 0);
        assert_eq!(abs.num_visible(), 1);
        assert!(abs.is_visible(0));
        assert!(!abs.is_complete(&design));
    }

    #[test]
    fn refinement_adds_latches_monotonically() {
        let design = chained_design();
        let mut abs = Abstraction::initial(&design, 0);
        assert_eq!(abs.refine([1]), 1);
        assert_eq!(abs.refine([1]), 0);
        assert_eq!(abs.refine([2]), 1);
        assert!(abs.is_complete(&design));
    }

    #[test]
    fn abstract_model_replaces_invisible_latches_by_inputs() {
        let design = chained_design();
        let abs = Abstraction::initial(&design, 0);
        let (model, latch_map) = abs.abstract_model(&design, 0);
        assert_eq!(model.num_latches(), 1);
        assert_eq!(latch_map, vec![0]);
        // 1 original input + 2 cut-point inputs.
        assert_eq!(model.num_inputs(), design.num_inputs() + 2);
        assert_eq!(model.num_bad(), 1);
    }

    #[test]
    fn full_abstraction_reproduces_concrete_behaviour() {
        let design = chained_design();
        let abs = Abstraction::full(&design);
        let (model, latch_map) = abs.abstract_model(&design, 0);
        assert_eq!(model.num_latches(), design.num_latches());
        assert_eq!(latch_map, vec![0, 1, 2]);
        assert_eq!(model.num_inputs(), design.num_inputs());
        // Same simulation behaviour on a fixed stimulus.
        let stim: Vec<Vec<bool>> = (0..6).map(|i| vec![i % 2 == 0]).collect();
        let t1 = aig::simulate(&design, &stim);
        let t2 = aig::simulate(&model, &stim);
        assert_eq!(t1.bad, t2.bad);
    }

    #[test]
    fn abstraction_over_approximates() {
        // The abstract model must be able to reproduce any concrete trace:
        // pick the concrete bad-reaching trace and check the abstract model
        // can follow it by driving the cut-point inputs with the concrete
        // latch values.
        let design = chained_design();
        let abs = Abstraction::initial(&design, 0);
        let (model, _) = abs.abstract_model(&design, 0);
        // Drive input0 = 1 constantly; concrete fails at cycle 2 (a1 <- 1,
        // then a0 <- 1).
        let stim: Vec<Vec<bool>> = vec![vec![true]; 4];
        let concrete = aig::simulate(&design, &stim);
        let fail = concrete.first_failure().expect("concrete trace fails");
        // Abstract inputs: [orig input, cut for a1, cut for b0].
        let abs_stim: Vec<Vec<bool>> = (0..4)
            .map(|t| vec![true, concrete.latches[t][1], concrete.latches[t][2]])
            .collect();
        let abstracted = aig::simulate(&model, &abs_stim);
        assert_eq!(abstracted.first_failure(), Some(fail));
    }
}
