//! Portfolio determinism: racing engines decides *when* runs stop, never
//! *what* they answer.  `Engine::Portfolio` is run repeatedly on the
//! benchmark suite and every repetition must reproduce the verdict kind
//! and the exact counterexample depth of the sequential references
//! (PDR for proofs, BMC for counterexample depths).
//!
//! The small-design loop runs everywhere; the full-suite stress loop is
//! `#[ignore]`d by default and exercised by CI's thread-sanity job in
//! release mode (`cargo test --release -- --include-ignored`).

use itpseq::mc::{Engine, Options, Verdict};
use itpseq::workloads::Benchmark;
use std::time::Duration;

const RUNS: usize = 10;

fn options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(20))
        .with_max_bound(40)
}

/// The sequential reference verdict: BMC pins failing depths, PDR proves.
fn reference(benchmark: &Benchmark) -> Verdict {
    if benchmark.expect_fail == Some(true) {
        Engine::Bmc.verify(&benchmark.aig, 0, &options()).verdict
    } else {
        Engine::Pdr.verify(&benchmark.aig, 0, &options()).verdict
    }
}

fn assert_portfolio_matches(suite: &[Benchmark], runs: usize) {
    let mut compared = 0;
    for benchmark in suite {
        let expected = reference(benchmark);
        if !expected.is_conclusive() {
            // A loaded CI runner can push a hard reference past its
            // wall-clock budget; skipping keeps this a determinism test,
            // not a machine-speed test (the coverage floor below still
            // guards against skipping everything).
            eprintln!("skipping {}: reference was {expected}", benchmark.name);
            continue;
        }
        compared += 1;
        for run in 0..runs {
            // threads = 0 (auto): the race *and* the PDR entrant's
            // parallel frame phases are both in play, the composition the
            // thread-sanity CI job is here to exercise.
            let raced = Engine::Portfolio.verify(&benchmark.aig, 0, &options().with_threads(0));
            assert_eq!(
                expected.is_proved(),
                raced.verdict.is_proved(),
                "{} run {run}: {} vs reference {}",
                benchmark.name,
                raced.verdict,
                expected
            );
            assert_eq!(
                expected.is_falsified(),
                raced.verdict.is_falsified(),
                "{} run {run}: {} vs reference {}",
                benchmark.name,
                raced.verdict,
                expected
            );
            if let Verdict::Falsified { depth } = expected {
                assert_eq!(
                    raced.verdict,
                    Verdict::Falsified { depth },
                    "{} run {run}: counterexample depth must be minimal",
                    benchmark.name
                );
            }
            assert!(
                raced.stats.winner.is_some(),
                "{} run {run}: portfolio must tag its winner",
                benchmark.name
            );
        }
    }
    assert!(
        compared * 2 >= suite.len(),
        "too many skipped references ({compared}/{} compared)",
        suite.len()
    );
}

#[test]
fn portfolio_matches_the_sequential_reference_on_small_designs() {
    let suite: Vec<Benchmark> = itpseq::workloads::suite::mid_size()
        .into_iter()
        .filter(|b| b.aig.num_latches() <= 10)
        .collect();
    assert!(suite.len() >= 10, "suite unexpectedly small");
    assert_portfolio_matches(&suite, RUNS);
}

#[test]
#[ignore = "full-suite stress run; exercised in release mode by CI's thread-sanity job"]
fn portfolio_matches_the_sequential_reference_on_the_full_suite() {
    let suite = itpseq::workloads::suite::full();
    assert_portfolio_matches(&suite, RUNS);
}

#[test]
fn parallel_pdr_matches_sequential_pdr_across_the_suite() {
    // The per-frame parallelism inside PDR must not change verdicts or
    // depths either — checked engine-to-engine, not just through the
    // portfolio (which could mask a divergence by racing).
    let suite: Vec<Benchmark> = itpseq::workloads::suite::mid_size()
        .into_iter()
        .filter(|b| b.aig.num_latches() <= 10)
        .collect();
    for benchmark in &suite {
        let sequential = Engine::Pdr.verify(&benchmark.aig, 0, &options());
        let parallel = Engine::Pdr.verify(&benchmark.aig, 0, &options().with_threads(4));
        assert_eq!(
            sequential.verdict.is_proved(),
            parallel.verdict.is_proved(),
            "{}: {} vs {}",
            benchmark.name,
            sequential.verdict,
            parallel.verdict
        );
        if let Verdict::Falsified { depth } = sequential.verdict {
            assert_eq!(
                parallel.verdict,
                Verdict::Falsified { depth },
                "{}",
                benchmark.name
            );
        }
    }
}
