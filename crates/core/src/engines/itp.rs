//! Standard interpolation-based model checking (`ITPVERIF`, Fig. 1).
//!
//! McMillan's original scheme: at bound `k`, the formula is split into
//! `A = S0 ∧ T(V^0, V^1)` and `B = T^{k-1} ∧ ⋁_{i=1..k} ¬p(V^i)` (a
//! *bound-k* target).  Each refutation yields an interpolant that
//! over-approximates the image of the current frontier; the frontier is
//! substituted for `S0` and the process repeats until either a fixed point
//! proves the property or a satisfiable instance forces the bound to grow.

use crate::certificate::{Certificate, InvariantCert, InvariantCone};
use crate::engines::{CancelToken, EngineProbe, RunBudget};
use crate::state::{encode_state_lit, StateSpace};
use crate::{EngineResult, EngineStats, Options, Verdict};
use aig::Aig;
use cnf::Unroller;
use itp::InterpolationContext;
use sat::{Proof, SolveResult, Solver};
use std::collections::HashMap;
use std::time::Instant;
use telemetry::{ArgValue, Telemetry};

struct BoundInstance {
    cnf: cnf::Cnf,
    frame1_latches: Vec<cnf::Lit>,
    /// Frame-by-frame primary-input variables (cycles `0..=bound`), so a
    /// satisfiable instance from the real initial states can be read back
    /// as a replayable counterexample trace.
    frame_inputs: Vec<Vec<cnf::Lit>>,
}

/// Builds the bound-k instance with `A` in partition 1 and `B` in
/// partition 2.  `init` selects between the reset states and an arbitrary
/// frontier state set.
fn build_bound_instance(
    design: &Aig,
    bad_index: usize,
    bound: usize,
    init: Option<(&StateSpace, aig::Lit)>,
    identity: &[usize],
) -> BoundInstance {
    let mut unroller = Unroller::new(design);
    unroller.builder_mut().set_partition(1);
    match init {
        None => unroller.assert_initial(0),
        Some((space, set)) => {
            let lit = encode_state_lit(&mut unroller, 0, space, set, identity);
            unroller.assert_lit(lit);
        }
    }
    unroller.add_frame();
    unroller.builder_mut().set_partition(2);
    for _ in 2..=bound {
        unroller.add_frame();
    }
    let bads: Vec<cnf::Lit> = (1..=bound)
        .map(|f| unroller.bad_lit(f, bad_index))
        .collect();
    unroller.builder_mut().add_clause(bads);
    let frame1_latches = unroller.latch_lits(1);
    // Input variables are clause-free, so pinning them down after the
    // instance is built never changes its satisfiability or its proofs.
    let frame_inputs = (0..=bound)
        .map(|f| {
            (0..design.num_inputs())
                .map(|i| unroller.input_lit(f, i))
                .collect()
        })
        .collect();
    BoundInstance {
        cnf: unroller.into_cnf(),
        frame1_latches,
        frame_inputs,
    }
}

fn solve(
    cnf: &cnf::Cnf,
    stats: &mut EngineStats,
    budget: &RunBudget,
    reduce: Option<u64>,
    probe: &EngineProbe,
    telemetry: &Telemetry,
) -> (SolveResult, Option<Proof>, Solver) {
    let mut solver = Solver::new();
    solver.set_reduce_interval(reduce);
    budget.govern(&mut solver);
    solver.set_progress_probe(probe.probe());
    solver.add_cnf(cnf);
    stats.sat_calls += 1;
    stats.clauses_encoded += cnf.clauses.len() as u64;
    let query = telemetry.span_args("sat", || {
        vec![("clauses", ArgValue::U64(cnf.clauses.len() as u64))]
    });
    let result = solver.solve();
    query.end();
    stats.add_solver_delta(solver.stats());
    let proof = if result == SolveResult::Unsat {
        solver.proof()
    } else {
        None
    };
    (result, proof, solver)
}

/// Reads the counterexample input trace off a satisfiable bound instance.
fn extract_trace(instance: &BoundInstance, solver: &Solver) -> Vec<Vec<bool>> {
    instance
        .frame_inputs
        .iter()
        .map(|frame| {
            frame
                .iter()
                .map(|&lit| solver.lit_value(lit).unwrap_or(false))
                .collect()
        })
        .collect()
}

fn extract_interpolant(
    proof: &Proof,
    instance: &BoundInstance,
    space: &mut StateSpace,
    stats: &mut EngineStats,
) -> Result<aig::Lit, String> {
    let mut var_to_latch: HashMap<u32, usize> = HashMap::new();
    for (latch, lit) in instance.frame1_latches.iter().enumerate() {
        var_to_latch.insert(lit.var().index(), latch);
    }
    let latch_lits: Vec<aig::Lit> = (0..space.num_latches()).map(|i| space.latch(i)).collect();
    let ctx = InterpolationContext::new(proof).map_err(|e| e.to_string())?;
    let itp = ctx
        .interpolant(1, space.manager_mut(), &|_, v| {
            let latch = *var_to_latch
                .get(&v.index())
                .expect("shared interpolant variables are frame-1 latch variables");
            latch_lits[latch]
        })
        .map_err(|e| e.to_string())?;
    stats.interpolants += 1;
    Ok(itp)
}

/// Runs standard interpolation on bad-state property `bad_index`.
pub fn verify(design: &Aig, bad_index: usize, options: &Options) -> EngineResult {
    verify_with_cancel(design, bad_index, options, &CancelToken::new())
}

/// [`verify`] under a cancellation token: the bound loop, the inner
/// fixed-point iteration and each refutation stop soon after the token is
/// cancelled.
pub fn verify_with_cancel(
    design: &Aig,
    bad_index: usize,
    options: &Options,
    cancel: &CancelToken,
) -> EngineResult {
    let start = Instant::now();
    let budget = RunBudget::arm(cancel, start, options);
    let telemetry = &options.telemetry;
    let _run = telemetry.span_args("ITP.run", || {
        vec![("latches", ArgValue::U64(design.num_latches() as u64))]
    });
    let mut stats = EngineStats {
        visible_latches: design.num_latches(),
        ..EngineStats::default()
    };
    let finish = |mut stats: EngineStats,
                  verdict: Verdict,
                  certificate: Option<Certificate>,
                  start: Instant| {
        telemetry.instant_args("verdict", || {
            vec![("verdict", ArgValue::Str(verdict.to_string()))]
        });
        stats.time = start.elapsed();
        EngineResult {
            verdict,
            stats,
            certificate,
        }
    };
    if let Some((verdict, cert)) =
        crate::engines::bmc::depth0_verdict(design, bad_index, &budget, &mut stats, options)
    {
        return finish(stats, verdict, cert, start);
    }

    let probe = EngineProbe::new(telemetry, options.probe_interval);
    let mut space = StateSpace::new(design.num_latches());
    let s0 = space.initial_states(design);
    let identity: Vec<usize> = (0..design.num_latches()).collect();

    for k in 1..=options.max_bound {
        if let Some(reason) = budget.stop_reason() {
            return finish(
                stats,
                Verdict::Inconclusive {
                    reason,
                    bound_reached: k - 1,
                },
                None,
                start,
            );
        }
        let _bound = telemetry.span_args("bound", || vec![("k", ArgValue::U64(k as u64))]);
        probe.set_bound(k);
        // Initial check from the real initial states.
        let encode_start = Instant::now();
        let instance = build_bound_instance(design, bad_index, k, None, &identity);
        stats.encode_time += encode_start.elapsed();
        let (result, proof, solver) = solve(
            &instance.cnf,
            &mut stats,
            &budget,
            options.reduce_interval(),
            &probe,
            telemetry,
        );
        if result == SolveResult::Sat {
            // bound-(k-1) was unsatisfiable, so the counterexample has
            // length exactly k.
            let cert = options
                .certificates
                .then(|| Certificate::Trace(extract_trace(&instance, &solver)));
            return finish(stats, Verdict::Falsified { depth: k }, cert, start);
        }
        drop(solver);
        if result == SolveResult::Interrupted {
            return finish(
                stats,
                Verdict::Inconclusive {
                    reason: budget.interrupt_reason(),
                    bound_reached: k - 1,
                },
                None,
                start,
            );
        }
        let mut proof = proof.expect("unsat result has a proof");
        let mut instance = instance;
        let mut reached = s0;
        let mut j = 0usize;
        loop {
            j += 1;
            let itp = match extract_interpolant(&proof, &instance, &mut space, &mut stats) {
                Ok(itp) => itp,
                Err(reason) => {
                    return finish(
                        stats,
                        Verdict::Inconclusive {
                            reason: crate::types::StopReason::other(reason),
                            bound_reached: k,
                        },
                        None,
                        start,
                    );
                }
            };
            if space.implies(itp, reached) {
                // `reached = S0 ∨ itp_1 ∨ …` is closed under the transition
                // relation at this point: it contains the initial states,
                // every disjunct excludes the bad states (each interpolant's
                // B side includes the frame-1 target), and the new image
                // over-approximation folds back into it — an inductive
                // invariant, exported as a cone over the latches.
                let cert = options.certificates.then(|| {
                    let _emit = telemetry.span("certificate.emit");
                    Certificate::Invariant(InvariantCert {
                        num_latches: design.num_latches(),
                        clauses: Vec::new(),
                        cone: Some(InvariantCone::from_cone(
                            space.manager(),
                            reached,
                            design.num_latches(),
                            &identity,
                        )),
                    })
                });
                return finish(stats, Verdict::Proved { k_fp: k, j_fp: j }, cert, start);
            }
            reached = space.or(reached, itp);
            if let Some(reason) = budget.stop_reason() {
                return finish(
                    stats,
                    Verdict::Inconclusive {
                        reason,
                        bound_reached: k,
                    },
                    None,
                    start,
                );
            }
            let encode_start = Instant::now();
            instance = build_bound_instance(design, bad_index, k, Some((&space, itp)), &identity);
            stats.encode_time += encode_start.elapsed();
            let (result, next_proof, _) = solve(
                &instance.cnf,
                &mut stats,
                &budget,
                options.reduce_interval(),
                &probe,
                telemetry,
            );
            if result == SolveResult::Sat {
                // Spurious hit from the over-approximated frontier: deepen.
                break;
            }
            if result == SolveResult::Interrupted {
                return finish(
                    stats,
                    Verdict::Inconclusive {
                        reason: budget.interrupt_reason(),
                        bound_reached: k,
                    },
                    None,
                    start,
                );
            }
            proof = next_proof.expect("unsat result has a proof");
        }
    }

    finish(
        stats,
        Verdict::Inconclusive {
            reason: crate::types::StopReason::BoundExhausted,
            bound_reached: options.max_bound,
        },
        None,
        start,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Options;
    use aig::builder::{latch_word, word_equals_const, word_increment, word_mux};

    fn modular_counter(width: usize, modulus: u64, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, bits) = latch_word(&mut aig, width, 0);
        let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
        let inc = word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(width, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &bits, bad_at);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn proves_unreachable_counter_value() {
        // Counter counts 0..5 and wraps; value 7 is unreachable.
        let aig = modular_counter(3, 6, 7);
        let result = verify(&aig, 0, &Options::default());
        assert!(result.verdict.is_proved(), "verdict: {}", result.verdict);
        assert!(result.stats.interpolants > 0);
    }

    #[test]
    fn falsifies_reachable_counter_value() {
        let aig = modular_counter(3, 6, 4);
        let result = verify(&aig, 0, &Options::default());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 4 });
    }

    #[test]
    fn verdicts_match_exact_bdd_reachability() {
        for bad_at in 1..8u64 {
            let aig = modular_counter(3, 6, bad_at);
            let exact = bdd::reach::analyze(&aig, 0, 1_000_000);
            let got = verify(&aig, 0, &Options::default());
            match exact.verdict {
                bdd::BddVerdict::Pass => {
                    assert!(got.verdict.is_proved(), "bad_at={bad_at}: {}", got.verdict)
                }
                bdd::BddVerdict::Fail { depth } => {
                    assert_eq!(got.verdict, Verdict::Falsified { depth }, "bad_at={bad_at}")
                }
                bdd::BddVerdict::Overflow => unreachable!("tiny design cannot overflow"),
            }
        }
    }

    #[test]
    fn timeout_is_reported() {
        let aig = modular_counter(4, 12, 15);
        let options = Options::default().with_timeout(std::time::Duration::ZERO);
        let result = verify(&aig, 0, &options);
        assert!(matches!(result.verdict, Verdict::Inconclusive { .. }));
    }
}
