//! Independent checking of `itpseq-cert/v1` proof certificates.
//!
//! The model-checking engines in `crates/core` attach evidence to their
//! conclusive verdicts: an inductive invariant for `proved`, a replayable
//! input trace for `falsified`.  This crate validates that evidence from
//! scratch, so a certified verdict no longer requires trusting any engine
//! code — the trust path is exactly the design parser ([`aig::parse_aag`]),
//! the Tseitin encoder (`cnf`), the SAT solver (`sat`) and the replay
//! interpreter ([`aig::simulate`](fn@aig::simulate)).
//!
//! An invariant certificate `Inv` for property `p` is accepted when three
//! SAT queries, each built by a fresh [`cnf::Unroller`] over the re-parsed
//! design and discharged by a fresh [`sat::Solver`], are all unsatisfiable:
//!
//! 1. **initiation** — `init ∧ ¬Inv`,
//! 2. **consecution** — `Inv ∧ T ∧ ¬Inv′`,
//! 3. **safety** — `Inv ∧ bad_p`.
//!
//! A trace certificate is accepted when simulating its inputs from the
//! reset state makes `bad_p` fire at *exactly* the reported depth (and at
//! no earlier cycle — the engines report minimal depths).

pub mod json;

use aig::Aig;
use cnf::Unroller;
use json::Json;
use sat::{SolveResult, Solver};

/// One parsed `itpseq-cert/v1` document.
#[derive(Clone, Debug)]
pub struct CertDocument {
    /// Schema tag (`"itpseq-cert/v1"`).
    pub schema: String,
    /// File name of the `.aag` design the certificates talk about,
    /// relative to the document.
    pub design: String,
    /// One entry per verified property.
    pub entries: Vec<CertEntry>,
}

/// One property's record.
#[derive(Clone, Debug)]
pub struct CertEntry {
    /// Bad-property index within the design.
    pub property: usize,
    /// Engine name, when recorded.
    pub engine: Option<String>,
    /// `"proved"`, `"falsified"` or `"inconclusive"`.
    pub verdict: String,
    /// Reported counterexample depth for falsified properties.
    pub depth: Option<usize>,
    /// The evidence.
    pub certificate: Option<Cert>,
}

/// A decoded certificate.
#[derive(Clone, Debug)]
pub enum Cert {
    /// Inductive invariant: CNF clauses over latch literals plus an
    /// optional combinational cone (see `mc::certificate` for the
    /// emitter's description of the encoding).
    Invariant {
        num_latches: usize,
        clauses: Vec<Vec<(usize, bool)>>,
        cone: Option<Cone>,
    },
    /// Replayable input trace: one vector of input values per cycle.
    Trace(Vec<Vec<bool>>),
}

/// The combinational part of an invariant, in AIGER-style `u32` literals:
/// `var = lit >> 1`, LSB = complemented; var 0 is the constant, vars
/// `1..=num_latches` are the latches, var `num_latches + 1 + j` is defined
/// by `ands[j]`.
#[derive(Clone, Debug)]
pub struct Cone {
    pub ands: Vec<(u32, u32)>,
    pub root: u32,
}

/// How one entry fared.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The certificate checked out.
    Accepted,
    /// The entry carries nothing to check (inconclusive verdicts, or a
    /// conclusive verdict whose engine was interrupted before emitting).
    Skipped(String),
    /// The certificate is wrong (or inconsistent with the verdict).
    Rejected(String),
}

/// Parses a full `itpseq-cert/v1` document.
pub fn parse_document(text: &str) -> Result<CertDocument, String> {
    let root = Json::parse(text)?;
    let schema = root
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing \"schema\"")?
        .to_string();
    if schema != "itpseq-cert/v1" {
        return Err(format!("unsupported schema {schema:?}"));
    }
    let design = root
        .get("design")
        .and_then(Json::as_str)
        .ok_or("missing \"design\"")?
        .to_string();
    let mut entries = Vec::new();
    for (index, entry) in root
        .get("properties")
        .and_then(Json::as_array)
        .ok_or("missing \"properties\"")?
        .iter()
        .enumerate()
    {
        entries.push(parse_entry(entry).map_err(|e| format!("properties[{index}]: {e}"))?);
    }
    Ok(CertDocument {
        schema,
        design,
        entries,
    })
}

fn parse_entry(entry: &Json) -> Result<CertEntry, String> {
    let property = entry
        .get("property")
        .and_then(Json::as_usize)
        .ok_or("missing \"property\"")?;
    let engine = entry
        .get("engine")
        .and_then(Json::as_str)
        .map(str::to_string);
    let verdict = entry
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or("missing \"verdict\"")?
        .to_string();
    let depth = entry.get("depth").and_then(Json::as_usize);
    let certificate = entry
        .get("certificate")
        .map(parse_certificate)
        .transpose()?;
    Ok(CertEntry {
        property,
        engine,
        verdict,
        depth,
        certificate,
    })
}

fn parse_certificate(cert: &Json) -> Result<Cert, String> {
    match cert.get("kind").and_then(Json::as_str) {
        Some("invariant") => {
            let num_latches = cert
                .get("num_latches")
                .and_then(Json::as_usize)
                .ok_or("missing \"num_latches\"")?;
            let mut clauses = Vec::new();
            for clause in cert
                .get("clauses")
                .and_then(Json::as_array)
                .ok_or("missing \"clauses\"")?
            {
                let mut lits = Vec::new();
                for lit in clause.as_array().ok_or("clause must be an array")? {
                    let pair = lit.as_array().ok_or("literal must be [latch, phase]")?;
                    let [latch, phase] = pair else {
                        return Err("literal must be [latch, phase]".to_string());
                    };
                    lits.push((
                        latch.as_usize().ok_or("bad latch index")?,
                        phase.as_bool().ok_or("bad literal phase")?,
                    ));
                }
                clauses.push(lits);
            }
            let cone = cert
                .get("cone")
                .map(|cone| -> Result<Cone, String> {
                    let mut ands = Vec::new();
                    for and in cone
                        .get("ands")
                        .and_then(Json::as_array)
                        .ok_or("missing \"ands\"")?
                    {
                        let pair = and.as_array().ok_or("and must be [left, right]")?;
                        let [left, right] = pair else {
                            return Err("and must be [left, right]".to_string());
                        };
                        ands.push((
                            left.as_usize().ok_or("bad and literal")? as u32,
                            right.as_usize().ok_or("bad and literal")? as u32,
                        ));
                    }
                    let root = cone
                        .get("root")
                        .and_then(Json::as_usize)
                        .ok_or("missing \"root\"")? as u32;
                    Ok(Cone { ands, root })
                })
                .transpose()?;
            Ok(Cert::Invariant {
                num_latches,
                clauses,
                cone,
            })
        }
        Some("trace") => {
            let mut frames = Vec::new();
            for frame in cert
                .get("inputs")
                .and_then(Json::as_array)
                .ok_or("missing \"inputs\"")?
            {
                frames.push(
                    frame
                        .as_array()
                        .ok_or("input frame must be an array")?
                        .iter()
                        .map(|b| b.as_bool().ok_or("input values must be booleans"))
                        .collect::<Result<Vec<bool>, _>>()?,
                );
            }
            Ok(Cert::Trace(frames))
        }
        other => Err(format!("unknown certificate kind {other:?}")),
    }
}

/// Checks one entry against the (re-parsed) design.
pub fn check_entry(design: &Aig, entry: &CertEntry) -> Outcome {
    if entry.property >= design.num_bad() {
        return Outcome::Rejected(format!(
            "property {} out of range (design has {})",
            entry.property,
            design.num_bad()
        ));
    }
    match (entry.verdict.as_str(), &entry.certificate) {
        ("inconclusive", _) => Outcome::Skipped("inconclusive".to_string()),
        (
            "proved",
            Some(Cert::Invariant {
                num_latches,
                clauses,
                cone,
            }),
        ) => match check_invariant(design, entry.property, *num_latches, clauses, cone.as_ref()) {
            Ok(()) => Outcome::Accepted,
            Err(reason) => Outcome::Rejected(reason),
        },
        ("falsified", Some(Cert::Trace(inputs))) => {
            let Some(depth) = entry.depth else {
                return Outcome::Rejected("falsified entry without a depth".to_string());
            };
            match check_trace(design, entry.property, depth, inputs) {
                Ok(()) => Outcome::Accepted,
                Err(reason) => Outcome::Rejected(reason),
            }
        }
        ("proved" | "falsified", None) => Outcome::Skipped("no certificate".to_string()),
        (verdict, Some(_)) => Outcome::Rejected(format!(
            "certificate kind does not match verdict {verdict:?}"
        )),
        (verdict, None) => Outcome::Skipped(format!("unknown verdict {verdict:?}")),
    }
}

/// Rebuilds the invariant formula as fresh AND nodes over the design's
/// latches, returning its literal.  The extended graph changes nothing
/// about the transition relation — the new nodes only read latch outputs.
fn build_invariant(
    design: &mut Aig,
    num_latches: usize,
    clauses: &[Vec<(usize, bool)>],
    cone: Option<&Cone>,
) -> Result<aig::Lit, String> {
    let mut parts = Vec::new();
    for clause in clauses {
        let mut lits = Vec::with_capacity(clause.len());
        for &(latch, phase) in clause {
            if latch >= num_latches {
                return Err(format!("clause literal references latch {latch}"));
            }
            let lit = design.latch_lit(latch);
            lits.push(if phase { lit } else { !lit });
        }
        parts.push(design.or_many(lits));
    }
    if let Some(cone) = cone {
        // Replay the cone's and-list over a var → literal table.
        let mut vars: Vec<aig::Lit> = Vec::with_capacity(num_latches + 1 + cone.ands.len());
        vars.push(aig::Lit::FALSE);
        for latch in 0..num_latches {
            vars.push(design.latch_lit(latch));
        }
        let decode = |vars: &[aig::Lit], lit: u32| -> Result<aig::Lit, String> {
            let var = (lit >> 1) as usize;
            let base = *vars
                .get(var)
                .ok_or_else(|| format!("cone literal {lit} references an undefined var"))?;
            Ok(if lit & 1 == 1 { !base } else { base })
        };
        for &(left, right) in &cone.ands {
            let l = decode(&vars, left)?;
            let r = decode(&vars, right)?;
            vars.push(design.and(l, r));
        }
        parts.push(decode(&vars, cone.root)?);
    }
    Ok(design.and_many(parts))
}

/// Discharges one query: returns `Ok(())` when the CNF built by
/// `build` (on a fresh unroller over `design`) is unsatisfiable.
fn expect_unsat(
    design: &Aig,
    what: &str,
    build: impl FnOnce(&mut Unroller<'_>),
) -> Result<(), String> {
    let mut unroller = Unroller::new(design);
    build(&mut unroller);
    let cnf = unroller.into_cnf();
    let mut solver = Solver::new();
    solver.add_cnf(&cnf);
    match solver.solve() {
        SolveResult::Unsat => Ok(()),
        SolveResult::Sat => Err(format!("{what} query is satisfiable")),
        SolveResult::Interrupted => Err(format!("{what} query was interrupted")),
    }
}

/// Validates an invariant certificate by the three induction queries.
pub fn check_invariant(
    design: &Aig,
    property: usize,
    num_latches: usize,
    clauses: &[Vec<(usize, bool)>],
    cone: Option<&Cone>,
) -> Result<(), String> {
    if num_latches != design.num_latches() {
        return Err(format!(
            "certificate is over {num_latches} latches, design has {}",
            design.num_latches()
        ));
    }
    let mut extended = design.clone();
    let inv = build_invariant(&mut extended, num_latches, clauses, cone)?;

    // 1. Initiation: init ∧ ¬Inv is unsatisfiable.
    expect_unsat(&extended, "initiation", |unroller| {
        unroller.assert_initial(0);
        let inv0 = unroller.lit(0, inv);
        unroller.assert_lit(!inv0);
    })?;
    // 2. Consecution: Inv ∧ T ∧ ¬Inv′ is unsatisfiable.
    expect_unsat(&extended, "consecution", |unroller| {
        let inv0 = unroller.lit(0, inv);
        unroller.assert_lit(inv0);
        unroller.add_frame();
        let inv1 = unroller.lit(1, inv);
        unroller.assert_lit(!inv1);
    })?;
    // 3. Safety: Inv ∧ bad is unsatisfiable (inputs left free).
    expect_unsat(&extended, "safety", |unroller| {
        let inv0 = unroller.lit(0, inv);
        unroller.assert_lit(inv0);
        let bad = unroller.bad_lit(0, property);
        unroller.assert_lit(bad);
    })
}

/// Validates a trace certificate by replaying it from the reset state.
pub fn check_trace(
    design: &Aig,
    property: usize,
    depth: usize,
    inputs: &[Vec<bool>],
) -> Result<(), String> {
    if inputs.len() != depth + 1 {
        return Err(format!(
            "trace has {} cycles, depth {depth} needs {}",
            inputs.len(),
            depth + 1
        ));
    }
    for (cycle, frame) in inputs.iter().enumerate() {
        if frame.len() != design.num_inputs() {
            return Err(format!(
                "cycle {cycle} drives {} inputs, design has {}",
                frame.len(),
                design.num_inputs()
            ));
        }
    }
    let sim = aig::simulate(design, inputs);
    for cycle in 0..depth {
        if sim.bad[cycle][property] {
            return Err(format!(
                "bad fires already at cycle {cycle}, depth {depth} is not minimal"
            ));
        }
    }
    if !sim.bad[depth][property] {
        return Err(format!("bad does not fire at the reported depth {depth}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-bit mod-6 counter with `bad = (count == bad_at)`.
    fn counter(bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, bits) = aig::builder::latch_word(&mut aig, 3, 0);
        let wrap = aig::builder::word_equals_const(&mut aig, &bits, 5);
        let inc = aig::builder::word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(3, 0);
        let next = aig::builder::word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = aig::builder::word_equals_const(&mut aig, &bits, bad_at);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn accepts_a_correct_clause_invariant() {
        // "count <= 5" as clauses: ¬(b0 ∧ b1 ∧ b2) and ¬(¬b0 ∧ b1 ∧ b2)
        // — i.e. the two unreachable values 6 and 7 excluded.
        let aig = counter(7);
        let clauses = vec![
            vec![(0usize, false), (1, false), (2, false)],
            vec![(0, true), (1, false), (2, false)],
        ];
        check_invariant(&aig, 0, 3, &clauses, None).unwrap();
    }

    #[test]
    fn rejects_a_non_inductive_invariant() {
        // "count != 7" alone is not inductive: 6 steps to 7.
        let aig = counter(7);
        let clauses = vec![vec![(0usize, false), (1, false), (2, false)]];
        let err = check_invariant(&aig, 0, 3, &clauses, None).unwrap_err();
        assert!(err.contains("consecution"), "{err}");
    }

    #[test]
    fn rejects_an_unsafe_invariant() {
        // The empty clause list is the TRUE invariant: inductive and
        // initiated, but it does not exclude the bad states.
        let aig = counter(3);
        let err = check_invariant(&aig, 0, 3, &[], None).unwrap_err();
        assert!(err.contains("safety"), "{err}");
    }

    #[test]
    fn rejects_an_uninitiated_invariant() {
        // "count == 1" excludes the reset state.
        let aig = counter(7);
        let clauses = vec![vec![(0usize, true)], vec![(1, false)], vec![(2, false)]];
        let err = check_invariant(&aig, 0, 3, &clauses, None).unwrap_err();
        assert!(err.contains("initiation"), "{err}");
    }

    #[test]
    fn replays_traces_and_demands_exact_depth() {
        let aig = counter(3);
        let trace = vec![Vec::new(); 4];
        check_trace(&aig, 0, 3, &trace).unwrap();
        assert!(check_trace(&aig, 0, 2, &trace[..3]).is_err(), "too short");
        assert!(
            check_trace(&aig, 0, 4, &vec![Vec::new(); 5]).is_err(),
            "not minimal"
        );
    }

    #[test]
    fn parses_emitted_documents() {
        let doc = r#"{
  "schema": "itpseq-cert/v1",
  "design": "counter.aag",
  "properties": [
    {"property":0,"engine":"PDR","verdict":"proved","certificate":{"kind":"invariant","num_latches":2,"clauses":[[[0,false],[1,true]]],"cone":{"ands":[[2,4]],"root":6}}},
    {"property":1,"verdict":"falsified","depth":1,"certificate":{"kind":"trace","inputs":[[true],[false]]}},
    {"property":2,"verdict":"inconclusive"}
  ]
}"#;
        let parsed = parse_document(doc).unwrap();
        assert_eq!(parsed.design, "counter.aag");
        assert_eq!(parsed.entries.len(), 3);
        let Some(Cert::Invariant {
            num_latches,
            clauses,
            cone: Some(cone),
        }) = &parsed.entries[0].certificate
        else {
            panic!("bad invariant entry");
        };
        assert_eq!((*num_latches, clauses.len()), (2, 1));
        assert_eq!((cone.ands[0], cone.root), ((2, 4), 6));
        let Some(Cert::Trace(inputs)) = &parsed.entries[1].certificate else {
            panic!("bad trace entry");
        };
        assert_eq!(inputs, &vec![vec![true], vec![false]]);
        assert!(parsed.entries[2].certificate.is_none());
    }
}
