//! Round-robin arbiters.

use aig::builder::at_most_one;
use aig::{Aig, Lit};

/// A round-robin arbiter over `clients` requesters.
///
/// A one-hot priority token rotates every cycle; a client is granted when
/// it requests and holds the priority token, so at most one grant can be
/// active at any time — this mutual-exclusion property is the bad-state
/// output.  With `seeded_bug`, client 0 is additionally granted whenever it
/// requests (regardless of priority), which breaks mutual exclusion.
pub fn round_robin(clients: usize, seeded_bug: bool) -> Aig {
    assert!(clients >= 2, "an arbiter needs at least two clients");
    let mut aig = Aig::new();
    aig.set_name(format!(
        "arbiter{clients}{}",
        if seeded_bug { "bug" } else { "ok" }
    ));
    let requests: Vec<Lit> = (0..clients)
        .map(|_| Lit::positive(aig.add_input()))
        .collect();
    // Priority token ring.
    let token_latches: Vec<usize> = (0..clients).map(|i| aig.add_latch(i == 0)).collect();
    let token: Vec<Lit> = token_latches.iter().map(|&l| aig.latch_lit(l)).collect();
    for i in 0..clients {
        let prev = token[(i + clients - 1) % clients];
        aig.set_next(token_latches[i], prev);
    }
    // Grant registers.
    let grant_latches: Vec<usize> = (0..clients).map(|_| aig.add_latch(false)).collect();
    let grants: Vec<Lit> = grant_latches.iter().map(|&l| aig.latch_lit(l)).collect();
    for i in 0..clients {
        let legitimate = aig.and(requests[i], token[i]);
        let next = if seeded_bug && i == 0 {
            aig.or(legitimate, requests[0])
        } else {
            legitimate
        };
        aig.set_next(grant_latches[i], next);
    }
    let exclusive = at_most_one(&mut aig, &grants);
    aig.add_bad(!exclusive);
    aig
}

/// The multi-property round-robin arbiter: one bad-state property *per
/// client* instead of one global mutual-exclusion output.
///
/// Property `i` states "client `i` is never granted while another client
/// is granted at the same time".  On the correct arbiter every property
/// holds; with `seeded_bug`, client 0 is granted whenever it requests, so
/// every client that can legitimately hold a grant concurrently with
/// client 0 fails its property — a design whose properties share almost
/// all of their cones of influence yet fail at different depths.
pub fn round_robin_multi(clients: usize, seeded_bug: bool) -> Aig {
    assert!(clients >= 2, "an arbiter needs at least two clients");
    let mut aig = Aig::new();
    aig.set_name(format!(
        "arbiter{clients}{}multi",
        if seeded_bug { "bug" } else { "ok" }
    ));
    let requests: Vec<Lit> = (0..clients)
        .map(|_| Lit::positive(aig.add_input()))
        .collect();
    let token_latches: Vec<usize> = (0..clients).map(|i| aig.add_latch(i == 0)).collect();
    let token: Vec<Lit> = token_latches.iter().map(|&l| aig.latch_lit(l)).collect();
    for i in 0..clients {
        let prev = token[(i + clients - 1) % clients];
        aig.set_next(token_latches[i], prev);
    }
    let grant_latches: Vec<usize> = (0..clients).map(|_| aig.add_latch(false)).collect();
    let grants: Vec<Lit> = grant_latches.iter().map(|&l| aig.latch_lit(l)).collect();
    for i in 0..clients {
        let legitimate = aig.and(requests[i], token[i]);
        let next = if seeded_bug && i == 0 {
            aig.or(legitimate, requests[0])
        } else {
            legitimate
        };
        aig.set_next(grant_latches[i], next);
    }
    for i in 0..clients {
        let others: Vec<Lit> = (0..clients)
            .filter(|&j| j != i)
            .map(|j| grants[j])
            .collect();
        let any_other = aig.or_many(others);
        let clash = aig.and(grants[i], any_other);
        aig.add_bad(clash);
    }
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_arbiter_grants_at_most_one_client() {
        let aig = round_robin(4, false);
        // Everyone requests every cycle.
        let stim: Vec<Vec<bool>> = vec![vec![true; 4]; 20];
        assert_eq!(aig::simulate(&aig, &stim).first_failure(), None);
    }

    #[test]
    fn buggy_arbiter_double_grants() {
        let aig = round_robin(3, true);
        let stim: Vec<Vec<bool>> = vec![vec![true; 3]; 6];
        assert!(aig::simulate(&aig, &stim).first_failure().is_some());
    }

    #[test]
    fn exact_reachability_confirms_verdicts() {
        assert_eq!(
            bdd::reach::analyze(&round_robin(3, false), 0, 200_000).verdict,
            bdd::BddVerdict::Pass
        );
        assert!(matches!(
            bdd::reach::analyze(&round_robin(3, true), 0, 200_000).verdict,
            bdd::BddVerdict::Fail { .. }
        ));
    }

    #[test]
    fn multi_arbiter_has_one_property_per_client() {
        let ok = round_robin_multi(4, false);
        assert_eq!(ok.num_bad(), 4);
        let stim: Vec<Vec<bool>> = vec![vec![true; 4]; 20];
        assert_eq!(aig::simulate(&ok, &stim).first_failure(), None);

        let buggy = round_robin_multi(3, true);
        let stim: Vec<Vec<bool>> = vec![vec![true; 3]; 8];
        let trace = aig::simulate(&buggy, &stim);
        // The seeded bug double-grants, so at least client 0's property
        // (and the clashing client's) fails under the all-ones stimulus.
        let failed: Vec<usize> = (0..3)
            .filter(|&p| trace.bad.iter().any(|cycle| cycle[p]))
            .collect();
        assert!(failed.contains(&0), "client 0 must clash: {failed:?}");
        assert!(
            failed.len() >= 2,
            "a clash involves two clients: {failed:?}"
        );
    }

    #[test]
    fn latch_count_scales_with_clients() {
        assert_eq!(round_robin(5, false).num_latches(), 10);
        assert_eq!(round_robin(8, false).num_inputs(), 8);
    }
}
