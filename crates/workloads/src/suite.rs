//! The curated benchmark suites used by the experiment regenerators.

use crate::{arbiter, counter, fifo, industrial, token_ring, traffic};
use aig::Aig;

/// Size class of a benchmark, mirroring the two halves of the paper's
/// Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchmarkClass {
    /// Publicly-available-style mid-size problems (upper half of Table I).
    MidSize,
    /// Industrial-style problems with large irrelevant state
    /// (lower half of Table I).
    Industrial,
}

/// A named benchmark instance.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Unique, human-readable name (also the design name of the AIG).
    pub name: String,
    /// The design; bad-state property 0 is the one to verify.
    pub aig: Aig,
    /// Expected verdict when known: `Some(true)` = the property fails,
    /// `Some(false)` = the property holds, `None` = unknown a priori.
    pub expect_fail: Option<bool>,
    /// Which half of Table I the instance belongs to.
    pub class: BenchmarkClass,
}

impl Benchmark {
    fn new(aig: Aig, expect_fail: Option<bool>, class: BenchmarkClass) -> Benchmark {
        Benchmark {
            name: aig.name().to_string(),
            aig,
            expect_fail,
            class,
        }
    }
}

/// The mid-size suite: counters, rings, arbiters, FIFOs and traffic
/// controllers of varying depth, both passing and failing.
pub fn mid_size() -> Vec<Benchmark> {
    let mut suite = Vec::new();
    // Counters: passing (bad value out of range) and failing at several
    // depths, to spread convergence bounds.
    for (width, modulus) in [(3usize, 6u64), (4, 10), (4, 14), (5, 20), (5, 28)] {
        suite.push(Benchmark::new(
            counter::modular(width, modulus, (1 << width) - 1),
            Some(false),
            BenchmarkClass::MidSize,
        ));
        suite.push(Benchmark::new(
            counter::modular(width, modulus, modulus - 1),
            Some(true),
            BenchmarkClass::MidSize,
        ));
    }
    // Gated counters (deeper counterexamples, harder bound-k checks).
    for (width, modulus) in [(3usize, 7u64), (4, 12)] {
        suite.push(Benchmark::new(
            counter::gated(width, modulus, (1 << width) - 1),
            Some(false),
            BenchmarkClass::MidSize,
        ));
        suite.push(Benchmark::new(
            counter::gated(width, modulus, modulus / 2),
            Some(true),
            BenchmarkClass::MidSize,
        ));
    }
    // Synchronised counters.
    suite.push(Benchmark::new(
        counter::synchronised(3, 5, 7, 4),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    suite.push(Benchmark::new(
        counter::synchronised(3, 4, 6, 5),
        Some(false),
        BenchmarkClass::MidSize,
    ));
    // Token rings.
    for stations in [4usize, 6, 8] {
        suite.push(Benchmark::new(
            token_ring::ring(stations, false),
            Some(false),
            BenchmarkClass::MidSize,
        ));
    }
    suite.push(Benchmark::new(
        token_ring::ring(5, true),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    // Arbiters.
    for clients in [3usize, 4, 5] {
        suite.push(Benchmark::new(
            arbiter::round_robin(clients, false),
            Some(false),
            BenchmarkClass::MidSize,
        ));
    }
    suite.push(Benchmark::new(
        arbiter::round_robin(4, true),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    // FIFO controllers.
    for width in [2usize, 3, 4] {
        suite.push(Benchmark::new(
            fifo::controller(width, false),
            Some(false),
            BenchmarkClass::MidSize,
        ));
    }
    suite.push(Benchmark::new(
        fifo::controller(3, true),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    // Traffic controllers.
    suite.push(Benchmark::new(
        traffic::crossing(3, false),
        Some(false),
        BenchmarkClass::MidSize,
    ));
    suite.push(Benchmark::new(
        traffic::crossing(4, false),
        Some(false),
        BenchmarkClass::MidSize,
    ));
    suite.push(Benchmark::new(
        traffic::crossing(3, true),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    suite
}

/// The industrial-like suite: control pipelines surrounded by irrelevant
/// payload state of increasing size.
pub fn industrial() -> Vec<Benchmark> {
    let mut suite = Vec::new();
    let configs = [
        // (counter_bits, modulus, bad_at, pipeline, payload, seed, fails)
        (4usize, 10u64, 12u64, 3usize, 16usize, 11u64, false),
        (4, 10, 7, 3, 16, 12, true),
        (4, 12, 14, 4, 32, 13, false),
        (4, 12, 9, 4, 32, 14, true),
        (5, 20, 24, 5, 48, 15, false),
        (5, 18, 11, 5, 48, 16, true),
        (5, 24, 28, 6, 64, 17, false),
    ];
    for (counter_bits, modulus, bad_at, pipeline_depth, payload_latches, seed, fails) in configs {
        let params = industrial::IndustrialParams {
            counter_bits,
            modulus,
            bad_at,
            pipeline_depth,
            payload_latches,
            seed,
        };
        suite.push(Benchmark::new(
            industrial::pipeline(params),
            Some(fails),
            BenchmarkClass::Industrial,
        ));
    }
    suite
}

/// The full suite (mid-size plus industrial-like), as used by Fig. 6.
pub fn full() -> Vec<Benchmark> {
    let mut suite = mid_size();
    suite.extend(industrial());
    suite
}

/// A named multi-property benchmark instance: one design carrying several
/// bad-state properties, as `verify_all` consumes them.
#[derive(Clone, Debug)]
pub struct MultiBenchmark {
    /// Unique, human-readable name (also the design name of the AIG).
    pub name: String,
    /// The design; every bad-state literal is a property to verify.
    pub aig: Aig,
    /// Expected per-property verdicts when known (indexed like the bad
    /// literals): `Some(true)` = the property fails, `Some(false)` = it
    /// holds, `None` = unknown a priori.
    pub expect_fail: Vec<Option<bool>>,
}

impl MultiBenchmark {
    fn new(aig: Aig, expect_fail: Vec<Option<bool>>) -> MultiBenchmark {
        assert_eq!(
            aig.num_bad(),
            expect_fail.len(),
            "one expectation per property"
        );
        MultiBenchmark {
            name: aig.name().to_string(),
            aig,
            expect_fail,
        }
    }
}

/// The multi-property suite: designs with several bad-state outputs whose
/// verdicts mix `Proved` and `Falsified` (at different depths), used by
/// the `verify_all` agreement and determinism tests.  The single-property
/// suites above are deliberately untouched — their benches and tables
/// still verify property 0 only.
pub fn multi_property() -> Vec<MultiBenchmark> {
    let fails = |bad_ats: &[u64], modulus: u64| -> Vec<Option<bool>> {
        bad_ats.iter().map(|&b| Some(b < modulus)).collect()
    };
    let mut suite = Vec::new();
    // Counters with thresholds on both sides of the modulus: properties
    // retire one by one as BMC reaches their depths, the rest prove.
    for (width, modulus, bad_ats) in [
        (4usize, 10u64, vec![3u64, 11, 7, 15]),
        (3, 6, vec![0, 5, 7]),
        (5, 20, vec![9, 21, 14, 30, 2]),
    ] {
        suite.push(MultiBenchmark::new(
            counter::modular_multi(width, modulus, &bad_ats),
            fails(&bad_ats, modulus),
        ));
    }
    // Arbiters with per-client safety properties: heavily overlapping
    // cones of influence, all-pass and all-fail variants.
    suite.push(MultiBenchmark::new(
        arbiter::round_robin_multi(3, false),
        vec![Some(false); 3],
    ));
    suite.push(MultiBenchmark::new(
        arbiter::round_robin_multi(3, true),
        vec![None; 3],
    ));
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_names_are_unique() {
        let names: HashSet<String> = full().into_iter().map(|b| b.name).collect();
        assert_eq!(names.len(), full().len());
    }

    #[test]
    fn suite_mixes_passing_and_failing_instances() {
        let suite = full();
        let failing = suite.iter().filter(|b| b.expect_fail == Some(true)).count();
        let passing = suite
            .iter()
            .filter(|b| b.expect_fail == Some(false))
            .count();
        assert!(failing >= 8, "failing instances: {failing}");
        assert!(passing >= 15, "passing instances: {passing}");
    }

    #[test]
    fn every_benchmark_has_a_property() {
        // The single-property suites verify property 0; requiring *at
        // least* one bad output (instead of exactly one, as this test
        // used to) is what lets multi-bad designs join the workloads
        // without breaking the per-property tables.
        for b in full() {
            assert!(b.aig.num_bad() >= 1, "{}", b.name);
            assert!(b.aig.num_latches() >= 1, "{}", b.name);
        }
    }

    #[test]
    fn multi_property_suite_is_well_formed() {
        let suite = multi_property();
        assert!(suite.len() >= 4);
        let names: HashSet<String> = suite.iter().map(|b| b.name.clone()).collect();
        assert_eq!(names.len(), suite.len(), "names must be unique");
        let mut failing = 0;
        let mut passing = 0;
        for b in &suite {
            assert!(b.aig.num_bad() >= 2, "{} must be multi-property", b.name);
            assert_eq!(b.expect_fail.len(), b.aig.num_bad());
            failing += b.expect_fail.iter().filter(|e| **e == Some(true)).count();
            passing += b.expect_fail.iter().filter(|e| **e == Some(false)).count();
        }
        assert!(failing >= 4, "failing properties: {failing}");
        assert!(passing >= 4, "passing properties: {passing}");
        // The single-property suites are untouched by the multi variants.
        assert!(full().iter().all(|b| b.aig.num_bad() == 1));
    }

    #[test]
    fn multi_property_expectations_are_confirmed_by_simulation() {
        for b in multi_property() {
            let stim: Vec<Vec<bool>> = (0..64).map(|_| vec![true; b.aig.num_inputs()]).collect();
            let sim = aig::simulate(&b.aig, &stim);
            for (p, expect) in b.expect_fail.iter().enumerate() {
                let fired = sim.bad.iter().any(|cycle| cycle[p]);
                match expect {
                    // All-ones is one stimulus, not all of them: a failing
                    // property need not fire under it when the design has
                    // free inputs, but a firing property must be expected
                    // to fail.
                    Some(false) => assert!(!fired, "{} property {p}", b.name),
                    Some(true) if b.aig.num_inputs() == 0 => {
                        assert!(fired, "{} property {p}", b.name)
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn industrial_instances_are_larger_than_mid_size_ones() {
        let mid_max = mid_size()
            .iter()
            .map(|b| b.aig.num_latches())
            .max()
            .unwrap();
        let ind_min = industrial()
            .iter()
            .map(|b| b.aig.num_latches())
            .min()
            .unwrap();
        assert!(ind_min >= mid_max.min(20));
    }

    #[test]
    fn expected_failures_are_confirmed_by_simulation() {
        // Drive every input high for a generous number of cycles; all the
        // seeded-bug instances in the suite fail under this stimulus or are
        // validated by the engine tests elsewhere.
        for b in full() {
            if b.expect_fail == Some(true) {
                let stim: Vec<Vec<bool>> =
                    (0..64).map(|_| vec![true; b.aig.num_inputs()]).collect();
                let sim = aig::simulate(&b.aig, &stim);
                assert!(
                    sim.first_failure().is_some() || b.aig.num_inputs() > 1,
                    "{} should fail under an all-ones stimulus",
                    b.name
                );
            }
        }
    }
}
