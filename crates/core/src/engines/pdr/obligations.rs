//! The proof-obligation priority queue of the PDR blocking phase.

use super::frames::Cube;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One proof obligation: "`cube` must be shown unreachable at `frame`".
///
/// `depth` is the number of transitions from any state in the cube to a
/// state exhibiting the bad property — when an obligation reaches frame 0
/// its cube contains an initial state and `depth` is the exact length of
/// the counterexample.  Because obligations are never pushed forward to
/// higher frames, `frame + depth` equals the level at which the chain
/// started, so reported counterexamples are depth-minimal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Obligation {
    /// Frame the cube must be blocked at.
    pub frame: usize,
    /// Backward distance (in transitions) to a bad state.
    pub depth: usize,
    /// The states to block.
    pub cube: Cube,
    /// Index into the engine's path arena: the input vector that steps a
    /// state of this cube towards bad, linked to the successor
    /// obligation's entry.  Walking the links from a frame-0 obligation
    /// reconstructs a replayable counterexample input trace.
    pub path: u32,
}

impl Ord for Obligation {
    fn cmp(&self, other: &Self) -> Ordering {
        // Lowest frame first (deepest in the trace); break ties towards
        // smaller cubes (more general), then deterministically by content.
        // The path index (assigned in deterministic discovery order) is
        // the final tiebreak, keeping Ord consistent with Eq.
        self.frame
            .cmp(&other.frame)
            .then_with(|| self.cube.len().cmp(&other.cube.len()))
            .then_with(|| self.cube.cmp(&other.cube))
            .then_with(|| self.depth.cmp(&other.depth))
            .then_with(|| self.path.cmp(&other.path))
    }
}

impl PartialOrd for Obligation {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-queue of proof obligations, keyed by [`Obligation`]'s ordering.
#[derive(Clone, Debug, Default)]
pub(crate) struct ObligationQueue {
    heap: BinaryHeap<Reverse<Obligation>>,
}

impl ObligationQueue {
    /// Creates an empty queue.
    pub fn new() -> ObligationQueue {
        ObligationQueue::default()
    }

    /// Enqueues an obligation.
    pub fn push(&mut self, obligation: Obligation) {
        self.heap.push(Reverse(obligation));
    }

    /// Removes and returns the most urgent obligation (lowest frame).
    pub fn pop(&mut self) -> Option<Obligation> {
        self.heap.pop().map(|Reverse(o)| o)
    }

    /// Drops every obligation (after a counterexample or a completed
    /// blocking phase).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Returns `true` when no obligations are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ob(frame: usize, depth: usize, lits: &[(usize, bool)]) -> Obligation {
        Obligation {
            frame,
            depth,
            cube: Cube::new(lits.to_vec()),
            path: 0,
        }
    }

    #[test]
    fn pops_lowest_frame_first() {
        let mut q = ObligationQueue::new();
        q.push(ob(3, 0, &[(0, true)]));
        q.push(ob(1, 2, &[(0, false)]));
        q.push(ob(2, 1, &[(1, true)]));
        assert_eq!(q.pop().unwrap().frame, 1);
        assert_eq!(q.pop().unwrap().frame, 2);
        assert_eq!(q.pop().unwrap().frame, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_prefer_smaller_cubes() {
        let mut q = ObligationQueue::new();
        q.push(ob(2, 1, &[(0, true), (1, true)]));
        q.push(ob(2, 1, &[(1, false)]));
        assert_eq!(q.pop().unwrap().cube.len(), 1);
        assert_eq!(q.pop().unwrap().cube.len(), 2);
    }

    #[test]
    fn clear_empties_the_queue() {
        let mut q = ObligationQueue::new();
        q.push(ob(1, 0, &[(0, true)]));
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
