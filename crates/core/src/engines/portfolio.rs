//! The racing engine portfolio (`Engine::Portfolio`).
//!
//! The paper's own Table I is the motivation: no single engine dominates —
//! BMC wins on failing properties, the interpolation-sequence variants on
//! shallow proofs, PDR on large designs with small inductive invariants.
//! This module turns that observation into a mode: the entrants of
//! [`ENTRANTS`] race on worker threads, the first *conclusive* verdict
//! wins, and the losers are cancelled through their [`CancelToken`]s (each
//! engine polls its token in its main loop and hands the flag to its SAT
//! solvers, so even a query mid-flight stops within a bounded number of
//! conflicts).
//!
//! # Determinism
//!
//! Racing decides *when* engines stop, never *what* they answer:
//!
//! * all entrants agree on `Falsified` depths — every engine in this
//!   workspace reports depth-minimal counterexamples (checked by the
//!   engine-agreement suite), so a falsifying portfolio verdict is the
//!   same no matter who wins the race;
//! * conclusive verdict *kinds* agree by soundness — an engine never
//!   proves a failing property or falsifies a holding one;
//! * the adopted result is chosen by fixed entrant precedence among the
//!   conclusive finishers, not by arrival order, so the `Proved`
//!   bookkeeping (`k_fp`, `j_fp`) is as stable as the race allows.
//!
//! A cancelled loser returns `Inconclusive("cancelled")`, which is never
//! adopted over a conclusive result.
//!
//! # Thread budget
//!
//! [`Options::threads`] is the worker budget with the usual convention
//! (`0` = ask the machine, `1` = sequential, `n` = exactly `n`).  The
//! race itself always runs one thread per entrant — that is what a
//! portfolio *is* — but the budget decides how much parallelism the
//! entrants get internally: whatever exceeds the racing threads feeds
//! PDR's parallel per-frame propagation and generalization (see
//! [`crate::engines::pdr`]).  With the default budget of 1, every
//! entrant runs its deterministic sequential reference.
//!
//! # Multiple properties
//!
//! `Engine::Portfolio.verify_all` does *not* loop this race per
//! property: [`crate::multi::scheduler`] groups the properties by
//! cone-of-influence overlap and races the amortized multi-PDR and
//! multi-BMC backends per group, with per-property retirement across
//! the race.

use crate::engines::CancelToken;
use crate::{Engine, EngineResult, Options, StopReason, Verdict};
use aig::Aig;
use std::cmp::Reverse;
use std::sync::mpsc;
use std::time::{Duration, Instant};
use telemetry::ArgValue;

/// The racing lineup, in adoption-precedence order: PDR (the strongest
/// prover), ITPSEQCBA (the paper's best interpolation engine), BMC (the
/// fastest falsifier).
pub const ENTRANTS: [Engine; 3] = [Engine::Pdr, Engine::ItpSeqCba, Engine::Bmc];

/// Races the [`ENTRANTS`] on bad-state property `bad_index`; the first
/// conclusive verdict wins and the losers are cancelled.
pub fn verify(aig: &Aig, bad_index: usize, options: &Options) -> EngineResult {
    verify_with_cancel(aig, bad_index, options, &CancelToken::new())
}

/// [`verify`] under an outer cancellation token; cancelling it cancels
/// every entrant.
pub fn verify_with_cancel(
    aig: &Aig,
    bad_index: usize,
    options: &Options,
    cancel: &CancelToken,
) -> EngineResult {
    let start = Instant::now();
    let telemetry = &options.telemetry;
    let _race = telemetry.span_args("portfolio.race", || {
        vec![
            ("entrants", ArgValue::U64(ENTRANTS.len() as u64)),
            ("bad", ArgValue::U64(bad_index as u64)),
        ]
    });
    let budget = options.effective_threads();
    // One racing thread per entrant; what remains feeds PDR's parallel
    // frame phases.
    let pdr_workers = budget.saturating_sub(ENTRANTS.len() - 1).max(1);
    let tokens: Vec<CancelToken> = ENTRANTS.iter().map(|_| CancelToken::new()).collect();
    let configs: Vec<Options> = ENTRANTS
        .iter()
        .map(|&engine| {
            let threads = if engine == Engine::Pdr {
                pdr_workers
            } else {
                1
            };
            // Each entrant traces onto its own named track, so a Chrome
            // trace shows the race as parallel per-entrant timelines.
            options
                .clone()
                .with_threads(threads)
                .with_telemetry(telemetry.scoped(engine.name()))
        })
        .collect();

    // An already-cancelled outer token must reach the entrants *before*
    // they start: otherwise a fast entrant could race to a conclusive
    // verdict inside the first poll interval of the loop below.
    if cancel.is_cancelled() {
        for token in &tokens {
            token.cancel();
        }
    }

    let (tx, rx) = mpsc::channel::<(usize, EngineResult)>();
    let collected: Vec<Option<EngineResult>> = std::thread::scope(|scope| {
        for (slot, &engine) in ENTRANTS.iter().enumerate() {
            let tx = tx.clone();
            let token = tokens[slot].clone();
            let config = &configs[slot];
            telemetry.instant_args("entrant.start", || {
                vec![("entrant", ArgValue::Str(engine.name().to_string()))]
            });
            scope.spawn(move || {
                // Entrants run directly on `aig`: the staged pipeline
                // entry already preprocessed the model once for the
                // whole race.
                let result = engine.dispatch(aig, bad_index, config, &token);
                let _ = tx.send((slot, result));
            });
        }
        drop(tx);
        let mut collected: Vec<Option<EngineResult>> = vec![None; ENTRANTS.len()];
        let mut pending = ENTRANTS.len();
        let mut decided = false;
        while pending > 0 {
            match rx.recv_timeout(Duration::from_millis(20)) {
                Ok((slot, result)) => {
                    pending -= 1;
                    telemetry.instant_args("entrant.done", || {
                        vec![
                            ("entrant", ArgValue::Str(ENTRANTS[slot].name().to_string())),
                            ("verdict", ArgValue::Str(result.verdict.to_string())),
                        ]
                    });
                    if !decided && result.verdict.is_conclusive() {
                        decided = true;
                        telemetry.instant_args("entrant.cancel", || {
                            vec![(
                                "first_conclusive",
                                ArgValue::Str(ENTRANTS[slot].name().to_string()),
                            )]
                        });
                        for token in &tokens {
                            token.cancel();
                        }
                    }
                    collected[slot] = Some(result);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if cancel.is_cancelled() {
                        for token in &tokens {
                            token.cancel();
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        collected
    });

    // A race in which *every* entrant faulted has no meaningful "furthest"
    // entrant to adopt: report one machine-readable Inconclusive carrying
    // the per-entrant panic reasons, with no winner tagged (the aggregated
    // stats still cover all entrants).
    let all_faulted = !collected.is_empty()
        && collected.iter().all(|slot| {
            matches!(
                slot.as_ref().map(|r| &r.verdict),
                Some(Verdict::Inconclusive {
                    reason: StopReason::Panic(_),
                    ..
                })
            )
        });
    if all_faulted {
        let mut stats = crate::EngineStats {
            visible_latches: aig.num_latches(),
            ..Default::default()
        };
        let mut reasons = Vec::new();
        for (slot, result) in collected.iter().enumerate() {
            let result = result.as_ref().expect("all_faulted checked every slot");
            stats.absorb(&result.stats);
            if let Verdict::Inconclusive { reason, .. } = &result.verdict {
                reasons.push(format!("{}: {}", ENTRANTS[slot].name(), reason));
            }
        }
        stats.time = start.elapsed();
        let reason = StopReason::other(reasons.join("; "));
        telemetry.instant_args("entrant.all_faulted", || {
            vec![("reason", ArgValue::Str(reason.to_string()))]
        });
        return EngineResult {
            verdict: Verdict::Inconclusive {
                reason,
                bound_reached: 0,
            },
            stats,
            certificate: None,
        };
    }

    // Adopt by fixed entrant precedence: first the conclusive results,
    // otherwise the inconclusive entrant that got furthest.
    let adopted = ENTRANTS
        .iter()
        .enumerate()
        .filter_map(|(slot, &engine)| {
            collected[slot]
                .as_ref()
                .map(|result| (slot, engine, result.clone()))
        })
        .filter(|(_, _, result)| result.verdict.is_conclusive())
        .map(|(_, engine, result)| (engine, result))
        .next()
        .or_else(|| {
            ENTRANTS
                .iter()
                .enumerate()
                .filter_map(|(slot, &engine)| {
                    collected[slot]
                        .as_ref()
                        .map(|result| (slot, engine, result.clone()))
                })
                .max_by_key(|(slot, _, result)| {
                    let bound = match &result.verdict {
                        Verdict::Inconclusive { bound_reached, .. } => *bound_reached,
                        _ => 0,
                    };
                    (bound, Reverse(*slot))
                })
                .map(|(_, engine, result)| (engine, result))
        });

    match adopted {
        Some((engine, mut result)) => {
            telemetry.instant_args("entrant.win", || {
                vec![
                    ("entrant", ArgValue::Str(engine.name().to_string())),
                    ("verdict", ArgValue::Str(result.verdict.to_string())),
                ]
            });
            result.stats.winner = Some(engine.name());
            result.stats.time = start.elapsed();
            result
        }
        None => EngineResult {
            verdict: Verdict::Inconclusive {
                reason: StopReason::other("portfolio: every entrant failed to report"),
                bound_reached: 0,
            },
            stats: crate::EngineStats {
                time: start.elapsed(),
                visible_latches: aig.num_latches(),
                ..Default::default()
            },
            certificate: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::builder::{latch_word, word_equals_const, word_increment, word_mux};

    fn modular_counter(width: usize, modulus: u64, bad_at: u64) -> aig::Aig {
        let mut aig = aig::Aig::new();
        let (ids, bits) = latch_word(&mut aig, width, 0);
        let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
        let inc = word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(width, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &bits, bad_at);
        aig.add_bad(bad);
        aig
    }

    fn options() -> Options {
        Options::default()
            .with_timeout(Duration::from_secs(20))
            .with_max_bound(40)
    }

    #[test]
    fn proves_and_tags_the_winner() {
        let aig = modular_counter(3, 6, 7);
        // Sequential entrants (the default budget) and the auto budget
        // (parallel PDR entrant) must both prove and tag a winner.
        for budget in [1usize, 0] {
            let result = verify(&aig, 0, &options().with_threads(budget));
            assert!(result.verdict.is_proved(), "{}", result.verdict);
            let winner = result.stats.winner.expect("portfolio tags its winner");
            assert!(ENTRANTS.iter().any(|e| e.name() == winner));
        }
    }

    #[test]
    fn falsifies_at_the_minimal_depth() {
        for bad_at in [1u64, 4, 8] {
            let aig = modular_counter(4, 10, bad_at);
            let result = verify(&aig, 0, &options());
            assert_eq!(
                result.verdict,
                Verdict::Falsified {
                    depth: bad_at as usize
                },
                "bad_at = {bad_at}"
            );
        }
    }

    #[test]
    fn detects_depth_zero_violations() {
        let aig = modular_counter(3, 6, 0);
        let result = verify(&aig, 0, &options());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 0 });
    }

    #[test]
    fn outer_cancellation_stops_every_entrant() {
        let aig = modular_counter(5, 28, 31);
        let cancel = CancelToken::new();
        cancel.cancel();
        let result = verify_with_cancel(&aig, 0, &options(), &cancel);
        assert!(
            matches!(result.verdict, Verdict::Inconclusive { .. }),
            "{}",
            result.verdict
        );
    }

    #[test]
    fn agrees_with_the_sequential_reference() {
        for bad_at in 1..8u64 {
            let aig = modular_counter(3, 6, bad_at);
            let reference = Engine::Pdr.verify(&aig, 0, &options());
            let raced = verify(&aig, 0, &options());
            assert_eq!(
                reference.verdict.is_proved(),
                raced.verdict.is_proved(),
                "bad_at = {bad_at}: {} vs {}",
                reference.verdict,
                raced.verdict
            );
            if let Verdict::Falsified { depth } = reference.verdict {
                assert_eq!(raced.verdict, Verdict::Falsified { depth });
            }
        }
    }
}
