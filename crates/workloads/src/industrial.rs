//! "Industrial-like" designs: deep control pipelines surrounded by large
//! amounts of property-irrelevant state.
//!
//! The paper's `industrialA..E` rows are characterised by hundreds of
//! latches of which only a fraction matters to each property — exactly the
//! situation in which localization abstraction (the CBA engine) shines.
//! This family reproduces that structure synthetically: a modular counter
//! plus a handshake pipeline carry the property, and a configurable amount
//! of random-ish "payload" logic (shift registers scrambled by inputs) is
//! bolted on without influencing the property.

use aig::builder::{latch_word, word_equals_const, word_increment, word_mux};
use aig::{Aig, Lit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of an industrial-like benchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndustrialParams {
    /// Width of the control counter (sequential depth ≈ `2^width`).
    pub counter_bits: usize,
    /// Modulus of the control counter.
    pub modulus: u64,
    /// Counter value the property claims is unreachable.
    pub bad_at: u64,
    /// Length of the request/acknowledge pipeline in front of the counter.
    pub pipeline_depth: usize,
    /// Number of irrelevant payload registers.
    pub payload_latches: usize,
    /// Seed for the payload interconnect.
    pub seed: u64,
}

impl Default for IndustrialParams {
    fn default() -> Self {
        IndustrialParams {
            counter_bits: 4,
            modulus: 10,
            bad_at: 12,
            pipeline_depth: 4,
            payload_latches: 24,
            seed: 1,
        }
    }
}

/// Builds an industrial-like design.
///
/// The property ("the control counter never reaches `bad_at`") holds iff
/// `bad_at >= modulus`.  Only the counter and the pipeline feeding it are in
/// the property's cone of influence; the payload registers are not.
pub fn pipeline(params: IndustrialParams) -> Aig {
    let IndustrialParams {
        counter_bits,
        modulus,
        bad_at,
        pipeline_depth,
        payload_latches,
        seed,
    } = params;
    assert!(modulus >= 1 && modulus <= 1u64 << counter_bits);
    let mut aig = Aig::new();
    aig.set_name(format!(
        "industrial_c{counter_bits}m{modulus}b{bad_at}p{pipeline_depth}x{payload_latches}s{seed}"
    ));
    let mut rng = StdRng::seed_from_u64(seed);

    // Request pipeline: a request input travels through `pipeline_depth`
    // stages before it enables the counter.
    let request = Lit::positive(aig.add_input());
    let mut stage = request;
    for _ in 0..pipeline_depth {
        let l = aig.add_latch(false);
        aig.set_next(l, stage);
        stage = aig.latch_lit(l);
    }
    let advance = stage;

    // Control counter.
    let (ids, bits) = latch_word(&mut aig, counter_bits, 0);
    let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
    let inc = word_increment(&mut aig, &bits, advance);
    let zero = aig::builder::word_const(counter_bits, 0);
    let wrap_now = aig.and(wrap, advance);
    let next = word_mux(&mut aig, wrap_now, &zero, &inc);
    for (id, n) in ids.iter().zip(next.iter()) {
        aig.set_next(*id, *n);
    }

    // Irrelevant payload: scrambled shift registers driven by extra inputs.
    let noise: Vec<Lit> = (0..4).map(|_| Lit::positive(aig.add_input())).collect();
    let mut payload_lits: Vec<Lit> = Vec::new();
    for i in 0..payload_latches {
        let l = aig.add_latch(i % 3 == 0);
        payload_lits.push(aig.latch_lit(l));
    }
    for (i, &cur) in payload_lits.clone().iter().enumerate() {
        let other = payload_lits[rng.gen_range(0..payload_lits.len())];
        let n = noise[rng.gen_range(0..noise.len())];
        let mixed = aig.xor(other, n);
        let next = aig.mux(n, mixed, cur);
        // Payload latches were created after the pipeline and counter, so
        // their ids follow them; recover the latch id from the literal.
        let latch_id = match aig.node(cur.node()) {
            aig::AigNode::Latch { index } => index,
            _ => unreachable!(),
        };
        aig.set_next(latch_id, next);
        let _ = i;
    }

    let bad = word_equals_const(&mut aig, &bits, bad_at);
    aig.add_bad(bad);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_design_has_expected_shape() {
        let params = IndustrialParams::default();
        let aig = pipeline(params);
        assert_eq!(
            aig.num_latches(),
            params.pipeline_depth + params.counter_bits + params.payload_latches
        );
        assert_eq!(aig.num_inputs(), 5);
        assert_eq!(aig.num_bad(), 1);
    }

    #[test]
    fn payload_is_outside_the_property_cone() {
        let aig = pipeline(IndustrialParams::default());
        let coi = aig::coi::property_coi(&aig);
        // Only the pipeline + counter latches influence the property.
        assert_eq!(coi.latches.len(), 4 + 4);
    }

    #[test]
    fn passing_and_failing_variants_simulate_as_expected() {
        let pass = pipeline(IndustrialParams {
            bad_at: 12,
            ..IndustrialParams::default()
        });
        let stim: Vec<Vec<bool>> = (0..40).map(|_| vec![true; 5]).collect();
        assert_eq!(aig::simulate(&pass, &stim).first_failure(), None);

        let fail = pipeline(IndustrialParams {
            bad_at: 6,
            ..IndustrialParams::default()
        });
        // Request held high: counter starts moving after the pipeline fills
        // (4 cycles) and reaches 6 after 6 more.
        assert_eq!(aig::simulate(&fail, &stim).first_failure(), Some(10));
    }

    #[test]
    fn seeds_change_the_payload_but_not_the_property() {
        let a = pipeline(IndustrialParams {
            seed: 7,
            ..IndustrialParams::default()
        });
        let b = pipeline(IndustrialParams {
            seed: 8,
            ..IndustrialParams::default()
        });
        assert_eq!(a.num_latches(), b.num_latches());
        let stim: Vec<Vec<bool>> = (0..30).map(|i| vec![i % 2 == 0; 5]).collect();
        assert_eq!(
            aig::simulate(&a, &stim).first_failure(),
            aig::simulate(&b, &stim).first_failure()
        );
    }
}
