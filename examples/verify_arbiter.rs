//! Verify the mutual-exclusion property of a round-robin arbiter, compare
//! the SAT-based verdict against exact BDD reachability, and show the
//! counterexample of a buggy variant.
//!
//! Run with `cargo run --example verify_arbiter`.

use itpseq::mc::{Engine, Options, Verdict};

fn main() {
    let correct = itpseq::workloads::arbiter::round_robin(4, false);
    let buggy = itpseq::workloads::arbiter::round_robin(4, true);
    let options = Options::default();

    // Exact reference result with BDDs (also gives the circuit diameters
    // reported in Table I of the paper).
    let exact = itpseq::bdd::reach::analyze(&correct, 0, 1_000_000);
    println!(
        "arbiter4: d_F = {:?}, d_B = {:?}, exact verdict = {:?}",
        exact.forward_diameter, exact.backward_diameter, exact.verdict
    );

    let result = Engine::SerialItpSeq.verify(&correct, 0, &options);
    println!("SITPSEQ on the correct arbiter: {}", result.verdict);
    println!("  stats: {}", result.stats);
    assert!(
        result.verdict.is_proved(),
        "mutual exclusion must be proved"
    );

    let result = Engine::ItpSeq.verify(&buggy, 0, &options);
    println!("ITPSEQ on the buggy arbiter:    {}", result.verdict);
    println!("  stats: {}", result.stats);
    if let Verdict::Falsified { depth } = result.verdict {
        // Replay a violating stimulus to show the double grant: every
        // client requests on every cycle.
        let stim: Vec<Vec<bool>> = (0..=depth).map(|_| vec![true; 4]).collect();
        let trace = itpseq::aig::simulate(&buggy, &stim);
        println!(
            "  simulation confirms a violation at cycle {:?}",
            trace.first_failure()
        );
    }
}
