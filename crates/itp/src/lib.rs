//! Craig interpolation from resolution proofs.
//!
//! Given a refutation proof of an unsatisfiable, partition-labelled CNF
//! formula `Γ = {A_1, …, A_n}` (produced by the [`sat`] crate), this crate
//! computes:
//!
//! * single **Craig interpolants** `ITP(A, B)` for a two-way split of the
//!   partitions (McMillan's labelled interpolation system), and
//! * complete **interpolation sequences** `(I_0, I_1, …, I_n)` where every
//!   `I_j = ITP(A_1 ∧ … ∧ A_j, A_{j+1} ∧ … ∧ A_n)` is extracted from the
//!   *same* proof, exactly as Definition 2 of *Interpolation Sequences
//!   Revisited* prescribes.
//!
//! Interpolants are constructed as AND/OR circuits inside a caller-provided
//! [`aig::Aig`] manager, with a caller-provided mapping from shared SAT
//! variables to AIG literals.  The model-checking engines use a manager
//! whose primary inputs stand for the design latches, so that interpolants
//! are immediately usable as symbolic state sets.
//!
//! # Example
//!
//! ```
//! use cnf::Lit;
//! use sat::{SolveResult, Solver};
//! use itp::InterpolationContext;
//!
//! // A = {a}, B = {¬a}: the interpolant must be `a` itself.
//! let mut solver = Solver::new();
//! let a = Lit::positive(solver.new_var());
//! solver.add_clause([a], 1);
//! solver.add_clause([!a], 2);
//! assert_eq!(solver.solve(), SolveResult::Unsat);
//! let proof = solver.proof().expect("refutation");
//! let ctx = InterpolationContext::new(&proof)?;
//! let mut mgr = aig::Aig::new();
//! let leaf = aig::Lit::positive(mgr.add_input());
//! let itp = ctx.interpolant(1, &mut mgr, &|_, _| leaf)?;
//! assert_eq!(itp, leaf);
//! # Ok::<(), itp::ItpError>(())
//! ```

mod context;
mod error;

pub use context::InterpolationContext;
pub use error::ItpError;
