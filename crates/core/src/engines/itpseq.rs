//! Parallel interpolation sequences (`ITPSEQVERIF`, Fig. 2).
//!
//! Every element of the sequence is extracted from the single refutation
//! proof of the exact-k (or assume-k) bounded check; the column
//! conjunctions `ℐ_j` accumulate across bounds and are checked for
//! inclusion in the running reachability over-approximation.

use crate::engines::seq::{run, SeqConfig};
use crate::engines::CancelToken;
use crate::{EngineResult, Options};
use aig::Aig;

/// Runs the parallel interpolation-sequence engine on bad-state property
/// `bad_index`.
pub fn verify(design: &Aig, bad_index: usize, options: &Options) -> EngineResult {
    verify_with_cancel(design, bad_index, options, &CancelToken::new())
}

/// [`verify`] under a cancellation token (see [`crate::CancelToken`]).
pub fn verify_with_cancel(
    design: &Aig,
    bad_index: usize,
    options: &Options,
    cancel: &CancelToken,
) -> EngineResult {
    run(
        design,
        bad_index,
        options,
        SeqConfig {
            name: "ITPSEQ",
            alpha_serial: 0.0,
            use_cba: false,
        },
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Options, Verdict};
    use aig::builder::{latch_word, word_equals_const, word_increment, word_mux};
    use cnf::BmcCheck;

    fn modular_counter(width: usize, modulus: u64, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, bits) = latch_word(&mut aig, width, 0);
        let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
        let inc = word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(width, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &bits, bad_at);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn proves_unreachable_counter_value() {
        let aig = modular_counter(3, 6, 7);
        let result = verify(&aig, 0, &Options::default());
        assert!(result.verdict.is_proved(), "verdict: {}", result.verdict);
        assert!(result.stats.interpolants > 0);
    }

    #[test]
    fn falsifies_reachable_counter_value_at_exact_depth() {
        let aig = modular_counter(3, 6, 5);
        let result = verify(&aig, 0, &Options::default());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 5 });
    }

    #[test]
    fn exact_and_assume_checks_agree_on_verdicts() {
        for bad_at in [2u64, 7] {
            let aig = modular_counter(3, 6, bad_at);
            let exact = verify(&aig, 0, &Options::default().with_check(BmcCheck::Exact));
            let assume = verify(
                &aig,
                0,
                &Options::default().with_check(BmcCheck::ExactAssume),
            );
            assert_eq!(
                exact.verdict.is_proved(),
                assume.verdict.is_proved(),
                "bad_at={bad_at}"
            );
            assert_eq!(
                exact.verdict.is_falsified(),
                assume.verdict.is_falsified(),
                "bad_at={bad_at}"
            );
        }
    }

    #[test]
    fn verdicts_match_exact_bdd_reachability() {
        for bad_at in 1..8u64 {
            let aig = modular_counter(3, 6, bad_at);
            let exact = bdd::reach::analyze(&aig, 0, 1_000_000);
            let got = verify(&aig, 0, &Options::default());
            match exact.verdict {
                bdd::BddVerdict::Pass => {
                    assert!(got.verdict.is_proved(), "bad_at={bad_at}: {}", got.verdict)
                }
                bdd::BddVerdict::Fail { depth } => {
                    assert_eq!(got.verdict, Verdict::Falsified { depth }, "bad_at={bad_at}")
                }
                bdd::BddVerdict::Overflow => unreachable!("tiny design cannot overflow"),
            }
        }
    }

    #[test]
    fn bound_budget_exhaustion_is_inconclusive() {
        // The counter needs bound 6 of reasoning; cap it at 2.
        let aig = modular_counter(3, 6, 7);
        let result = verify(&aig, 0, &Options::default().with_max_bound(2));
        assert!(matches!(
            result.verdict,
            Verdict::Inconclusive {
                bound_reached: 2,
                ..
            } | Verdict::Proved { .. }
        ));
    }
}
