//! Counter benchmarks: the simplest family with precisely tunable
//! forward/backward diameters.

use aig::builder::{latch_word, word_const, word_equals_const, word_increment, word_mux};
use aig::{Aig, Lit};

/// A modular counter that counts `0, 1, …, modulus-1, 0, …` and asserts it
/// never reaches `bad_at`.
///
/// The property holds iff `bad_at >= modulus`; when it fails, the shortest
/// counterexample has length `bad_at`.
///
/// # Panics
///
/// Panics if `modulus` does not fit in `width` bits or is zero.
pub fn modular(width: usize, modulus: u64, bad_at: u64) -> Aig {
    assert!(
        modulus >= 1 && modulus <= 1u64 << width,
        "modulus must fit the width"
    );
    let mut aig = Aig::new();
    aig.set_name(format!("counter{width}m{modulus}b{bad_at}"));
    let (ids, bits) = latch_word(&mut aig, width, 0);
    let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
    let inc = word_increment(&mut aig, &bits, Lit::TRUE);
    let zero = word_const(width, 0);
    let next = word_mux(&mut aig, wrap, &zero, &inc);
    for (id, n) in ids.iter().zip(next.iter()) {
        aig.set_next(*id, *n);
    }
    let bad = word_equals_const(&mut aig, &bits, bad_at);
    aig.add_bad(bad);
    aig
}

/// A counter with an enable input: it only advances when the environment
/// asserts `enable`, which stretches counterexamples and makes bound-k
/// checks harder than exact-k ones.
pub fn gated(width: usize, modulus: u64, bad_at: u64) -> Aig {
    assert!(
        modulus >= 1 && modulus <= 1u64 << width,
        "modulus must fit the width"
    );
    let mut aig = Aig::new();
    aig.set_name(format!("gatedcounter{width}m{modulus}b{bad_at}"));
    let enable = Lit::positive(aig.add_input());
    let (ids, bits) = latch_word(&mut aig, width, 0);
    let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
    let inc = word_increment(&mut aig, &bits, enable);
    let zero = word_const(width, 0);
    let wrap_and_enable = aig.and(wrap, enable);
    let next = word_mux(&mut aig, wrap_and_enable, &zero, &inc);
    for (id, n) in ids.iter().zip(next.iter()) {
        aig.set_next(*id, *n);
    }
    let bad = word_equals_const(&mut aig, &bits, bad_at);
    aig.add_bad(bad);
    aig
}

/// A modular counter carrying one bad-state property per threshold in
/// `bad_ats` — the multi-property variant of [`modular`].
///
/// Property `i` fails iff `bad_ats[i] < modulus` (with the shortest
/// counterexample of length `bad_ats[i]`), so mixing in-range and
/// out-of-range thresholds yields a design whose properties split between
/// `Falsified` and `Proved` — exactly what `verify_all` needs to exercise
/// per-property retirement.
///
/// # Panics
///
/// Panics if `modulus` does not fit in `width` bits, is zero, or
/// `bad_ats` is empty.
pub fn modular_multi(width: usize, modulus: u64, bad_ats: &[u64]) -> Aig {
    assert!(
        modulus >= 1 && modulus <= 1u64 << width,
        "modulus must fit the width"
    );
    assert!(!bad_ats.is_empty(), "at least one property is required");
    let mut aig = Aig::new();
    let tags: Vec<String> = bad_ats.iter().map(u64::to_string).collect();
    aig.set_name(format!("counter{width}m{modulus}multi{}", tags.join("_")));
    let (ids, bits) = latch_word(&mut aig, width, 0);
    let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
    let inc = word_increment(&mut aig, &bits, Lit::TRUE);
    let zero = word_const(width, 0);
    let next = word_mux(&mut aig, wrap, &zero, &inc);
    for (id, n) in ids.iter().zip(next.iter()) {
        aig.set_next(*id, *n);
    }
    for &bad_at in bad_ats {
        let bad = word_equals_const(&mut aig, &bits, bad_at);
        aig.add_bad(bad);
    }
    aig
}

/// Two independent modular counters with different periods; the property
/// states they are never simultaneously at their respective `sync` values.
/// Reachability of the synchronisation point follows the Chinese remainder
/// structure, which yields deep counterexamples from small circuits.
pub fn synchronised(width: usize, modulus_a: u64, modulus_b: u64, sync: u64) -> Aig {
    let mut aig = Aig::new();
    aig.set_name(format!("sync{width}a{modulus_a}b{modulus_b}s{sync}"));
    let mut words = Vec::new();
    for modulus in [modulus_a, modulus_b] {
        let (ids, bits) = latch_word(&mut aig, width, 0);
        let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
        let inc = word_increment(&mut aig, &bits, Lit::TRUE);
        let zero = word_const(width, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        words.push(bits);
    }
    let a_at = word_equals_const(&mut aig, &words[0], sync);
    let b_at = word_equals_const(&mut aig, &words[1], sync);
    let bad = aig.and(a_at, b_at);
    aig.add_bad(bad);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modular_counter_fails_at_expected_depth() {
        let aig = modular(3, 6, 4);
        let trace = aig::simulate(&aig, &vec![vec![]; 10]);
        assert_eq!(trace.first_failure(), Some(4));
    }

    #[test]
    fn modular_counter_holds_when_value_out_of_range() {
        let aig = modular(3, 6, 7);
        let trace = aig::simulate(&aig, &vec![vec![]; 20]);
        assert_eq!(trace.first_failure(), None);
    }

    #[test]
    fn gated_counter_only_advances_when_enabled() {
        let aig = gated(3, 8, 2);
        let stalled = aig::simulate(&aig, &vec![vec![false]; 6]);
        assert_eq!(stalled.first_failure(), None);
        let running = aig::simulate(&aig, &vec![vec![true]; 6]);
        assert_eq!(running.first_failure(), Some(2));
    }

    #[test]
    fn multi_counter_fails_per_threshold() {
        let aig = modular_multi(4, 10, &[3, 12, 7]);
        assert_eq!(aig.num_bad(), 3);
        let trace = aig::simulate(&aig, &vec![vec![]; 24]);
        // Property 0 first fires at cycle 3, property 2 at cycle 7, and
        // property 1 (threshold 12 ≥ modulus 10) never.
        assert!(trace.bad[3][0] && !trace.bad[3][1] && !trace.bad[3][2]);
        assert!(trace.bad[7][2]);
        assert!(trace.bad.iter().all(|cycle| !cycle[1]));
        assert_eq!(aig.name(), "counter4m10multi3_12_7");
    }

    #[test]
    fn synchronised_counters_meet_at_lcm_structure() {
        // Periods 3 and 4: both at value 2 first when t ≡ 2 (mod 3) and
        // t ≡ 2 (mod 4) → t = 2.
        let aig = synchronised(3, 3, 4, 2);
        let trace = aig::simulate(&aig, &vec![vec![]; 16]);
        assert_eq!(trace.first_failure(), Some(2));
        // Sync value 1 with periods 2 and 3 meets at t ≡ 1 mod 2 and mod 3 → 1.
        let aig = synchronised(3, 2, 3, 1);
        let trace = aig::simulate(&aig, &vec![vec![]; 16]);
        assert_eq!(trace.first_failure(), Some(1));
    }

    #[test]
    fn names_identify_parameters() {
        assert_eq!(modular(3, 6, 7).name(), "counter3m6b7");
        assert!(gated(4, 10, 3).name().starts_with("gatedcounter4"));
    }
}
