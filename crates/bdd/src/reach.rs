//! Symbolic reachability, exact property checking and circuit diameters.
//!
//! The variable order used for a design with `n` latches and `m` inputs is:
//! current-state variables `0..n`, next-state variables `n..2n`, primary
//! inputs `2n..2n+m`.  Renaming next-state to current-state variables is
//! order preserving under this arrangement, so images can be computed with
//! the cheap [`Manager::rename`] operation.

use crate::{Bdd, BddOverflow, Manager};
use aig::{Aig, AigNode};
use std::collections::HashMap;

/// Outcome of an exact (BDD-based) verification run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BddVerdict {
    /// The bad states are unreachable: the property holds.
    Pass,
    /// A bad state is reachable in `depth` steps.
    Fail {
        /// Length of the shortest counterexample.
        depth: usize,
    },
    /// The node limit was exceeded before an answer was found
    /// (the paper's `ovf`).
    Overflow,
}

/// Exact forward and backward circuit diameters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Diameters {
    /// Forward diameter `d_F` (None when the BDD traversal overflowed).
    pub forward: Option<usize>,
    /// Backward diameter `d_B` referred to the target states.
    pub backward: Option<usize>,
}

/// Full result of [`analyze`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReachAnalysis {
    /// Verdict of the exact check.
    pub verdict: BddVerdict,
    /// Forward diameter, when the forward traversal completed.
    pub forward_diameter: Option<usize>,
    /// Backward diameter, when the backward traversal completed.
    pub backward_diameter: Option<usize>,
    /// Peak number of BDD nodes allocated.
    pub peak_nodes: usize,
}

struct SymbolicModel {
    mgr: Manager,
    init: Bdd,
    trans: Bdd,
    bad_states: Bdd,
    num_latches: usize,
    num_inputs: usize,
}

impl SymbolicModel {
    fn quantify_current_and_inputs(&self) -> Vec<bool> {
        let total = 2 * self.num_latches + self.num_inputs;
        (0..total)
            .map(|v| v < self.num_latches || v >= 2 * self.num_latches)
            .collect()
    }

    fn quantify_next_and_inputs(&self) -> Vec<bool> {
        let total = 2 * self.num_latches + self.num_inputs;
        (0..total).map(|v| v >= self.num_latches).collect()
    }

    fn rename_next_to_current(&self) -> Vec<usize> {
        let total = 2 * self.num_latches + self.num_inputs;
        (0..total)
            .map(|v| {
                if (self.num_latches..2 * self.num_latches).contains(&v) {
                    v - self.num_latches
                } else {
                    v
                }
            })
            .collect()
    }

    fn rename_current_to_next(&self) -> Vec<usize> {
        let total = 2 * self.num_latches + self.num_inputs;
        (0..total)
            .map(|v| {
                if v < self.num_latches {
                    v + self.num_latches
                } else {
                    v
                }
            })
            .collect()
    }

    /// States reachable in one step from `from`.
    fn image(&mut self, from: Bdd) -> Result<Bdd, BddOverflow> {
        let conj = self.mgr.and(from, self.trans)?;
        let projected = self.mgr.exists(conj, &self.quantify_current_and_inputs())?;
        self.mgr.rename(projected, &self.rename_next_to_current())
    }

    /// States that can reach `to` in one step.
    fn preimage(&mut self, to: Bdd) -> Result<Bdd, BddOverflow> {
        let shifted = self.mgr.rename(to, &self.rename_current_to_next())?;
        let conj = self.mgr.and(shifted, self.trans)?;
        self.mgr.exists(conj, &self.quantify_next_and_inputs())
    }
}

fn build_model(
    aig: &Aig,
    bad_index: usize,
    node_limit: usize,
) -> Result<SymbolicModel, BddOverflow> {
    let n = aig.num_latches();
    let m = aig.num_inputs();
    let mut mgr = Manager::new(2 * n + m, node_limit);

    // BDD of an AIG literal over current-state and input variables.
    let mut cache: HashMap<u32, Bdd> = HashMap::new();
    fn node_bdd(
        aig: &Aig,
        id: u32,
        n: usize,
        mgr: &mut Manager,
        cache: &mut HashMap<u32, Bdd>,
    ) -> Result<Bdd, BddOverflow> {
        if let Some(&b) = cache.get(&id) {
            return Ok(b);
        }
        let result = match aig.node(id) {
            AigNode::Const => Bdd::FALSE,
            AigNode::Input { index } => mgr.var(2 * n + index)?,
            AigNode::Latch { index } => mgr.var(index)?,
            AigNode::And { left, right } => {
                let l = node_bdd(aig, left.node(), n, mgr, cache)?;
                let l = if left.is_complemented() {
                    mgr.not(l)?
                } else {
                    l
                };
                let r = node_bdd(aig, right.node(), n, mgr, cache)?;
                let r = if right.is_complemented() {
                    mgr.not(r)?
                } else {
                    r
                };
                mgr.and(l, r)?
            }
        };
        cache.insert(id, result);
        Ok(result)
    }
    let lit_bdd = |lit: aig::Lit,
                   mgr: &mut Manager,
                   cache: &mut HashMap<u32, Bdd>|
     -> Result<Bdd, BddOverflow> {
        let b = node_bdd(aig, lit.node(), n, mgr, cache)?;
        if lit.is_complemented() {
            mgr.not(b)
        } else {
            Ok(b)
        }
    };

    // Transition relation: ⋀_i next_i ↔ f_i(current, inputs).
    let mut trans = Bdd::TRUE;
    for (i, next, _) in aig.latches() {
        let f = lit_bdd(next, &mut mgr, &mut cache)?;
        let next_var = mgr.var(n + i)?;
        let eq = mgr.iff(next_var, f)?;
        trans = mgr.and(trans, eq)?;
    }

    // Initial states.
    let mut init = Bdd::TRUE;
    for i in 0..n {
        let v = mgr.var(i)?;
        let lit = if aig.init(i) { v } else { mgr.not(v)? };
        init = mgr.and(init, lit)?;
    }

    // Bad states: ∃ inputs. bad(current, inputs).
    let bad_fn = lit_bdd(aig.bad(bad_index), &mut mgr, &mut cache)?;
    let quantify_inputs: Vec<bool> = (0..2 * n + m).map(|v| v >= 2 * n).collect();
    let bad_states = mgr.exists(bad_fn, &quantify_inputs)?;

    Ok(SymbolicModel {
        mgr,
        init,
        trans,
        bad_states,
        num_latches: n,
        num_inputs: m,
    })
}

/// Runs exact forward verification and computes both circuit diameters.
///
/// `node_limit` bounds the number of BDD nodes; when exceeded the analysis
/// reports [`BddVerdict::Overflow`] (matching the `ovf` entries of the
/// paper's Table I).
pub fn analyze(aig: &Aig, bad_index: usize, node_limit: usize) -> ReachAnalysis {
    match try_analyze(aig, bad_index, node_limit) {
        Ok(a) => a,
        Err(_) => ReachAnalysis {
            verdict: BddVerdict::Overflow,
            forward_diameter: None,
            backward_diameter: None,
            peak_nodes: node_limit,
        },
    }
}

fn try_analyze(
    aig: &Aig,
    bad_index: usize,
    node_limit: usize,
) -> Result<ReachAnalysis, BddOverflow> {
    let mut model = build_model(aig, bad_index, node_limit)?;

    // Forward traversal.
    let mut reached = model.init;
    let mut frontier = model.init;
    let mut forward_steps = 0usize;
    let mut fail_depth: Option<usize> = None;
    let init_bad = model.mgr.and(model.init, model.bad_states)?;
    if !model.mgr.is_false(init_bad) {
        fail_depth = Some(0);
    }
    loop {
        let img = model.image(frontier)?;
        let not_reached = model.mgr.not(reached)?;
        let new = model.mgr.and(img, not_reached)?;
        if model.mgr.is_false(new) {
            break;
        }
        forward_steps += 1;
        if fail_depth.is_none() {
            let hit = model.mgr.and(new, model.bad_states)?;
            if !model.mgr.is_false(hit) {
                fail_depth = Some(forward_steps);
            }
        }
        reached = model.mgr.or(reached, new)?;
        frontier = new;
    }

    // Backward traversal from the bad states.
    let mut back_reached = model.bad_states;
    let mut back_frontier = model.bad_states;
    let mut backward_steps = 0usize;
    loop {
        let pre = model.preimage(back_frontier)?;
        let not_reached = model.mgr.not(back_reached)?;
        let new = model.mgr.and(pre, not_reached)?;
        if model.mgr.is_false(new) {
            break;
        }
        backward_steps += 1;
        back_reached = model.mgr.or(back_reached, new)?;
        back_frontier = new;
    }

    Ok(ReachAnalysis {
        verdict: match fail_depth {
            Some(depth) => BddVerdict::Fail { depth },
            None => BddVerdict::Pass,
        },
        forward_diameter: Some(forward_steps),
        backward_diameter: Some(backward_steps),
        peak_nodes: model.mgr.num_nodes(),
    })
}

/// Convenience wrapper returning only the two diameters.
pub fn diameters(aig: &Aig, bad_index: usize, node_limit: usize) -> Diameters {
    let analysis = analyze(aig, bad_index, node_limit);
    Diameters {
        forward: analysis.forward_diameter,
        backward: analysis.backward_diameter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::builder::{latch_word, word_equals_const, word_increment};

    /// A free-running `width`-bit counter with a bad state at `bad_at`.
    fn counter(width: usize, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, lits) = latch_word(&mut aig, width, 0);
        let next = word_increment(&mut aig, &lits, aig::Lit::TRUE);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &lits, bad_at);
        aig.add_bad(bad);
        aig
    }

    /// A counter that saturates at its maximum value instead of wrapping.
    fn saturating_counter(width: usize, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, lits) = latch_word(&mut aig, width, 0);
        let incremented = word_increment(&mut aig, &lits, aig::Lit::TRUE);
        let at_max = word_equals_const(&mut aig, &lits, (1 << width) - 1);
        let next = aig::builder::word_mux(&mut aig, at_max, &lits, &incremented);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &lits, bad_at);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn failing_counter_reports_exact_depth() {
        let aig = counter(3, 5);
        let a = analyze(&aig, 0, 100_000);
        assert_eq!(a.verdict, BddVerdict::Fail { depth: 5 });
        // A wrapping 3-bit counter visits all 8 states: diameter 7.
        assert_eq!(a.forward_diameter, Some(7));
    }

    #[test]
    fn passing_property_on_saturating_counter() {
        // The saturating 3-bit counter never exceeds 7 and stops there, so a
        // "bad at 9" property is unreachable (indeed unrepresentable) and a
        // bad value below the saturation point is reachable.
        let aig = saturating_counter(3, 7);
        let a = analyze(&aig, 0, 100_000);
        assert_eq!(a.verdict, BddVerdict::Fail { depth: 7 });

        let mut aig = Aig::new();
        // Saturate at 3 (2 bits), bad when both bits differ — never happens
        // on the path 00 -> 01 -> 10? (it does). Use a clearly safe design:
        // a latch stuck at 0 with bad = latch.
        let l = aig.add_latch(false);
        let cur = aig.latch_lit(l);
        aig.set_next(l, aig::Lit::FALSE);
        aig.add_bad(cur);
        let a = analyze(&aig, 0, 1000);
        assert_eq!(a.verdict, BddVerdict::Pass);
        assert_eq!(a.forward_diameter, Some(0));
    }

    #[test]
    fn forward_diameter_of_wrapping_counter() {
        for width in 1..=4usize {
            let aig = counter(width, 0);
            let d = diameters(&aig, 0, 1_000_000);
            assert_eq!(d.forward, Some((1 << width) - 1), "width {width}");
        }
    }

    #[test]
    fn backward_diameter_of_counter_target() {
        // For the wrapping 3-bit counter with target state 5, every state can
        // reach 5 (cycle), and the farthest (state 6) needs 7 steps.
        let aig = counter(3, 5);
        let a = analyze(&aig, 0, 100_000);
        assert_eq!(a.backward_diameter, Some(7));
    }

    #[test]
    fn initial_state_violation_is_depth_zero() {
        let aig = counter(2, 0);
        let a = analyze(&aig, 0, 100_000);
        assert_eq!(a.verdict, BddVerdict::Fail { depth: 0 });
    }

    #[test]
    fn overflow_is_reported_with_tiny_limit() {
        let aig = counter(6, 63);
        let a = analyze(&aig, 0, 16);
        assert_eq!(a.verdict, BddVerdict::Overflow);
        assert_eq!(a.forward_diameter, None);
    }

    #[test]
    fn analysis_matches_explicit_simulation() {
        // Cross-check the verdict with cycle-accurate simulation on a
        // failing design.
        let aig = counter(3, 6);
        let a = analyze(&aig, 0, 100_000);
        let inputs = vec![vec![]; 10];
        let trace = aig::simulate(&aig, &inputs);
        assert_eq!(
            a.verdict,
            BddVerdict::Fail {
                depth: trace.first_failure().unwrap()
            }
        );
    }
}
