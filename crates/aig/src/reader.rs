//! ASCII AIGER (`.aag`) reader.
//!
//! The subset of the AIGER 1.9 format understood here covers what hardware
//! model-checking benchmarks use: the `aag M I L O A` header with the
//! optional `B` (bad state) count, latch reset values, outputs, bad-state
//! literals and AND gates.  Symbol table and comment (`c`) sections are
//! skipped, and CRLF line endings — common in files that passed through
//! Windows tooling — are accepted everywhere.

use crate::{Aig, Lit};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing an ASCII AIGER file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseAagError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A body line could not be parsed.
    BadLine { line: usize, message: String },
    /// The number of body lines does not match the header counts.
    Truncated,
    /// AND gate definitions form a cycle or reference undefined literals.
    UnresolvedAnds,
}

impl fmt::Display for ParseAagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAagError::BadHeader(h) => write!(f, "invalid aag header: {h}"),
            ParseAagError::BadLine { line, message } => {
                write!(f, "invalid aag line {line}: {message}")
            }
            ParseAagError::Truncated => write!(f, "aag file ends before all sections are read"),
            ParseAagError::UnresolvedAnds => {
                write!(f, "and gates reference undefined literals or form a cycle")
            }
        }
    }
}

impl Error for ParseAagError {}

/// Parses an ASCII AIGER description into an [`Aig`].
///
/// # Errors
///
/// Returns a [`ParseAagError`] when the header is malformed, a body line
/// cannot be parsed, the file is truncated, or AND definitions cannot be
/// resolved.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "aag 3 1 1 0 1 1\n2\n4 6 0\n6\n6 2 4\n";
/// let aig = aig::parse_aag(text)?;
/// assert_eq!(aig.num_inputs(), 1);
/// assert_eq!(aig.num_latches(), 1);
/// assert_eq!(aig.num_bad(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_aag(text: &str) -> Result<Aig, ParseAagError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseAagError::BadHeader(String::new()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 6 || fields[0] != "aag" {
        return Err(ParseAagError::BadHeader(header.to_string()));
    }
    let parse_field = |s: &str| -> Result<usize, ParseAagError> {
        s.parse()
            .map_err(|_| ParseAagError::BadHeader(header.to_string()))
    };
    let _max_var = parse_field(fields[1])?;
    let num_inputs = parse_field(fields[2])?;
    let num_latches = parse_field(fields[3])?;
    let num_outputs = parse_field(fields[4])?;
    let num_ands = parse_field(fields[5])?;
    let num_bad = if fields.len() > 6 {
        parse_field(fields[6])?
    } else {
        0
    };

    let mut aig = Aig::new();
    // Maps AIGER variable index -> literal in our graph (positive phase).
    let mut var_map: HashMap<u32, Lit> = HashMap::new();
    var_map.insert(0, Lit::FALSE);

    fn next_line<'a>(
        lines: &mut std::iter::Enumerate<std::str::Lines<'a>>,
    ) -> Result<(usize, &'a str), ParseAagError> {
        lines.next().ok_or(ParseAagError::Truncated)
    }
    let parse_u32 = |tok: &str, line: usize| -> Result<u32, ParseAagError> {
        tok.parse().map_err(|_| ParseAagError::BadLine {
            line,
            message: format!("expected unsigned literal, found `{tok}`"),
        })
    };

    // Inputs.
    let mut input_vars = Vec::with_capacity(num_inputs);
    for _ in 0..num_inputs {
        let (ln, text) = next_line(&mut lines)?;
        let raw = parse_u32(text.trim(), ln + 1)?;
        let id = aig.add_input();
        var_map.insert(raw >> 1, Lit::positive(id));
        input_vars.push(raw >> 1);
    }

    // Latches: "lit next [init]".
    let mut latch_defs = Vec::with_capacity(num_latches);
    for _ in 0..num_latches {
        let (ln, text) = next_line(&mut lines)?;
        let toks: Vec<&str> = text.split_whitespace().collect();
        if toks.len() < 2 {
            return Err(ParseAagError::BadLine {
                line: ln + 1,
                message: "latch line needs at least `lit next`".to_string(),
            });
        }
        let lit = parse_u32(toks[0], ln + 1)?;
        let next = parse_u32(toks[1], ln + 1)?;
        let init = if toks.len() > 2 {
            parse_u32(toks[2], ln + 1)? == 1
        } else {
            false
        };
        let latch = aig.add_latch(init);
        var_map.insert(lit >> 1, aig.latch_lit(latch));
        latch_defs.push((latch, next));
    }

    // Outputs and bad literals (raw, resolved later).
    let mut output_raw = Vec::with_capacity(num_outputs);
    for _ in 0..num_outputs {
        let (ln, text) = next_line(&mut lines)?;
        output_raw.push(parse_u32(text.trim(), ln + 1)?);
    }
    let mut bad_raw = Vec::with_capacity(num_bad);
    for _ in 0..num_bad {
        let (ln, text) = next_line(&mut lines)?;
        bad_raw.push(parse_u32(text.trim(), ln + 1)?);
    }

    // AND gates, possibly out of order: retry until a fixed point.
    let mut pending: Vec<(u32, u32, u32)> = Vec::with_capacity(num_ands);
    for _ in 0..num_ands {
        let (ln, text) = next_line(&mut lines)?;
        let toks: Vec<&str> = text.split_whitespace().collect();
        if toks.len() < 3 {
            return Err(ParseAagError::BadLine {
                line: ln + 1,
                message: "and line needs `lhs rhs0 rhs1`".to_string(),
            });
        }
        pending.push((
            parse_u32(toks[0], ln + 1)?,
            parse_u32(toks[1], ln + 1)?,
            parse_u32(toks[2], ln + 1)?,
        ));
    }
    let resolve = |var_map: &HashMap<u32, Lit>, raw: u32| -> Option<Lit> {
        var_map
            .get(&(raw >> 1))
            .map(|l| l.xor_complement(raw & 1 == 1))
    };
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|&(lhs, rhs0, rhs1)| {
            match (resolve(&var_map, rhs0), resolve(&var_map, rhs1)) {
                (Some(a), Some(b)) => {
                    let lit = aig.and(a, b);
                    var_map.insert(lhs >> 1, lit);
                    false
                }
                _ => true,
            }
        });
        if pending.len() == before {
            return Err(ParseAagError::UnresolvedAnds);
        }
    }

    // Resolve latch next-state functions, outputs and bad literals.
    for (latch, next_raw) in latch_defs {
        let next = resolve(&var_map, next_raw).ok_or(ParseAagError::UnresolvedAnds)?;
        aig.set_next(latch, next);
    }
    for raw in output_raw {
        let lit = resolve(&var_map, raw).ok_or(ParseAagError::UnresolvedAnds)?;
        aig.add_output(lit);
    }
    for raw in bad_raw {
        let lit = resolve(&var_map, raw).ok_or(ParseAagError::UnresolvedAnds)?;
        aig.add_bad(lit);
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::to_aag;

    #[test]
    fn parses_minimal_combinational_design() {
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let aig = parse_aag(text).expect("parse");
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_latches(), 0);
        assert_eq!(aig.num_outputs(), 1);
        assert_eq!(aig.num_ands(), 1);
        let out = aig.output(0);
        assert!(aig.eval(out, &[true, true], &[]));
        assert!(!aig.eval(out, &[true, false], &[]));
    }

    #[test]
    fn parses_latch_with_init_value() {
        let text = "aag 2 1 1 1 0\n2\n4 2 1\n4\n";
        let aig = parse_aag(text).expect("parse");
        assert_eq!(aig.num_latches(), 1);
        assert!(aig.init(0));
        assert_eq!(aig.next(0), aig.input_lit(0));
    }

    #[test]
    fn parses_bad_state_section() {
        let text = "aag 3 1 1 0 1 1\n2\n4 6 0\n6\n6 2 4\n";
        let aig = parse_aag(text).expect("parse");
        assert_eq!(aig.num_bad(), 1);
        assert_eq!(aig.num_outputs(), 0);
    }

    #[test]
    fn parses_empty_bad_section() {
        // An explicit `B = 0` header field: no bad states, outputs stay
        // plain observables even after the HWMCC promotion.
        let text = "aag 3 1 1 1 1 0\n2\n4 6 0\n6\n6 2 4\n";
        let mut aig = parse_aag(text).expect("parse");
        assert_eq!(aig.num_bad(), 0);
        assert_eq!(aig.num_outputs(), 1);
        assert_eq!(aig.promote_outputs_to_bad(), 1);
        assert_eq!(aig.num_bad(), 1);
        assert_eq!(aig.bad(0), aig.output(0));
    }

    #[test]
    fn parses_many_bad_literals() {
        // A toggling latch with three bad-state properties: the latch, its
        // complement and an AND over latch and input.
        let text = "aag 3 1 1 0 1 3\n2\n4 5 0\n4\n5\n6\n6 2 4\n";
        let aig = parse_aag(text).expect("parse");
        assert_eq!(aig.num_bad(), 3);
        assert_eq!(aig.num_outputs(), 0);
        assert_eq!(aig.bad(1), !aig.bad(0), "bads 0/1 are complements");
        // Distinct properties resolve to distinct literals.
        assert_ne!(aig.bad(0), aig.bad(2));
        // Simulation sees per-property verdicts: with the input held high,
        // the latch starts 0 (bad 1 fires immediately), toggles to 1 at
        // cycle 1 (bads 0 and 2 fire there).
        let trace = crate::simulate(&aig, &[vec![true], vec![true]]);
        assert_eq!(trace.bad[0], vec![false, true, false]);
        assert_eq!(trace.bad[1], vec![true, false, true]);
    }

    #[test]
    fn outputs_as_properties_fallback_only_when_b_is_absent() {
        // Pre-1.9 file: outputs only.  The HWMCC convention promotes them.
        let no_b = "aag 2 1 1 2 0\n2\n4 2 0\n4\n2\n";
        let mut aig = parse_aag(no_b).expect("parse");
        assert_eq!(aig.num_bad(), 0);
        assert_eq!(aig.promote_outputs_to_bad(), 2);
        assert_eq!(aig.num_bad(), 2);
        // A 1.9 file with an explicit B section: outputs are NOT promoted.
        let with_b = "aag 2 1 1 1 0 1\n2\n4 2 0\n4\n2\n";
        let mut aig = parse_aag(with_b).expect("parse");
        assert_eq!((aig.num_outputs(), aig.num_bad()), (1, 1));
        assert_eq!(aig.promote_outputs_to_bad(), 0);
        assert_eq!(aig.num_bad(), 1);
    }

    #[test]
    fn multi_bad_roundtrip_through_writer() {
        let text = "aag 3 1 1 0 1 3\n2\n4 5 0\n4\n5\n6\n6 2 4\n";
        let aig = parse_aag(text).expect("parse");
        let rendered = to_aag(&aig);
        let back = parse_aag(&rendered).expect("reparse");
        assert_eq!(back.num_bad(), 3);
        assert_eq!(back.num_outputs(), 0);
        // Behavioural equality per property, not just counts.
        let stim = vec![vec![true], vec![false], vec![true]];
        assert_eq!(
            crate::simulate(&aig, &stim).bad,
            crate::simulate(&back, &stim).bad
        );
    }

    #[test]
    fn tolerates_comment_and_symbol_trailer() {
        // Real HWMCC files carry a symbol table and a `c` comment
        // section after the counted body lines; both are ignored.
        let text = "aag 3 1 1 0 1 1\n2\n4 6 0\n6\n6 2 4\ni0 req\nl0 state\nc\ngenerated by a synthesis tool\nsecond comment line\n";
        let aig = parse_aag(text).expect("parse");
        assert_eq!(aig.num_inputs(), 1);
        assert_eq!(aig.num_latches(), 1);
        assert_eq!(aig.num_bad(), 1);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn tolerates_crlf_line_endings() {
        let unix = "aag 3 1 1 0 1 1\n2\n4 6 0\n6\n6 2 4\n";
        let crlf = unix.replace('\n', "\r\n");
        let aig = parse_aag(&crlf).expect("parse CRLF");
        let reference = parse_aag(unix).expect("parse LF");
        assert_eq!(aig.num_inputs(), reference.num_inputs());
        assert_eq!(aig.num_latches(), reference.num_latches());
        assert_eq!(aig.num_bad(), reference.num_bad());
        let stim = vec![vec![true], vec![false], vec![true]];
        assert_eq!(
            crate::simulate(&aig, &stim).bad,
            crate::simulate(&reference, &stim).bad
        );
    }

    #[test]
    fn tolerates_crlf_with_comment_trailer() {
        let text =
            "aag 3 1 1 0 1 1\r\n2\r\n4 6 0\r\n6\r\n6 2 4\r\nc\r\nCRLF file with comments\r\n";
        let aig = parse_aag(text).expect("parse");
        assert_eq!((aig.num_latches(), aig.num_bad()), (1, 1));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse_aag("hello world\n"),
            Err(ParseAagError::BadHeader(_))
        ));
        assert!(matches!(
            parse_aag("aag 1 2\n"),
            Err(ParseAagError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_truncated_file() {
        assert!(matches!(
            parse_aag("aag 3 2 0 1 1\n2\n4\n"),
            Err(ParseAagError::Truncated)
        ));
    }

    #[test]
    fn rejects_cyclic_and_definitions() {
        // Two ANDs that reference each other and nothing else.
        let text = "aag 4 1 0 1 2\n2\n6\n6 8 2\n8 6 2\n";
        assert!(matches!(
            parse_aag(text),
            Err(ParseAagError::UnresolvedAnds)
        ));
    }

    #[test]
    fn roundtrip_through_writer() {
        let text = "aag 5 2 1 1 2 1\n2\n4\n6 10 0\n10\n10\n8 2 4\n10 8 6\n";
        let aig = parse_aag(text).expect("parse");
        let rendered = to_aag(&aig);
        let reparsed = parse_aag(&rendered).expect("reparse");
        assert_eq!(reparsed.num_inputs(), aig.num_inputs());
        assert_eq!(reparsed.num_latches(), aig.num_latches());
        assert_eq!(reparsed.num_ands(), aig.num_ands());
        assert_eq!(reparsed.num_outputs(), aig.num_outputs());
        assert_eq!(reparsed.num_bad(), aig.num_bad());
    }

    #[test]
    fn out_of_order_and_gates_are_accepted() {
        // Same design as `parses_minimal_combinational_design` but the AND
        // feeding the output is listed before the one it depends on.
        let text = "aag 4 2 0 1 2\n2\n4\n8\n8 6 2\n6 2 4\n";
        let aig = parse_aag(text).expect("parse");
        assert_eq!(aig.num_ands(), 2);
    }

    #[test]
    fn error_messages_are_informative() {
        let err = parse_aag("aag 1 1 0 0 0\nxyz\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        let err = parse_aag("nothdr").unwrap_err();
        assert!(err.to_string().contains("header"));
    }
}
