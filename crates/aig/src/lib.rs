//! And-Inverter Graph (AIG) representation of sequential circuits.
//!
//! This crate is the model substrate of the *Interpolation Sequences
//! Revisited* reproduction.  Sequential designs are stored as AIGs, the
//! de-facto standard representation used by hardware model checkers:
//!
//! * every combinational function is built from two-input AND nodes and
//!   edge inverters ([`Lit`] carries the complement bit),
//! * state is held in latches with a declared next-state function and a
//!   reset value,
//! * safety properties are expressed as *bad-state* literals (the property
//!   `p` holds iff the bad literal evaluates to false in every reachable
//!   state).
//!
//! The crate provides:
//!
//! * [`Aig`] — the graph itself, with structural hashing and constant
//!   folding on construction,
//! * [`builder`] — word-level helpers (adders, comparators, multiplexers,
//!   one-hot encoders) used by the synthetic workload generators,
//! * ASCII AIGER (`.aag`) [`reader`] and [`writer`],
//! * [`simulate()`] — cycle-accurate three-valued-free simulation,
//! * [`coi`] — sequential cone-of-influence extraction used by the
//!   localization abstraction of the CBA engine,
//! * [`passes`] — the preprocessing pass pipeline (structural hashing,
//!   constant sweeping, stuck-at latch removal, dead-logic and COI
//!   reduction) with per-pass statistics and a [`passes::Reconstruction`]
//!   mapping back to the original design.
//!
//! # Example
//!
//! ```
//! use aig::{Aig, Lit};
//!
//! // A 2-bit counter that asserts it never reaches the value 3.
//! let mut aig = Aig::new();
//! let b0 = aig.add_latch(false);
//! let b1 = aig.add_latch(false);
//! let l0 = aig.latch_lit(b0);
//! let l1 = aig.latch_lit(b1);
//! let n0 = !l0;                       // bit0 toggles every cycle
//! let carry = l0;
//! let n1 = aig.xor(l1, carry);        // bit1 toggles when bit0 carries
//! aig.set_next(b0, n0);
//! aig.set_next(b1, n1);
//! let bad = aig.and(l0, l1);          // "counter == 3"
//! aig.add_bad(bad);
//! assert_eq!(aig.num_latches(), 2);
//! ```

pub mod builder;
pub mod coi;
mod graph;
mod literal;
pub mod passes;
pub mod reader;
pub mod simulate;
pub mod writer;

pub use graph::{Aig, AigNode, LatchId, NodeId, VarKind};
pub use literal::Lit;
pub use reader::{parse_aag, ParseAagError};
pub use simulate::{simulate, SimTrace};
pub use writer::to_aag;
