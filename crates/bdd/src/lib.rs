//! A small Reduced Ordered Binary Decision Diagram (ROBDD) package with
//! relational image computation and exact reachability.
//!
//! The paper's Table I reports, next to every SAT-based engine, the exact
//! forward and backward circuit diameters (`d_F`, `d_B`) obtained with a
//! BDD-based traversal (and `ovf` when BDDs blow up).  This crate provides
//! exactly that capability:
//!
//! * [`Manager`] — unique-table based ROBDD manager with `ite`,
//!   quantification and order-preserving renaming,
//! * [`reach`] — symbolic forward/backward reachability over an
//!   [`aig::Aig`], exact property checking and diameter computation with a
//!   node-count overflow limit (mirroring the paper's `ovf` entries).
//!
//! # Example
//!
//! ```
//! use bdd::Manager;
//!
//! let mut mgr = Manager::new(2, 10_000);
//! let x = mgr.var(0).unwrap();
//! let y = mgr.var(1).unwrap();
//! let f = mgr.and(x, y).unwrap();
//! assert!(mgr.eval(f, &[true, true]));
//! assert!(!mgr.eval(f, &[true, false]));
//! ```

mod manager;
pub mod reach;

pub use manager::{Bdd, BddOverflow, Manager};
pub use reach::{diameters, BddVerdict, Diameters, ReachAnalysis};
