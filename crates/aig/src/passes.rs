//! Preprocessing pass pipeline: shrink a design before any solver sees it.
//!
//! Industrial AIGs carry plenty of logic a safety checker never needs:
//! duplicated gates, latches stuck at their reset value, primary inputs
//! nothing reads, and whole latch clusters outside the cone of influence
//! of the properties.  The pipeline here runs an ordered list of
//! reduction passes over a design and reports, for every pass, how many
//! AND gates, latches and inputs it removed:
//!
//! * [`PassKind::Strash`] — structural re-hashing: rebuilds every root
//!   cone through the hash-consing gate constructors, sharing duplicated
//!   gates and dropping AND nodes reachable from no root,
//! * [`PassKind::Constants`] — constant propagation and sweeping:
//!   latches whose next-state literal is the constant equal to their
//!   reset value hold that value forever; they are replaced by the
//!   constant and the fan-out is re-folded, to a fixpoint,
//! * [`PassKind::Stuck`] — stuck-at latch sweep: additionally treats
//!   positive self-loops (`next(l) = l`) as stuck at the reset value,
//! * [`PassKind::Dead`] — dead-logic removal: drops primary inputs (and
//!   AND gates) that appear in no bad-state cone and no next-state cone,
//! * [`PassKind::Coi`] — cone-of-influence reduction: keeps only the
//!   latches in the sequential COI of the bad-state properties (see
//!   [`crate::coi`]) and the inputs they read.
//!
//! Every pass is a *rebuild*: the kept cones are replayed through
//! [`Aig::and`], so constant folding and structural hashing apply
//! throughout.  Ordinary outputs are dropped — the reduced model is a
//! verification model, and the engines only ever read bad-state
//! literals.  Bad-state properties are preserved, same indices, same
//! order.
//!
//! The pipeline's second product is a [`Reconstruction`]: the mapping
//! from reduced coordinates back to the original design (which original
//! latch/input each reduced one stands for, plus the latches that were
//! proven stuck and at which value).  Verdicts transfer unchanged;
//! counterexample input traces lift through
//! [`Reconstruction::lift_inputs`]; inductive-invariant certificates
//! lift by re-indexing latches through [`Reconstruction::latch_map`] and
//! conjoining one unit clause per stuck latch.  On every reachable state
//! of the original design the reduced model agrees with the original on
//! all bad-state literals cycle by cycle, so counterexample depths and
//! verdict kinds are identical with preprocessing on or off.

use crate::coi::{self, Coi};
use crate::{Aig, AigNode, LatchId, Lit};
use std::collections::HashMap;

/// Per-pass enable switches for the preprocessing pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PassConfig {
    /// Structural re-hashing ([`PassKind::Strash`]).
    pub strash: bool,
    /// Constant propagation and sweeping ([`PassKind::Constants`]).
    pub constants: bool,
    /// Stuck-at latch sweep ([`PassKind::Stuck`]).
    pub stuck: bool,
    /// Dead-logic removal ([`PassKind::Dead`]).
    pub dead: bool,
    /// Cone-of-influence reduction ([`PassKind::Coi`]).
    pub coi: bool,
}

impl Default for PassConfig {
    /// Every pass enabled.
    fn default() -> PassConfig {
        PassConfig {
            strash: true,
            constants: true,
            stuck: true,
            dead: true,
            coi: true,
        }
    }
}

impl PassConfig {
    /// A configuration with every pass disabled (preprocessing off).
    pub fn off() -> PassConfig {
        PassConfig {
            strash: false,
            constants: false,
            stuck: false,
            dead: false,
            coi: false,
        }
    }

    /// True when at least one pass is enabled.
    pub fn enabled(&self) -> bool {
        self.strash || self.constants || self.stuck || self.dead || self.coi
    }

    /// The enabled passes in pipeline order.
    pub fn passes(&self) -> Vec<PassKind> {
        let mut out = Vec::new();
        if self.strash {
            out.push(PassKind::Strash);
        }
        if self.constants {
            out.push(PassKind::Constants);
        }
        if self.stuck {
            out.push(PassKind::Stuck);
        }
        if self.dead {
            out.push(PassKind::Dead);
        }
        if self.coi {
            out.push(PassKind::Coi);
        }
        out
    }
}

/// One reduction pass of the pipeline, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassKind {
    /// Structural re-hashing and unreachable-AND removal.
    Strash,
    /// Constant propagation: sweep latches whose next-state literal is
    /// the constant equal to their reset value.
    Constants,
    /// Stuck-at sweep: additionally sweep positive self-loop latches.
    Stuck,
    /// Dead-logic removal: drop inputs read by no root cone.
    Dead,
    /// Sequential cone-of-influence reduction over the bad-state
    /// properties.
    Coi,
}

impl PassKind {
    /// Stable lower-case pass name used in stats, telemetry and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PassKind::Strash => "strash",
            PassKind::Constants => "constants",
            PassKind::Stuck => "stuck",
            PassKind::Dead => "dead",
            PassKind::Coi => "coi",
        }
    }
}

/// What one pass removed from the design.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassStats {
    /// Which pass ran.
    pub pass: PassKind,
    /// AND gates removed by the pass.
    pub ands_removed: u64,
    /// Latches removed by the pass.
    pub latches_removed: u64,
    /// Primary inputs removed by the pass.
    pub inputs_removed: u64,
}

/// Aggregate statistics for a full pipeline run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Per-pass removal counts, in execution order.
    pub passes: Vec<PassStats>,
    /// Shape of the original design.
    pub orig_ands: usize,
    /// Original latch count.
    pub orig_latches: usize,
    /// Original primary-input count.
    pub orig_inputs: usize,
    /// Shape of the reduced design.
    pub final_ands: usize,
    /// Reduced latch count.
    pub final_latches: usize,
    /// Reduced primary-input count.
    pub final_inputs: usize,
}

impl PipelineStats {
    /// Total AND gates removed across all passes.
    pub fn ands_removed(&self) -> u64 {
        (self.orig_ands.saturating_sub(self.final_ands)) as u64
    }

    /// Total latches removed across all passes.
    pub fn latches_removed(&self) -> u64 {
        (self.orig_latches.saturating_sub(self.final_latches)) as u64
    }

    /// Total primary inputs removed across all passes.
    pub fn inputs_removed(&self) -> u64 {
        (self.orig_inputs.saturating_sub(self.final_inputs)) as u64
    }
}

/// The mapping from a reduced design back to the original it came from.
///
/// Reduced latch `i` stands for original latch `latch_map[i]`; reduced
/// input `i` for original input `input_map[i]`.  Original latches in
/// neither `latch_map` nor `stuck` were outside the properties' cone of
/// influence — they are unconstrained and need no reconstruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reconstruction {
    /// Number of primary inputs of the original design.
    pub orig_inputs: usize,
    /// Number of latches of the original design.
    pub orig_latches: usize,
    /// `input_map[reduced_index] = original_index`, strictly ascending.
    pub input_map: Vec<usize>,
    /// `latch_map[reduced_index] = original_index`, strictly ascending.
    pub latch_map: Vec<usize>,
    /// Latches proven to hold a constant value in every reachable state,
    /// as `(original latch index, value)`, ascending by index.  The
    /// value always equals the latch's reset value.
    pub stuck: Vec<(usize, bool)>,
}

impl Reconstruction {
    /// The identity mapping for a design of the given shape.
    pub fn identity(num_inputs: usize, num_latches: usize) -> Reconstruction {
        Reconstruction {
            orig_inputs: num_inputs,
            orig_latches: num_latches,
            input_map: (0..num_inputs).collect(),
            latch_map: (0..num_latches).collect(),
            stuck: Vec::new(),
        }
    }

    /// True when the mapping is the identity (nothing was removed).
    pub fn is_identity(&self) -> bool {
        self.stuck.is_empty()
            && self.input_map.len() == self.orig_inputs
            && self.latch_map.len() == self.orig_latches
    }

    /// Lifts a reduced-width input trace to original width.  Original
    /// inputs without a reduced counterpart were proven irrelevant to
    /// every property; they are driven to `false`.
    pub fn lift_inputs(&self, frames: &[Vec<bool>]) -> Vec<Vec<bool>> {
        frames
            .iter()
            .map(|frame| {
                let mut lifted = vec![false; self.orig_inputs];
                for (reduced, &orig) in self.input_map.iter().enumerate() {
                    lifted[orig] = frame[reduced];
                }
                lifted
            })
            .collect()
    }

    /// Projects an original-width input trace down to reduced width (the
    /// inverse direction of [`Reconstruction::lift_inputs`], used by the
    /// behavioural-equivalence tests).
    pub fn project_inputs(&self, frames: &[Vec<bool>]) -> Vec<Vec<bool>> {
        frames
            .iter()
            .map(|frame| self.input_map.iter().map(|&orig| frame[orig]).collect())
            .collect()
    }

    /// Narrows the mapping after a pass kept only the listed reduced
    /// indices (ascending) and proved the given reduced latches stuck.
    fn retain(&mut self, keep_inputs: &[usize], keep_latches: &[usize], stuck: &[(usize, bool)]) {
        for &(latch, value) in stuck {
            self.stuck.push((self.latch_map[latch], value));
        }
        self.stuck.sort_unstable();
        self.input_map = keep_inputs.iter().map(|&i| self.input_map[i]).collect();
        self.latch_map = keep_latches.iter().map(|&l| self.latch_map[l]).collect();
    }
}

/// The product of a pipeline run: the reduced design, the way back, and
/// the per-pass accounting.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// The reduced design (same bad-state properties, same order).
    pub aig: Aig,
    /// Mapping from reduced coordinates back to the original design.
    pub recon: Reconstruction,
    /// Per-pass and aggregate reduction statistics.
    pub stats: PipelineStats,
    /// Per-property sequential COIs *in reduced coordinates*, computed
    /// as a by-product of the [`PassKind::Coi`] pass (None when that
    /// pass did not run).  The multi-property scheduler reuses these
    /// instead of recomputing them.
    pub bad_cois: Option<Vec<Coi>>,
}

/// A stepwise pipeline driver: callers that want to time or trace each
/// pass run them one at a time; everyone else uses [`run`].
pub struct Pipeline {
    aig: Aig,
    recon: Reconstruction,
    stats: PipelineStats,
    bad_cois: Option<Vec<Coi>>,
}

impl Pipeline {
    /// Starts a pipeline over a copy of `aig`.
    pub fn new(aig: &Aig) -> Pipeline {
        let recon = Reconstruction::identity(aig.num_inputs(), aig.num_latches());
        let stats = PipelineStats {
            passes: Vec::new(),
            orig_ands: aig.num_ands(),
            orig_latches: aig.num_latches(),
            orig_inputs: aig.num_inputs(),
            final_ands: aig.num_ands(),
            final_latches: aig.num_latches(),
            final_inputs: aig.num_inputs(),
        };
        Pipeline {
            aig: aig.clone(),
            recon,
            stats,
            bad_cois: None,
        }
    }

    /// The current (possibly partially reduced) design.
    pub fn aig(&self) -> &Aig {
        &self.aig
    }

    /// Runs one pass and returns what it removed.  Passes are meant to
    /// run in [`PassConfig::passes`] order.
    pub fn run_pass(&mut self, kind: PassKind) -> PassStats {
        let before = (
            self.aig.num_ands(),
            self.aig.num_latches(),
            self.aig.num_inputs(),
        );
        match kind {
            PassKind::Strash => self.pass_strash(),
            PassKind::Constants => self.pass_constant_sweep(false),
            PassKind::Stuck => self.pass_constant_sweep(true),
            PassKind::Dead => self.pass_dead(),
            PassKind::Coi => self.pass_coi(),
        }
        let stats = PassStats {
            pass: kind,
            ands_removed: before.0.saturating_sub(self.aig.num_ands()) as u64,
            latches_removed: before.1.saturating_sub(self.aig.num_latches()) as u64,
            inputs_removed: before.2.saturating_sub(self.aig.num_inputs()) as u64,
        };
        self.stats.passes.push(stats);
        self.stats.final_ands = self.aig.num_ands();
        self.stats.final_latches = self.aig.num_latches();
        self.stats.final_inputs = self.aig.num_inputs();
        stats
    }

    /// Finishes the pipeline, handing out the reduced design and the
    /// reconstruction mapping.
    pub fn finish(self) -> PipelineResult {
        PipelineResult {
            aig: self.aig,
            recon: self.recon,
            stats: self.stats,
            bad_cois: self.bad_cois,
        }
    }

    /// Rebuild keeping everything: shares duplicated gates and drops AND
    /// nodes no root cone reaches.
    fn pass_strash(&mut self) {
        let keep_inputs: Vec<usize> = (0..self.aig.num_inputs()).collect();
        let keep_latches: Vec<usize> = (0..self.aig.num_latches()).collect();
        self.rebuild(&keep_inputs, &keep_latches, &HashMap::new());
    }

    /// Sweeps constant-valued latches to a fixpoint.  A latch is stuck
    /// when its next-state literal is the constant equal to its reset
    /// value; with `self_loops` also when its next-state literal is the
    /// latch itself (it then never leaves the reset value either).
    fn pass_constant_sweep(&mut self, self_loops: bool) {
        loop {
            let mut stuck: Vec<(LatchId, bool)> = Vec::new();
            for (l, next, init) in self.aig.latches() {
                let const_stuck = next.constant_value() == Some(init);
                let loop_stuck = self_loops && next == self.aig.latch_lit(l);
                if const_stuck || loop_stuck {
                    stuck.push((l, init));
                }
            }
            if stuck.is_empty() {
                return;
            }
            let stuck_map: HashMap<LatchId, bool> = stuck.iter().copied().collect();
            let keep_inputs: Vec<usize> = (0..self.aig.num_inputs()).collect();
            let keep_latches: Vec<usize> = (0..self.aig.num_latches())
                .filter(|l| !stuck_map.contains_key(l))
                .collect();
            self.recon.retain(&keep_inputs, &keep_latches, &stuck);
            self.rebuild(&keep_inputs, &keep_latches, &stuck_map);
            // Substituting the constants may have folded further
            // next-state literals down to constants — iterate.
        }
    }

    /// Drops primary inputs outside every root cone (bad-state literals
    /// and next-state functions), plus unreachable ANDs.
    fn pass_dead(&mut self) {
        let mut roots: Vec<Lit> = self.aig.bad_lits().collect();
        roots.extend(self.aig.latches().map(|(_, next, _)| next));
        let support = coi::combinational_support_many(&self.aig, &roots);
        let keep_inputs: Vec<usize> = (0..self.aig.num_inputs())
            .filter(|i| support.inputs.contains(i))
            .collect();
        let keep_latches: Vec<usize> = (0..self.aig.num_latches()).collect();
        self.recon.retain(&keep_inputs, &keep_latches, &[]);
        self.rebuild(&keep_inputs, &keep_latches, &HashMap::new());
    }

    /// Keeps only the latches in the sequential COI of the bad-state
    /// properties and the inputs those cones read; records the per-
    /// property COIs (remapped to reduced coordinates) for the
    /// multi-property scheduler.
    fn pass_coi(&mut self) {
        let cois = coi::bad_cois(&self.aig);
        let mut union = Coi::default();
        for coi in &cois {
            union.latches.extend(coi.latches.iter().copied());
            union.inputs.extend(coi.inputs.iter().copied());
        }
        let keep_inputs: Vec<usize> = (0..self.aig.num_inputs())
            .filter(|i| union.inputs.contains(i))
            .collect();
        let keep_latches: Vec<usize> = (0..self.aig.num_latches())
            .filter(|l| union.latches.contains(l))
            .collect();
        // Reduced index of each kept original-coordinate latch/input.
        let latch_index: HashMap<usize, usize> = keep_latches
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let input_index: HashMap<usize, usize> = keep_inputs
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        self.bad_cois = Some(
            cois.iter()
                .map(|coi| Coi {
                    latches: coi.latches.iter().map(|l| latch_index[l]).collect(),
                    inputs: coi.inputs.iter().map(|i| input_index[i]).collect(),
                })
                .collect(),
        );
        self.recon.retain(&keep_inputs, &keep_latches, &[]);
        self.rebuild(&keep_inputs, &keep_latches, &HashMap::new());
    }

    /// Rebuilds the design keeping the listed inputs and latches
    /// (ascending current indices); latches in `stuck` are replaced by
    /// their constant value.  Kept cones are replayed through the
    /// hash-consing gate constructors, so folding and sharing apply.
    ///
    /// # Panics
    ///
    /// Panics if a kept cone references a latch or input that is neither
    /// kept nor stuck — the pass selections above maintain that closure.
    fn rebuild(
        &mut self,
        keep_inputs: &[usize],
        keep_latches: &[usize],
        stuck: &HashMap<LatchId, bool>,
    ) {
        let old = &self.aig;
        let mut new = Aig::new();
        new.set_name(old.name());
        let mut map: Vec<Option<Lit>> = vec![None; old.num_nodes()];
        map[0] = Some(Lit::FALSE);
        for &i in keep_inputs {
            let id = new.add_input();
            map[old.input_node(i) as usize] = Some(Lit::positive(id));
        }
        for &l in keep_latches {
            let lid = new.add_latch(old.init(l));
            map[old.latch_node(l) as usize] = Some(new.latch_lit(lid));
        }
        for (&l, &value) in stuck {
            map[old.latch_node(l) as usize] = Some(if value { Lit::TRUE } else { Lit::FALSE });
        }
        for (new_idx, &l) in keep_latches.iter().enumerate() {
            let next = translate(old, old.next(l), &mut new, &mut map);
            new.set_next(new_idx, next);
        }
        for bad in old.bad_lits().collect::<Vec<_>>() {
            let lit = translate(old, bad, &mut new, &mut map);
            new.add_bad(lit);
        }
        self.aig = new;
    }
}

/// Translates `root` from `old` into `new` through the mapping table,
/// building (or reusing) the cone bottom-up.
fn translate(old: &Aig, root: Lit, new: &mut Aig, map: &mut [Option<Lit>]) -> Lit {
    let mut stack: Vec<(crate::NodeId, bool)> = vec![(root.node(), false)];
    while let Some((id, expanded)) = stack.pop() {
        if map[id as usize].is_some() {
            continue;
        }
        match old.node(id) {
            AigNode::And { left, right } => {
                if expanded {
                    let l = map[left.node() as usize]
                        .expect("fan-in translated first")
                        .xor_complement(left.is_complemented());
                    let r = map[right.node() as usize]
                        .expect("fan-in translated first")
                        .xor_complement(right.is_complemented());
                    map[id as usize] = Some(new.and(l, r));
                } else {
                    stack.push((id, true));
                    stack.push((left.node(), false));
                    stack.push((right.node(), false));
                }
            }
            node => panic!("cone escapes the kept support: {node:?}"),
        }
    }
    map[root.node() as usize]
        .expect("root translated")
        .xor_complement(root.is_complemented())
}

/// Runs every enabled pass in order and returns the reduced design, the
/// reconstruction mapping and the per-pass statistics.
pub fn run(aig: &Aig, config: &PassConfig) -> PipelineResult {
    let mut pipeline = Pipeline::new(aig);
    for kind in config.passes() {
        pipeline.run_pass(kind);
    }
    pipeline.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate;

    /// chain A feeds the property; latch `s` is stuck at reset; chain B
    /// and input `dead` are irrelevant.
    fn mixed_design() -> Aig {
        let mut aig = Aig::new();
        // chain A: a0 <- a1 <- in0
        let a0 = aig.add_latch(false);
        let a1 = aig.add_latch(false);
        let i0 = Lit::positive(aig.add_input());
        aig.set_next(a1, i0);
        let a1lit = aig.latch_lit(a1);
        aig.set_next(a0, a1lit);
        // stuck latch: next is the constant equal to init.
        let s = aig.add_latch(false);
        aig.set_next(s, Lit::FALSE);
        // chain B: latch fed by input 1, read by nothing.
        let b0 = aig.add_latch(false);
        let i1 = Lit::positive(aig.add_input());
        let b0lit = aig.latch_lit(b0);
        let g = aig.and(b0lit, i1);
        aig.set_next(b0, g);
        // a dead input: referenced by no cone at all.
        let _dead = aig.add_input();
        // property reads chain A and the stuck latch.
        let slit = aig.latch_lit(s);
        let a0lit = aig.latch_lit(a0);
        let bad = aig.and(a0lit, !slit);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn full_pipeline_reduces_mixed_design() {
        let aig = mixed_design();
        let result = run(&aig, &PassConfig::default());
        // Kept: a0, a1.  Removed: stuck s, out-of-COI b0.
        assert_eq!(result.aig.num_latches(), 2);
        assert_eq!(result.recon.latch_map, vec![0, 1]);
        assert_eq!(result.recon.stuck, vec![(2, false)]);
        // Kept: input 0.  Removed: chain-B input and the dead input.
        assert_eq!(result.aig.num_inputs(), 1);
        assert_eq!(result.recon.input_map, vec![0]);
        assert_eq!(result.aig.num_bad(), 1);
        assert_eq!(result.stats.latches_removed(), 2);
        assert_eq!(result.stats.inputs_removed(), 2);
    }

    #[test]
    fn stuck_substitution_simplifies_property() {
        let aig = mixed_design();
        let result = run(&aig, &PassConfig::default());
        // bad = a0 ∧ ¬s with s stuck at 0 folds to just a0.
        assert_eq!(result.aig.bad(0), result.aig.latch_lit(0));
    }

    #[test]
    fn self_loop_latch_swept_only_with_stuck_pass() {
        let mut aig = Aig::new();
        let l = aig.add_latch(true); // defaults to a self-loop
        let llit = aig.latch_lit(l);
        aig.add_bad(!llit);
        let without = run(
            &aig,
            &PassConfig {
                stuck: false,
                ..PassConfig::default()
            },
        );
        assert_eq!(without.aig.num_latches(), 1);
        let with = run(&aig, &PassConfig::default());
        assert_eq!(with.aig.num_latches(), 0);
        assert_eq!(with.recon.stuck, vec![(0, true)]);
        // bad = ¬l with l stuck at 1 folds to constant false.
        assert_eq!(with.aig.bad(0), Lit::FALSE);
    }

    #[test]
    fn negative_self_loop_is_not_stuck() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        let llit = aig.latch_lit(l);
        aig.set_next(l, !llit); // oscillates 0,1,0,1,...
        aig.add_bad(llit);
        let result = run(&aig, &PassConfig::default());
        assert_eq!(result.aig.num_latches(), 1);
        assert!(result.recon.stuck.is_empty());
    }

    #[test]
    fn constant_next_differing_from_init_is_not_stuck() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, Lit::TRUE); // 0 at cycle 0, then 1 forever
        aig.add_bad(aig.latch_lit(l));
        let result = run(&aig, &PassConfig::default());
        assert_eq!(result.aig.num_latches(), 1);
        assert!(result.recon.stuck.is_empty());
    }

    #[test]
    fn constant_sweep_iterates_to_fixpoint() {
        let mut aig = Aig::new();
        // l0 stuck at 0; l1's next = l0 ∧ input folds to 0 = init(l1)
        // only after l0 is substituted.
        let l0 = aig.add_latch(false);
        aig.set_next(l0, Lit::FALSE);
        let l1 = aig.add_latch(false);
        let i = Lit::positive(aig.add_input());
        let l0lit = aig.latch_lit(l0);
        let g = aig.and(l0lit, i);
        aig.set_next(l1, g);
        let l1lit = aig.latch_lit(l1);
        aig.add_bad(l1lit);
        let result = run(&aig, &PassConfig::default());
        assert_eq!(result.aig.num_latches(), 0);
        assert_eq!(result.recon.stuck, vec![(0, false), (1, false)]);
        assert_eq!(result.aig.bad(0), Lit::FALSE);
    }

    #[test]
    fn disabled_pipeline_is_identity() {
        let aig = mixed_design();
        let config = PassConfig::off();
        assert!(!config.enabled());
        assert!(config.passes().is_empty());
        let result = run(&aig, &config);
        assert!(result.recon.is_identity());
        assert_eq!(result.aig.num_latches(), aig.num_latches());
        assert_eq!(result.aig.num_inputs(), aig.num_inputs());
        assert!(result.stats.passes.is_empty());
    }

    #[test]
    fn lift_and_project_inputs_roundtrip() {
        let aig = mixed_design();
        let result = run(&aig, &PassConfig::default());
        let reduced_frames = vec![vec![true], vec![false]];
        let lifted = result.recon.lift_inputs(&reduced_frames);
        assert_eq!(lifted, vec![vec![true, false, false], vec![false; 3]]);
        assert_eq!(result.recon.project_inputs(&lifted), reduced_frames);
    }

    #[test]
    fn reduced_model_agrees_on_bad_values() {
        let aig = mixed_design();
        let result = run(&aig, &PassConfig::default());
        // Drive every original input with a varied pattern; the reduced
        // model sees the projection and must report identical bad values
        // in every cycle.
        let frames: Vec<Vec<bool>> = (0..8)
            .map(|t| (0..3).map(|i| (t + i) % (i + 2) == 0).collect())
            .collect();
        let orig = simulate(&aig, &frames);
        let reduced = simulate(&result.aig, &result.recon.project_inputs(&frames));
        assert_eq!(orig.bad, reduced.bad);
    }

    #[test]
    fn per_pass_stats_sum_to_totals() {
        let aig = mixed_design();
        let result = run(&aig, &PassConfig::default());
        let latches: u64 = result.stats.passes.iter().map(|p| p.latches_removed).sum();
        let inputs: u64 = result.stats.passes.iter().map(|p| p.inputs_removed).sum();
        assert_eq!(latches, result.stats.latches_removed());
        assert_eq!(inputs, result.stats.inputs_removed());
        assert_eq!(result.stats.orig_latches, 4);
        assert_eq!(result.stats.final_latches, 2);
    }

    #[test]
    fn coi_pass_reports_reduced_coordinate_cois() {
        let mut aig = Aig::new();
        // Two independent chains, each with its own property.
        let a = aig.add_latch(false);
        let ia = Lit::positive(aig.add_input());
        aig.set_next(a, ia);
        let b = aig.add_latch(false);
        let ib = Lit::positive(aig.add_input());
        aig.set_next(b, ib);
        let alit = aig.latch_lit(a);
        let blit = aig.latch_lit(b);
        aig.add_bad(alit);
        aig.add_bad(blit);
        let result = run(&aig, &PassConfig::default());
        let cois = result.bad_cois.expect("coi pass ran");
        assert_eq!(cois.len(), 2);
        assert!(cois[0].latches.contains(&0) && !cois[0].latches.contains(&1));
        assert!(cois[1].latches.contains(&1) && !cois[1].latches.contains(&0));
        assert_eq!(coi::group_bads_from_cois(&cois), vec![vec![0], vec![1]]);
    }

    #[test]
    fn strash_shares_duplicated_gates_across_roots() {
        // Build two structurally identical cones the hard way: the
        // constructors already share, so duplicate via separate designs
        // merged by hand is not possible — instead check that a rebuild
        // drops an AND no root reaches.
        let mut aig = Aig::new();
        let i0 = Lit::positive(aig.add_input());
        let i1 = Lit::positive(aig.add_input());
        let used = aig.and(i0, i1);
        let _orphan = aig.and(i0, !i1);
        aig.add_bad(used);
        assert_eq!(aig.num_ands(), 2);
        let result = run(
            &aig,
            &PassConfig {
                strash: true,
                constants: false,
                stuck: false,
                dead: false,
                coi: false,
            },
        );
        assert_eq!(result.aig.num_ands(), 1);
        assert_eq!(result.stats.passes[0].ands_removed, 1);
        // Strash alone keeps every input and latch.
        assert_eq!(result.aig.num_inputs(), 2);
    }
}
