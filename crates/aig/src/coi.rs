//! Sequential cone-of-influence (COI) analysis.
//!
//! The localization abstraction used by the CBA-enhanced engine needs to
//! know which latches can influence the property at all, and which latches
//! sit in the *direct* combinational support of a signal.  Both queries are
//! answered here.

use crate::{Aig, AigNode, LatchId, Lit};
use std::collections::HashSet;

/// The result of a sequential cone-of-influence computation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Coi {
    /// Latches that can (transitively, through any number of time frames)
    /// influence the analysed literals.
    pub latches: HashSet<LatchId>,
    /// Primary inputs in the transitive fan-in.
    pub inputs: HashSet<usize>,
}

/// Collects the latches and inputs appearing in the *combinational* support
/// of `lit` (no traversal through latch boundaries).
pub fn combinational_support(aig: &Aig, lit: Lit) -> Coi {
    let mut coi = Coi::default();
    let mut seen = HashSet::new();
    collect(aig, lit, &mut seen, &mut coi);
    coi
}

/// Collects the combinational support of several literals at once.
pub fn combinational_support_many(aig: &Aig, lits: &[Lit]) -> Coi {
    let mut coi = Coi::default();
    let mut seen = HashSet::new();
    for &lit in lits {
        collect(aig, lit, &mut seen, &mut coi);
    }
    coi
}

fn collect(aig: &Aig, lit: Lit, seen: &mut HashSet<u32>, coi: &mut Coi) {
    let mut stack = vec![lit.node()];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        match aig.node(id) {
            AigNode::Const => {}
            AigNode::Input { index } => {
                coi.inputs.insert(index);
            }
            AigNode::Latch { index } => {
                coi.latches.insert(index);
            }
            AigNode::And { left, right } => {
                stack.push(left.node());
                stack.push(right.node());
            }
        }
    }
}

/// Computes the *sequential* cone of influence of the given literals: the
/// least set of latches closed under "appears in the combinational support
/// of the next-state function of a latch already in the set", seeded with
/// the combinational support of the literals themselves.
pub fn sequential_coi(aig: &Aig, lits: &[Lit]) -> Coi {
    let mut coi = combinational_support_many(aig, lits);
    let mut frontier: Vec<LatchId> = coi.latches.iter().copied().collect();
    while let Some(latch) = frontier.pop() {
        let next = aig.next(latch);
        let local = combinational_support(aig, next);
        for l in local.latches {
            if coi.latches.insert(l) {
                frontier.push(l);
            }
        }
        coi.inputs.extend(local.inputs);
    }
    coi
}

/// Computes the sequential COI of every bad-state literal of the design.
pub fn property_coi(aig: &Aig) -> Coi {
    let bads: Vec<Lit> = aig.bad_lits().collect();
    sequential_coi(aig, &bads)
}

/// The sequential COI of each bad-state property, indexed by property.
pub fn bad_cois(aig: &Aig) -> Vec<Coi> {
    aig.bad_lits()
        .map(|bad| sequential_coi(aig, &[bad]))
        .collect()
}

/// Partitions the bad-state properties into groups whose sequential COIs
/// overlap on at least one *latch* (the connected components of the
/// latch-sharing relation).  Properties in different groups read disjoint
/// state, so a multi-property engine gains nothing from checking them on
/// one shared trace — the scheduler hands each group to its own engine
/// instance instead.
///
/// Purely combinational properties (empty latch COI) each form their own
/// singleton group.  The result is deterministic: groups are ordered by
/// their smallest property index and members are ascending.
pub fn group_bads_by_coi(aig: &Aig) -> Vec<Vec<usize>> {
    group_bads_from_cois(&bad_cois(aig))
}

/// Partitions properties into latch-sharing connected components given
/// their already-computed sequential COIs (`cois[i]` belongs to property
/// `i`).  This is [`group_bads_by_coi`] with the COI computation factored
/// out, so the preprocessing pipeline's per-property COI by-product can
/// be reused instead of recomputed.
pub fn group_bads_from_cois(cois: &[Coi]) -> Vec<Vec<usize>> {
    // Union-find over property indices, latches as the joining keys.
    let mut parent: Vec<usize> = (0..cois.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut owner_of_latch: std::collections::HashMap<LatchId, usize> =
        std::collections::HashMap::new();
    for (prop, coi) in cois.iter().enumerate() {
        for &latch in &coi.latches {
            match owner_of_latch.entry(latch) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(prop);
                }
                std::collections::hash_map::Entry::Occupied(slot) => {
                    let a = find(&mut parent, *slot.get());
                    let b = find(&mut parent, prop);
                    // Union towards the smaller root so group order below
                    // is independent of latch iteration order.
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    parent[hi] = lo;
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); cois.len()];
    for prop in 0..cois.len() {
        let root = find(&mut parent, prop);
        groups[root].push(prop);
    }
    groups.retain(|g| !g.is_empty());
    // Members are already ascending (pushed in index order); roots are the
    // smallest member, so retaining in root order keeps groups sorted by
    // their smallest property index.
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Aig;

    /// Two independent latch chains; the property only reads chain A.
    fn two_chains() -> (Aig, Lit) {
        let mut aig = Aig::new();
        // chain A: a0 <- a1 <- input0
        let a0 = aig.add_latch(false);
        let a1 = aig.add_latch(false);
        let i0 = Lit::positive(aig.add_input());
        aig.set_next(a1, i0);
        let a1lit = aig.latch_lit(a1);
        aig.set_next(a0, a1lit);
        // chain B: independent latch fed by input1
        let b0 = aig.add_latch(false);
        let i1 = Lit::positive(aig.add_input());
        aig.set_next(b0, i1);
        let bad = aig.latch_lit(a0);
        aig.add_bad(bad);
        (aig, bad)
    }

    #[test]
    fn combinational_support_stops_at_latches() {
        let (aig, bad) = two_chains();
        let coi = combinational_support(&aig, bad);
        assert_eq!(coi.latches.len(), 1);
        assert!(coi.latches.contains(&0));
        assert!(coi.inputs.is_empty());
    }

    #[test]
    fn sequential_coi_follows_next_state_functions() {
        let (aig, bad) = two_chains();
        let coi = sequential_coi(&aig, &[bad]);
        assert_eq!(coi.latches.len(), 2, "latch b0 must be excluded");
        assert!(coi.latches.contains(&0));
        assert!(coi.latches.contains(&1));
        assert!(coi.inputs.contains(&0));
        assert!(!coi.inputs.contains(&1));
    }

    #[test]
    fn property_coi_uses_bad_literals() {
        let (aig, _) = two_chains();
        let coi = property_coi(&aig);
        assert_eq!(coi.latches.len(), 2);
    }

    #[test]
    fn constant_literal_has_empty_coi() {
        let aig = Aig::new();
        let coi = combinational_support(&aig, Lit::TRUE);
        assert!(coi.latches.is_empty());
        assert!(coi.inputs.is_empty());
    }

    /// Three latch chains A, B, C; properties over A, B, A∧B and C.
    fn grouped_design() -> Aig {
        let mut aig = Aig::new();
        let chain = |aig: &mut Aig| {
            let l = aig.add_latch(false);
            let i = Lit::positive(aig.add_input());
            aig.set_next(l, i);
            aig.latch_lit(l)
        };
        let a = chain(&mut aig);
        let b = chain(&mut aig);
        let c = chain(&mut aig);
        aig.add_bad(a); // prop 0: chain A
        aig.add_bad(b); // prop 1: chain B
        let ab = aig.and(a, b);
        aig.add_bad(ab); // prop 2: bridges A and B
        aig.add_bad(c); // prop 3: chain C alone
        aig
    }

    #[test]
    fn bad_cois_are_per_property() {
        let aig = grouped_design();
        let cois = bad_cois(&aig);
        assert_eq!(cois.len(), 4);
        assert_eq!(cois[0].latches.len(), 1);
        assert_eq!(cois[2].latches.len(), 2, "prop 2 reads both A and B");
    }

    #[test]
    fn coi_groups_are_connected_components() {
        let aig = grouped_design();
        // Prop 2 bridges chains A and B, so {0, 1, 2} is one group and the
        // C-only property is alone.
        assert_eq!(group_bads_by_coi(&aig), vec![vec![0, 1, 2], vec![3]]);
    }

    #[test]
    fn disjoint_properties_form_singleton_groups() {
        let (aig, _) = two_chains();
        assert_eq!(group_bads_by_coi(&aig), vec![vec![0]]);
        let mut combinational = Aig::new();
        let i = Lit::positive(combinational.add_input());
        combinational.add_bad(i);
        combinational.add_bad(!i);
        // No latches at all: each property stands alone.
        assert_eq!(group_bads_by_coi(&combinational), vec![vec![0], vec![1]]);
    }

    #[test]
    fn support_of_and_gate_includes_both_sides() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        let i = Lit::positive(aig.add_input());
        let llit = aig.latch_lit(l);
        let g = aig.and(llit, i);
        let coi = combinational_support(&aig, g);
        assert!(coi.latches.contains(&0));
        assert!(coi.inputs.contains(&0));
    }
}
