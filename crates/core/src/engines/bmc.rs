//! Plain bounded model checking.
//!
//! BMC only ever falsifies properties; it is included both as the baseline
//! the interpolation engines are built on and because the paper repeatedly
//! contrasts the cost of the three target formulations (*bound-k*,
//! *exact-k*, *exact-assume-k*).

use crate::engines::CancelToken;
use crate::{EngineResult, EngineStats, Options, Verdict};
use aig::Aig;
use cnf::BmcCheck;
use sat::{SolveResult, Solver};
use std::time::Instant;

/// Returns `true` when a bad state is already reachable at depth 0, i.e.
/// the initial states themselves violate the property.  All engines run
/// this check before their main loops, which start at bound 1.
pub(crate) fn initial_violation(aig: &Aig, bad_index: usize) -> bool {
    let mut unroller = cnf::Unroller::new(aig);
    unroller.assert_initial(0);
    let bad = unroller.bad_lit(0, bad_index);
    unroller.assert_lit(bad);
    let mut solver = Solver::new();
    solver.add_cnf(&unroller.into_cnf());
    solver.solve() == SolveResult::Sat
}

/// Runs BMC on bad-state property `bad_index`, increasing the bound until a
/// counterexample is found or the bound/time budget is exhausted.
pub fn verify(aig: &Aig, bad_index: usize, options: &Options) -> EngineResult {
    verify_with_cancel(aig, bad_index, options, &CancelToken::new())
}

/// [`verify`] under a cancellation token: the bound loop and each SAT
/// query stop soon after the token is cancelled.
pub fn verify_with_cancel(
    aig: &Aig,
    bad_index: usize,
    options: &Options,
    cancel: &CancelToken,
) -> EngineResult {
    let start = Instant::now();
    let mut stats = EngineStats {
        visible_latches: aig.num_latches(),
        ..EngineStats::default()
    };
    if initial_violation(aig, bad_index) {
        stats.sat_calls += 1;
        stats.time = start.elapsed();
        return EngineResult {
            verdict: Verdict::Falsified { depth: 0 },
            stats,
        };
    }
    stats.sat_calls += 1;
    // `bound-k` already covers all depths up to k, so for plain BMC the
    // exact/assume schemes are the natural incremental formulations.
    let check = options.check;
    for k in 1..=options.max_bound {
        if let Some(reason) = crate::engines::stop_reason(cancel, start, options.timeout) {
            stats.time = start.elapsed();
            return EngineResult {
                verdict: Verdict::Inconclusive {
                    reason: reason.to_string(),
                    bound_reached: k.saturating_sub(1),
                },
                stats,
            };
        }
        let instance = cnf::bmc::build(aig, bad_index, k, check);
        let mut solver = Solver::new();
        solver.set_interrupt(Some(cancel.flag()));
        solver.add_cnf(&instance.cnf);
        stats.sat_calls += 1;
        let result = solver.solve();
        stats.conflicts += solver.stats().conflicts;
        match result {
            SolveResult::Sat => {
                stats.time = start.elapsed();
                return EngineResult {
                    verdict: Verdict::Falsified { depth: k },
                    stats,
                };
            }
            SolveResult::Unsat => {}
            // Answering "no counterexample at k" without solving would let
            // the loop report a non-minimal depth later — stop instead.
            SolveResult::Interrupted => {
                stats.time = start.elapsed();
                return EngineResult {
                    verdict: Verdict::Inconclusive {
                        reason: "cancelled".to_string(),
                        bound_reached: k - 1,
                    },
                    stats,
                };
            }
        }
    }
    stats.time = start.elapsed();
    EngineResult {
        verdict: Verdict::Inconclusive {
            reason: "bound exhausted".to_string(),
            bound_reached: options.max_bound,
        },
        stats,
    }
}

/// Checks a single bound and returns whether a counterexample of that exact
/// formulation exists.
pub fn check_bound(aig: &Aig, bad_index: usize, bound: usize, check: BmcCheck) -> bool {
    let instance = cnf::bmc::build(aig, bad_index, bound, check);
    let mut solver = Solver::new();
    solver.add_cnf(&instance.cnf);
    solver.solve() == SolveResult::Sat
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Options;
    use aig::builder::{latch_word, word_equals_const, word_increment};

    fn counter(width: usize, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, lits) = latch_word(&mut aig, width, 0);
        let next = word_increment(&mut aig, &lits, aig::Lit::TRUE);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &lits, bad_at);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn finds_counterexample_at_exact_depth() {
        let aig = counter(4, 9);
        let result = verify(&aig, 0, &Options::default());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 9 });
        assert!(result.stats.sat_calls >= 9);
    }

    #[test]
    fn gives_up_on_true_properties() {
        // A stuck-at-0 latch whose bad state never fires.
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        let cur = aig.latch_lit(l);
        aig.set_next(l, aig::Lit::FALSE);
        aig.add_bad(cur);
        let result = verify(&aig, 0, &Options::default().with_max_bound(5));
        assert!(matches!(
            result.verdict,
            Verdict::Inconclusive {
                bound_reached: 5,
                ..
            }
        ));
    }

    #[test]
    fn bound_check_formulations_agree_on_failing_depth() {
        let aig = counter(3, 5);
        for check in [BmcCheck::Bound, BmcCheck::Exact, BmcCheck::ExactAssume] {
            let result = verify(&aig, 0, &Options::default().with_check(check));
            assert_eq!(result.verdict, Verdict::Falsified { depth: 5 }, "{check:?}");
        }
    }

    #[test]
    fn check_bound_matches_reachability() {
        let aig = counter(3, 5);
        assert!(!check_bound(&aig, 0, 4, BmcCheck::Exact));
        assert!(check_bound(&aig, 0, 5, BmcCheck::Exact));
        assert!(check_bound(&aig, 0, 5, BmcCheck::ExactAssume));
        assert!(check_bound(&aig, 0, 6, BmcCheck::Bound));
    }
}
