//! Serial interpolation sequences with counterexample-based abstraction
//! (`ITPSEQCBAVERIF`, Fig. 5).
//!
//! The engine verifies a localization abstraction of the design: invisible
//! latches are replaced by free inputs.  At every bound, abstract
//! counterexamples are checked on the concrete design (`EXTEND`); spurious
//! ones refine the abstraction from the unsatisfiable assumption core
//! (`REFINE`).  Once the abstract bounded check is unsatisfiable, the serial
//! interpolation sequence is computed on the (smaller) abstract model, which
//! yields smaller refutation proofs and more aggressive over-approximation.

use crate::engines::seq::{run, SeqConfig};
use crate::engines::CancelToken;
use crate::{EngineResult, Options};
use aig::Aig;

/// Runs the CBA-enhanced serial interpolation-sequence engine on bad-state
/// property `bad_index`.
pub fn verify(design: &Aig, bad_index: usize, options: &Options) -> EngineResult {
    verify_with_cancel(design, bad_index, options, &CancelToken::new())
}

/// [`verify`] under a cancellation token (see [`crate::CancelToken`]).
pub fn verify_with_cancel(
    design: &Aig,
    bad_index: usize,
    options: &Options,
    cancel: &CancelToken,
) -> EngineResult {
    run(
        design,
        bad_index,
        options,
        SeqConfig {
            name: "ITPSEQCBA",
            alpha_serial: options.alpha_serial,
            use_cba: true,
        },
        cancel,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Options, Verdict};
    use aig::builder::{latch_word, word_equals_const, word_increment, word_mux};

    fn modular_counter(width: usize, modulus: u64, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, bits) = latch_word(&mut aig, width, 0);
        let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
        let inc = word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(width, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &bits, bad_at);
        aig.add_bad(bad);
        aig
    }

    /// A design where half the latches are irrelevant to the property, so
    /// the abstraction should stay strictly smaller than the design.
    fn counter_with_dead_logic(bad_at: u64) -> Aig {
        let mut aig = modular_counter(3, 6, bad_at);
        // Irrelevant free-running toggles driven by an input.
        let noise_in = aig::Lit::positive(aig.add_input());
        for _ in 0..4 {
            let l = aig.add_latch(false);
            let cur = aig.latch_lit(l);
            let next = aig.xor(cur, noise_in);
            aig.set_next(l, next);
        }
        aig
    }

    #[test]
    fn proves_unreachable_counter_value() {
        let aig = modular_counter(3, 6, 7);
        let result = verify(&aig, 0, &Options::default());
        assert!(result.verdict.is_proved(), "verdict: {}", result.verdict);
    }

    #[test]
    fn falsifies_reachable_counter_value() {
        let aig = modular_counter(3, 6, 2);
        let result = verify(&aig, 0, &Options::default());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 2 });
    }

    #[test]
    fn abstraction_ignores_irrelevant_latches() {
        let aig = counter_with_dead_logic(7);
        let result = verify(&aig, 0, &Options::default());
        assert!(result.verdict.is_proved(), "verdict: {}", result.verdict);
        assert!(
            result.stats.visible_latches <= 3,
            "only the counter latches should become visible, got {}",
            result.stats.visible_latches
        );
    }

    #[test]
    fn refinement_occurs_when_property_depends_on_hidden_state() {
        // Property reads only the top counter bit, so the initial
        // abstraction hides the lower bits and must be refined before the
        // proof succeeds (value 4 = 0b100 is unreachable mod 4? choose
        // modulus 4 so bit2 never rises).
        let mut aig = Aig::new();
        let (ids, bits) = latch_word(&mut aig, 3, 0);
        let wrap = word_equals_const(&mut aig, &bits, 3);
        let inc = word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(3, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        // bad = top bit set, which never happens when counting 0..3.
        aig.add_bad(bits[2]);
        let result = verify(&aig, 0, &Options::default());
        assert!(result.verdict.is_proved(), "verdict: {}", result.verdict);
    }

    #[test]
    fn verdicts_match_exact_bdd_reachability() {
        for bad_at in [1u64, 3, 6, 7] {
            let aig = counter_with_dead_logic(bad_at);
            let exact = bdd::reach::analyze(&aig, 0, 1_000_000);
            let got = verify(&aig, 0, &Options::default());
            match exact.verdict {
                bdd::BddVerdict::Pass => {
                    assert!(got.verdict.is_proved(), "bad_at={bad_at}: {}", got.verdict)
                }
                bdd::BddVerdict::Fail { depth } => {
                    assert_eq!(got.verdict, Verdict::Falsified { depth }, "bad_at={bad_at}")
                }
                bdd::BddVerdict::Overflow => unreachable!(),
            }
        }
    }
}
