//! Deterministic fork–join helpers shared by the concurrent engines.
//!
//! Both the racing portfolio and PDR's parallel frame phases fan work out
//! to scoped worker threads.  The helper here enforces the property the
//! determinism guarantees rest on: work is split into *contiguous chunks
//! by index* and results are stitched back together *in item order*, so
//! the output of [`map_chunked`] is a pure function of the inputs — never
//! of thread scheduling or of the number of workers.
//!
//! # Fault containment
//!
//! A panic inside a worker is caught at the chunk boundary and the whole
//! chunk is deterministically replayed *sequentially* on the calling
//! thread with a freshly seeded context.  The replay sees exactly the
//! item order the worker would have, so a faulted parallel pass still
//! produces the result vector of the unfaulted run — verdicts stay
//! thread-count-invariant even under injected faults (which fire at most
//! once, so the replay cannot re-panic on the same injection).  The
//! number of replayed chunks is reported so engines can surface degraded
//! runs in their statistics and traces.

use std::num::NonZeroUsize;

/// Worker threads the current machine comfortably supports.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// Maps every item through `work` on at most `threads` scoped worker
/// threads, returning results in item order together with the number of
/// chunks that had to be replayed sequentially after a worker panic.
///
/// `seed` builds one mutable context per chunk on the calling thread
/// (e.g. a cloned SAT solver); `work` consumes it item by item.  Because
/// every context is seeded from the same caller state and chunks are
/// contiguous, the result vector is identical for every `threads` value —
/// parallelism changes wall-clock time, not answers.
pub(crate) fn map_chunked<T, C, R>(
    items: &[T],
    threads: usize,
    mut seed: impl FnMut() -> C,
    work: impl Fn(&mut C, &T) -> R + Sync,
) -> (Vec<R>, u64)
where
    T: Sync,
    C: Send,
    R: Send,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        let mut context = seed();
        let results = items.iter().map(|item| work(&mut context, item)).collect();
        return (results, 0);
    }
    let chunk_len = items.len().div_ceil(threads);
    let contexts: Vec<C> = items.chunks(chunk_len).map(|_| seed()).collect();
    let work = &work;
    let outcomes: Vec<Option<Vec<R>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .zip(contexts)
            .map(|(chunk, mut context)| {
                scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        chunk
                            .iter()
                            .map(|item| work(&mut context, item))
                            .collect::<Vec<R>>()
                    }))
                    .ok()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .expect("chunk panics are caught in the worker")
            })
            .collect()
    });
    let mut results = Vec::with_capacity(items.len());
    let mut reruns = 0u64;
    for (chunk, outcome) in items.chunks(chunk_len).zip(outcomes) {
        match outcome {
            Some(chunk_results) => results.extend(chunk_results),
            None => {
                reruns += 1;
                let mut context = seed();
                results.extend(chunk.iter().map(|item| work(&mut context, item)));
            }
        }
    }
    (results, reruns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..23).collect();
        let (doubled, reruns) = map_chunked(&items, 4, || (), |_, &i| i * 2);
        assert_eq!(doubled, (0..23).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(reruns, 0);
    }

    #[test]
    fn results_are_invariant_in_the_thread_count() {
        let items: Vec<u64> = (0..57).collect();
        let (reference, _) = map_chunked(&items, 1, || 3u64, |offset, &i| i + *offset);
        for threads in [2, 3, 5, 8, 64] {
            let (parallel, _) = map_chunked(&items, threads, || 3u64, |offset, &i| i + *offset);
            assert_eq!(parallel, reference, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunked(&empty, 8, || (), |_, &i| i).0.is_empty());
        assert_eq!(map_chunked(&[7u8], 8, || (), |_, &i| i + 1).0, vec![8]);
    }

    #[test]
    fn contexts_are_per_chunk() {
        // Each chunk's context counts its own items; totals must cover all.
        let items: Vec<usize> = (0..10).collect();
        let (counted, _) = map_chunked(
            &items,
            3,
            || 0usize,
            |seen, &i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(counted.len(), 10);
        let total: usize = counted
            .iter()
            .map(|&(_, seen)| usize::from(seen == 1))
            .sum();
        assert!(total >= 3, "at least one fresh context per chunk");
    }

    #[test]
    fn panicking_chunks_are_replayed_sequentially() {
        // One item panics exactly once (like an injected fault): the chunk
        // holding it is replayed and the merged results match the clean run.
        let items: Vec<usize> = (0..23).collect();
        let fired = AtomicBool::new(false);
        let (results, reruns) = map_chunked(
            &items,
            4,
            || (),
            |_, &i| {
                if i == 13 && !fired.swap(true, Ordering::SeqCst) {
                    panic!("injected fault: worker panic");
                }
                i * 2
            },
        );
        assert_eq!(results, (0..23).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(reruns, 1);
    }

    #[test]
    fn every_chunk_faulting_still_completes() {
        // All workers panic immediately; the sequential replays (on the
        // caller thread) finish the job.
        let items: Vec<usize> = (0..16).collect();
        let caller = std::thread::current().id();
        let (results, reruns) = map_chunked(
            &items,
            4,
            || (),
            |_, &i| {
                if std::thread::current().id() != caller {
                    panic!("injected fault: worker panic");
                }
                i + 1
            },
        );
        assert_eq!(results, (1..=16).collect::<Vec<_>>());
        assert_eq!(reruns, 4);
    }
}
