//! The verification engines evaluated in the paper, the IC3/PDR
//! competitor every modern checker ships, and the racing portfolio that
//! combines them.

pub mod bmc;
pub mod itp;
pub mod itpseq;
pub mod itpseq_cba;
pub mod pdr;
pub(crate) mod pool;
pub mod portfolio;
pub(crate) mod seq;
pub mod sitpseq;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Cooperative cancellation token shared between an engine run and its
/// supervisor.
///
/// Every engine polls its token at the head of each major-loop iteration
/// and hands the underlying flag to its SAT solvers, so even a long
/// individual query stops within a bounded number of conflicts (see
/// [`sat::Solver::set_interrupt`]).  A cancelled run returns
/// [`Verdict::Inconclusive`](crate::Verdict::Inconclusive) with reason
/// `"cancelled"` — cancellation never fabricates a verdict.
///
/// Clones share the flag: [`Engine::Portfolio`](crate::Engine::Portfolio)
/// hands one token per entrant to its workers and cancels the losers as
/// soon as a conclusive verdict arrives.
///
/// ```
/// use mc::{CancelToken, Engine, Options, Verdict};
///
/// // A one-latch design whose property holds; a pre-cancelled run still
/// // refuses to answer.
/// let mut design = aig::Aig::new();
/// let latch = design.add_latch(false);
/// design.set_next(latch, aig::Lit::FALSE);
/// let bad = design.latch_lit(latch);
/// design.add_bad(bad);
///
/// let cancel = CancelToken::new();
/// cancel.cancel();
/// let result = Engine::Pdr.verify_with_cancel(&design, 0, &Options::default(), &cancel);
/// assert!(matches!(result.verdict, Verdict::Inconclusive { .. }));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh (non-cancelled) token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag; every engine and solver holding this token (or a
    /// clone) stops at its next cancellation point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Returns `true` once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The shared flag in the form the SAT layer consumes
    /// ([`sat::Solver::set_interrupt`]).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// The stop decision shared by the engine main loops: cancellation takes
/// precedence over the wall-clock budget, and the returned string is the
/// `Verdict::Inconclusive` reason.
pub(crate) fn stop_reason(
    cancel: &CancelToken,
    start: std::time::Instant,
    timeout: std::time::Duration,
) -> Option<&'static str> {
    if cancel.is_cancelled() {
        Some("cancelled")
    } else if start.elapsed() > timeout {
        Some("timeout")
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_start_clear_and_latch_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let clone = token.clone();
        token.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn flag_view_matches_the_token() {
        let token = CancelToken::new();
        let flag = token.flag();
        token.cancel();
        assert!(flag.load(Ordering::Acquire));
    }
}
