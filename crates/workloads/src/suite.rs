//! The curated benchmark suites used by the experiment regenerators.

use crate::{arbiter, counter, fifo, industrial, token_ring, traffic};
use aig::Aig;

/// Size class of a benchmark, mirroring the two halves of the paper's
/// Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BenchmarkClass {
    /// Publicly-available-style mid-size problems (upper half of Table I).
    MidSize,
    /// Industrial-style problems with large irrelevant state
    /// (lower half of Table I).
    Industrial,
}

/// A named benchmark instance.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Unique, human-readable name (also the design name of the AIG).
    pub name: String,
    /// The design; bad-state property 0 is the one to verify.
    pub aig: Aig,
    /// Expected verdict when known: `Some(true)` = the property fails,
    /// `Some(false)` = the property holds, `None` = unknown a priori.
    pub expect_fail: Option<bool>,
    /// Which half of Table I the instance belongs to.
    pub class: BenchmarkClass,
}

impl Benchmark {
    fn new(aig: Aig, expect_fail: Option<bool>, class: BenchmarkClass) -> Benchmark {
        Benchmark {
            name: aig.name().to_string(),
            aig,
            expect_fail,
            class,
        }
    }
}

/// The mid-size suite: counters, rings, arbiters, FIFOs and traffic
/// controllers of varying depth, both passing and failing.
pub fn mid_size() -> Vec<Benchmark> {
    let mut suite = Vec::new();
    // Counters: passing (bad value out of range) and failing at several
    // depths, to spread convergence bounds.
    for (width, modulus) in [(3usize, 6u64), (4, 10), (4, 14), (5, 20), (5, 28)] {
        suite.push(Benchmark::new(
            counter::modular(width, modulus, (1 << width) - 1),
            Some(false),
            BenchmarkClass::MidSize,
        ));
        suite.push(Benchmark::new(
            counter::modular(width, modulus, modulus - 1),
            Some(true),
            BenchmarkClass::MidSize,
        ));
    }
    // Gated counters (deeper counterexamples, harder bound-k checks).
    for (width, modulus) in [(3usize, 7u64), (4, 12)] {
        suite.push(Benchmark::new(
            counter::gated(width, modulus, (1 << width) - 1),
            Some(false),
            BenchmarkClass::MidSize,
        ));
        suite.push(Benchmark::new(
            counter::gated(width, modulus, modulus / 2),
            Some(true),
            BenchmarkClass::MidSize,
        ));
    }
    // Synchronised counters.
    suite.push(Benchmark::new(
        counter::synchronised(3, 5, 7, 4),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    suite.push(Benchmark::new(
        counter::synchronised(3, 4, 6, 5),
        Some(false),
        BenchmarkClass::MidSize,
    ));
    // Token rings.
    for stations in [4usize, 6, 8] {
        suite.push(Benchmark::new(
            token_ring::ring(stations, false),
            Some(false),
            BenchmarkClass::MidSize,
        ));
    }
    suite.push(Benchmark::new(
        token_ring::ring(5, true),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    // Arbiters.
    for clients in [3usize, 4, 5] {
        suite.push(Benchmark::new(
            arbiter::round_robin(clients, false),
            Some(false),
            BenchmarkClass::MidSize,
        ));
    }
    suite.push(Benchmark::new(
        arbiter::round_robin(4, true),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    // FIFO controllers.
    for width in [2usize, 3, 4] {
        suite.push(Benchmark::new(
            fifo::controller(width, false),
            Some(false),
            BenchmarkClass::MidSize,
        ));
    }
    suite.push(Benchmark::new(
        fifo::controller(3, true),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    // Traffic controllers.
    suite.push(Benchmark::new(
        traffic::crossing(3, false),
        Some(false),
        BenchmarkClass::MidSize,
    ));
    suite.push(Benchmark::new(
        traffic::crossing(4, false),
        Some(false),
        BenchmarkClass::MidSize,
    ));
    suite.push(Benchmark::new(
        traffic::crossing(3, true),
        Some(true),
        BenchmarkClass::MidSize,
    ));
    suite
}

/// The industrial-like suite: control pipelines surrounded by irrelevant
/// payload state of increasing size.
pub fn industrial() -> Vec<Benchmark> {
    let mut suite = Vec::new();
    let configs = [
        // (counter_bits, modulus, bad_at, pipeline, payload, seed, fails)
        (4usize, 10u64, 12u64, 3usize, 16usize, 11u64, false),
        (4, 10, 7, 3, 16, 12, true),
        (4, 12, 14, 4, 32, 13, false),
        (4, 12, 9, 4, 32, 14, true),
        (5, 20, 24, 5, 48, 15, false),
        (5, 18, 11, 5, 48, 16, true),
        (5, 24, 28, 6, 64, 17, false),
    ];
    for (counter_bits, modulus, bad_at, pipeline_depth, payload_latches, seed, fails) in configs {
        let params = industrial::IndustrialParams {
            counter_bits,
            modulus,
            bad_at,
            pipeline_depth,
            payload_latches,
            seed,
        };
        suite.push(Benchmark::new(
            industrial::pipeline(params),
            Some(fails),
            BenchmarkClass::Industrial,
        ));
    }
    suite
}

/// The full suite (mid-size plus industrial-like), as used by Fig. 6.
pub fn full() -> Vec<Benchmark> {
    let mut suite = mid_size();
    suite.extend(industrial());
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_names_are_unique() {
        let names: HashSet<String> = full().into_iter().map(|b| b.name).collect();
        assert_eq!(names.len(), full().len());
    }

    #[test]
    fn suite_mixes_passing_and_failing_instances() {
        let suite = full();
        let failing = suite.iter().filter(|b| b.expect_fail == Some(true)).count();
        let passing = suite
            .iter()
            .filter(|b| b.expect_fail == Some(false))
            .count();
        assert!(failing >= 8, "failing instances: {failing}");
        assert!(passing >= 15, "passing instances: {passing}");
    }

    #[test]
    fn every_benchmark_has_a_property() {
        for b in full() {
            assert_eq!(b.aig.num_bad(), 1, "{}", b.name);
            assert!(b.aig.num_latches() >= 1, "{}", b.name);
        }
    }

    #[test]
    fn industrial_instances_are_larger_than_mid_size_ones() {
        let mid_max = mid_size()
            .iter()
            .map(|b| b.aig.num_latches())
            .max()
            .unwrap();
        let ind_min = industrial()
            .iter()
            .map(|b| b.aig.num_latches())
            .min()
            .unwrap();
        assert!(ind_min >= mid_max.min(20));
    }

    #[test]
    fn expected_failures_are_confirmed_by_simulation() {
        // Drive every input high for a generous number of cycles; all the
        // seeded-bug instances in the suite fail under this stimulus or are
        // validated by the engine tests elsewhere.
        for b in full() {
            if b.expect_fail == Some(true) {
                let stim: Vec<Vec<bool>> =
                    (0..64).map(|_| vec![true; b.aig.num_inputs()]).collect();
                let sim = aig::simulate(&b.aig, &stim);
                assert!(
                    sim.first_failure().is_some() || b.aig.num_inputs() > 1,
                    "{} should fail under an all-ones stimulus",
                    b.name
                );
            }
        }
    }
}
