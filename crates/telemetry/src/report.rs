//! Span-tree analytics over a recorded trace (`itpseq-report/v1`).
//!
//! PR 6 gave every engine an `itpseq-trace/v1` event stream; this module
//! *answers questions* with it.  [`TraceReport`] reconstructs the span
//! tree from a recorded stream (the same per-track pairing discipline as
//! [`check_span_nesting`](crate::check_span_nesting)) and computes:
//!
//! * **per-track, per-span-name aggregates** — count, total and *self*
//!   wall time (total minus child spans), min/max and nearest-rank
//!   p50/p90/p99 of the individual durations, so "where did BMC's time
//!   go, encoding or solving?" is one table lookup;
//! * **counter rollups** — the periodic `solver` progress samples become
//!   per-key totals and rates (conflicts/decisions/propagations per
//!   second over the track's observation window);
//! * **portfolio wasted-work attribution** — for every `portfolio.race`
//!   span, the run time of the losing entrants versus the winner named by
//!   the `entrant.win` marker;
//! * **scheduler group utilization** — busy time of each
//!   `group{id}.{backend}` track relative to the enclosing
//!   `scheduler.run` span.
//!
//! The report renders three ways: a text table ([`TraceReport::to_text`]),
//! machine-readable JSON with schema [`REPORT_SCHEMA`]
//! ([`TraceReport::to_json`]), and — through the sibling
//! [`folded`](crate::folded) module — an inferno-compatible collapsed
//! stack file for flamegraphs.  [`Baseline`] captures the structurally
//! deterministic aggregates (span counts of the engine-run vocabulary) so
//! CI can gate on a recorded run not drifting from a checked-in
//! reference; wall times are *reported* but never gated, because CI
//! hardware is not.

use crate::{ArgValue, Event, EventKind, TRACE_SCHEMA};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Schema identifier of the report JSON document.
pub const REPORT_SCHEMA: &str = "itpseq-report/v1";

/// Schema identifier of the checked-in baseline document the CI
/// perf-regression gate compares a fresh report against.
pub const BASELINE_SCHEMA: &str = "itpseq-report-baseline/v1";

// ---------------------------------------------------------------------------
// Recorded events: the owned form shared by the in-memory and JSONL paths.
// ---------------------------------------------------------------------------

/// An owned trace event, either converted from a live [`Event`] or parsed
/// back from an `itpseq-trace/v1` JSONL line (where argument keys are no
/// longer `&'static str`).
#[derive(Clone, Debug)]
pub(crate) struct RecEvent {
    pub ts_us: u64,
    pub track: String,
    pub name: String,
    pub kind: EventKind,
    pub args: Vec<(String, ArgValue)>,
}

impl RecEvent {
    fn arg_str(&self, key: &str) -> Option<&str> {
        self.args.iter().find_map(|(k, v)| match v {
            ArgValue::Str(s) if k == key => Some(s.as_str()),
            _ => None,
        })
    }
}

impl From<&Event> for RecEvent {
    fn from(event: &Event) -> RecEvent {
        RecEvent {
            ts_us: event.ts_us,
            track: event.track.to_string(),
            name: event.name.clone(),
            kind: event.kind,
            args: event
                .args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// A minimal JSON reader for our own artifacts (traces, baselines).
// ---------------------------------------------------------------------------

/// A parsed JSON value — just enough for the crate's own flat documents.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, message: &str) -> String {
        format!("json error at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(&format!("bad escape '\\{}'", other as char))),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not byte by byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'{') => {
                self.eat(b'{')?;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    let key = self.string()?;
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'[') => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }
}

/// Parses one JSON document (the hand-rolled reader for the crate's own
/// artifacts; rejects trailing garbage).
pub(crate) fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing garbage after document"));
    }
    Ok(value)
}

/// Parses an `itpseq-trace/v1` JSONL stream (header line plus one event
/// per line) back into recorded events.
pub(crate) fn parse_trace_jsonl(text: &str) -> Result<Vec<RecEvent>, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or("empty trace file")?;
    let header = parse_json(header)?;
    let schema = header
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("first line carries no schema field")?;
    if schema != TRACE_SCHEMA {
        return Err(format!("unsupported trace schema {schema:?}"));
    }
    let mut events = Vec::new();
    for (index, line) in lines {
        let value = parse_json(line).map_err(|e| format!("line {}: {e}", index + 1))?;
        let field = |key: &str| {
            value
                .get(key)
                .ok_or_else(|| format!("line {}: missing field {key:?}", index + 1))
        };
        let kind = match field("ph")?.as_str() {
            Some("B") => EventKind::Begin,
            Some("E") => EventKind::End,
            Some("i") => EventKind::Instant,
            Some("C") => EventKind::Counter,
            other => return Err(format!("line {}: bad phase {other:?}", index + 1)),
        };
        let args = match value.get("args") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .filter_map(|(k, v)| match v {
                    Json::Num(n) if *n >= 0.0 => Some((k.clone(), ArgValue::U64(*n as u64))),
                    Json::Str(s) => Some((k.clone(), ArgValue::Str(s.clone()))),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        events.push(RecEvent {
            ts_us: field("ts_us")?
                .as_u64()
                .ok_or_else(|| format!("line {}: bad ts_us", index + 1))?,
            track: field("track")?
                .as_str()
                .ok_or_else(|| format!("line {}: bad track", index + 1))?
                .to_string(),
            name: field("name")?
                .as_str()
                .ok_or_else(|| format!("line {}: bad name", index + 1))?
                .to_string(),
            kind,
            args,
        });
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// The report proper.
// ---------------------------------------------------------------------------

/// Aggregate of every completed span named `name` on `track`, merged over
/// all nesting depths.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanAgg {
    /// Track the spans ran on.
    pub track: String,
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Summed wall time, children included.
    pub total_us: u64,
    /// Summed *self* time: total minus the time spent in child spans —
    /// the flamegraph weight, and the quantity whose per-track sum can
    /// never exceed the track's observed wall time.
    pub self_us: u64,
    /// Shortest single span.
    pub min_us: u64,
    /// Longest single span.
    pub max_us: u64,
    /// Nearest-rank median duration.
    pub p50_us: u64,
    /// Nearest-rank 90th-percentile duration.
    pub p90_us: u64,
    /// Nearest-rank 99th-percentile duration (the SAT-call tail).
    pub p99_us: u64,
}

/// Rollup of one counter key (e.g. `solver` / `conflicts`) on one track.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterAgg {
    /// Track the samples were recorded on.
    pub track: String,
    /// Counter event name.
    pub name: String,
    /// Sample key within the counter payload.
    pub key: String,
    /// Number of samples.
    pub samples: u64,
    /// Largest single sample (cumulative per solver, so this is the
    /// biggest single-solver count seen).
    pub peak: u64,
    /// Progress total: positive deltas summed across samples, which
    /// re-bases whenever a fresh solver's cumulative count restarts from
    /// a smaller value.
    pub total: u64,
    /// `total` per second of the track's observation window.
    pub rate_per_sec: f64,
}

/// Wall-clock summary of one track.
#[derive(Clone, Debug, PartialEq)]
pub struct TrackSummary {
    /// Track name.
    pub track: String,
    /// Observation window: last event timestamp minus first.
    pub wall_us: u64,
    /// Summed duration of the track's *root* spans (equals the sum of
    /// the track's self times, and is `<= wall_us` by construction).
    pub busy_us: u64,
    /// Events recorded on the track.
    pub events: u64,
    /// Completed spans.
    pub spans: u64,
    /// Spans left open at the end of the stream (0 in a clean trace).
    pub unclosed: u64,
}

/// One portfolio entrant's work across every race in the trace.
#[derive(Clone, Debug, PartialEq)]
pub struct EntrantAgg {
    /// Entrant track (the engine name).
    pub entrant: String,
    /// Completed entrant runs.
    pub runs: u64,
    /// Total run time across races.
    pub busy_us: u64,
    /// Races this entrant won.
    pub wins: u64,
    /// Run time spent in races some *other* entrant won.
    pub wasted_us: u64,
}

/// Wasted-work attribution over every `portfolio.race` span.
#[derive(Clone, Debug, PartialEq)]
pub struct PortfolioReport {
    /// Races observed.
    pub races: u64,
    /// Races that produced an `entrant.win` marker.
    pub decided: u64,
    /// Total run time of winning entrants, in the races they won.
    pub winner_us: u64,
    /// Total run time of losing entrants in decided races — the price of
    /// racing, the number solver-state sharing would shrink.
    pub wasted_us: u64,
    /// Per-entrant breakdown.
    pub entrants: Vec<EntrantAgg>,
}

/// Busy time of one scheduler backend track relative to the scheduler
/// run that dispatched it.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupUtilization {
    /// Backend track (`group{id}.PDR` / `group{id}.BMC`).
    pub track: String,
    /// Root-span busy time of the track.
    pub busy_us: u64,
    /// Total duration of the `scheduler.run` spans.
    pub scheduler_us: u64,
    /// `busy_us / scheduler_us` (0 when the scheduler span is empty).
    pub utilization: f64,
}

/// The full analysis of one recorded trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceReport {
    /// Events analysed.
    pub total_events: u64,
    /// Per-track wall/busy summaries, sorted by track name.
    pub tracks: Vec<TrackSummary>,
    /// Per-track per-name span aggregates, sorted by (track, name).
    pub spans: Vec<SpanAgg>,
    /// Counter rollups, sorted by (track, name, key).
    pub counters: Vec<CounterAgg>,
    /// Portfolio race attribution, when the trace contains races.
    pub portfolio: Option<PortfolioReport>,
    /// Scheduler group utilization, when the trace contains a scheduler
    /// run.
    pub scheduler: Vec<GroupUtilization>,
}

/// Nearest-rank percentile of an ascending-sorted sample vector.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[derive(Default)]
struct TrackState {
    stack: Vec<OpenSpan>,
    first_ts: Option<u64>,
    last_ts: u64,
    busy_us: u64,
    events: u64,
    spans: u64,
}

struct OpenSpan {
    name: String,
    begin_ts: u64,
    child_us: u64,
}

struct RaceState {
    track: String,
    winner: Option<String>,
    entrant_runs: Vec<(String, u64)>,
}

impl TraceReport {
    /// Builds the report from an in-memory event stream (the path the
    /// bench binaries' `--report` flag uses).
    pub fn from_events(events: &[Event]) -> TraceReport {
        let rec: Vec<RecEvent> = events.iter().map(RecEvent::from).collect();
        TraceReport::from_rec(&rec)
    }

    /// Builds the report from a recorded `itpseq-trace/v1` JSONL document
    /// (the path the `trace-report` binary uses).
    pub fn from_jsonl(text: &str) -> Result<TraceReport, String> {
        Ok(TraceReport::from_rec(&parse_trace_jsonl(text)?))
    }

    fn from_rec(events: &[RecEvent]) -> TraceReport {
        // Keyed (track, counter name, key); the value accumulates
        // (samples, peak, total, last cumulative sample).
        type CounterState = BTreeMap<(String, String, String), (u64, u64, u64, u64)>;
        let mut tracks: BTreeMap<String, TrackState> = BTreeMap::new();
        let mut durations: BTreeMap<(String, String), Vec<u64>> = BTreeMap::new();
        let mut self_times: BTreeMap<(String, String), u64> = BTreeMap::new();
        let mut counters: CounterState = BTreeMap::new();
        let mut races: Vec<RaceState> = Vec::new();
        let mut race_totals = PortfolioReport {
            races: 0,
            decided: 0,
            winner_us: 0,
            wasted_us: 0,
            entrants: Vec::new(),
        };
        let mut entrants: BTreeMap<String, EntrantAgg> = BTreeMap::new();
        let mut scheduler_us = 0u64;

        for event in events {
            let state = tracks.entry(event.track.clone()).or_default();
            state.events += 1;
            state.first_ts.get_or_insert(event.ts_us);
            state.last_ts = state.last_ts.max(event.ts_us);
            match event.kind {
                EventKind::Begin => {
                    state.stack.push(OpenSpan {
                        name: event.name.clone(),
                        begin_ts: event.ts_us,
                        child_us: 0,
                    });
                    if event.name == "portfolio.race" {
                        races.push(RaceState {
                            track: event.track.clone(),
                            winner: None,
                            entrant_runs: Vec::new(),
                        });
                    }
                }
                EventKind::End => {
                    // Pair with the innermost open span of the same name —
                    // mirrors `check_span_nesting`, but tolerates a
                    // malformed stream by skipping unmatched ends.
                    let Some(open_at) = state.stack.iter().rposition(|s| s.name == event.name)
                    else {
                        continue;
                    };
                    let open = state.stack.remove(open_at);
                    let duration = event.ts_us.saturating_sub(open.begin_ts);
                    let self_us = duration.saturating_sub(open.child_us);
                    state.spans += 1;
                    if let Some(parent) = state.stack.last_mut() {
                        parent.child_us += duration;
                    } else {
                        state.busy_us += duration;
                        // A root engine-run span on a non-race track while
                        // a race is open is an entrant's contribution to
                        // that race.
                        if event.name.ends_with(".run") {
                            if let Some(race) =
                                races.iter_mut().rev().find(|r| r.track != event.track)
                            {
                                race.entrant_runs.push((event.track.clone(), duration));
                            }
                        }
                    }
                    let key = (event.track.clone(), event.name.clone());
                    durations.entry(key.clone()).or_default().push(duration);
                    *self_times.entry(key).or_default() += self_us;
                    if event.name == "scheduler.run" {
                        scheduler_us += duration;
                    }
                    if event.name == "portfolio.race"
                        && event.track == races.last().map_or("", |r| r.track.as_str())
                    {
                        let race = races.pop().expect("race begin recorded");
                        race_totals.races += 1;
                        if let Some(winner) = &race.winner {
                            race_totals.decided += 1;
                            for (entrant, us) in &race.entrant_runs {
                                let agg =
                                    entrants
                                        .entry(entrant.clone())
                                        .or_insert_with(|| EntrantAgg {
                                            entrant: entrant.clone(),
                                            runs: 0,
                                            busy_us: 0,
                                            wins: 0,
                                            wasted_us: 0,
                                        });
                                agg.runs += 1;
                                agg.busy_us += us;
                                if entrant == winner {
                                    agg.wins += 1;
                                    race_totals.winner_us += us;
                                } else {
                                    agg.wasted_us += us;
                                    race_totals.wasted_us += us;
                                }
                            }
                        } else {
                            for (entrant, us) in &race.entrant_runs {
                                let agg =
                                    entrants
                                        .entry(entrant.clone())
                                        .or_insert_with(|| EntrantAgg {
                                            entrant: entrant.clone(),
                                            runs: 0,
                                            busy_us: 0,
                                            wins: 0,
                                            wasted_us: 0,
                                        });
                                agg.runs += 1;
                                agg.busy_us += us;
                            }
                        }
                    }
                }
                EventKind::Instant => {
                    if event.name == "entrant.win" {
                        if let (Some(race), Some(winner)) =
                            (races.last_mut(), event.arg_str("entrant"))
                        {
                            race.winner = Some(winner.to_string());
                        }
                    }
                }
                EventKind::Counter => {
                    for (key, value) in &event.args {
                        if let ArgValue::U64(value) = value {
                            let slot = counters
                                .entry((event.track.clone(), event.name.clone(), key.clone()))
                                .or_insert((0, 0, 0, 0));
                            slot.0 += 1;
                            slot.1 = slot.1.max(*value);
                            // Cumulative per solver: a drop below the last
                            // sample means a fresh solver took over, and
                            // its first sample is all new progress.
                            slot.2 += if *value >= slot.3 {
                                *value - slot.3
                            } else {
                                *value
                            };
                            slot.3 = *value;
                        }
                    }
                }
            }
        }

        let track_summaries: Vec<TrackSummary> = tracks
            .iter()
            .map(|(track, state)| TrackSummary {
                track: track.clone(),
                wall_us: state.last_ts - state.first_ts.unwrap_or(state.last_ts),
                busy_us: state.busy_us,
                events: state.events,
                spans: state.spans,
                unclosed: state.stack.len() as u64,
            })
            .collect();

        let spans: Vec<SpanAgg> = durations
            .into_iter()
            .map(|((track, name), mut samples)| {
                samples.sort_unstable();
                let total: u64 = samples.iter().sum();
                SpanAgg {
                    self_us: self_times[&(track.clone(), name.clone())],
                    count: samples.len() as u64,
                    total_us: total,
                    min_us: samples[0],
                    max_us: *samples.last().expect("non-empty"),
                    p50_us: percentile(&samples, 50.0),
                    p90_us: percentile(&samples, 90.0),
                    p99_us: percentile(&samples, 99.0),
                    track,
                    name,
                }
            })
            .collect();

        let wall_of = |track: &str| {
            track_summaries
                .iter()
                .find(|t| t.track == track)
                .map_or(0, |t| t.wall_us)
        };
        let counter_aggs: Vec<CounterAgg> = counters
            .into_iter()
            .map(|((track, name, key), (samples, peak, total, _))| {
                let window = wall_of(&track);
                CounterAgg {
                    rate_per_sec: if window > 0 {
                        total as f64 / (window as f64 / 1e6)
                    } else {
                        0.0
                    },
                    track,
                    name,
                    key,
                    samples,
                    peak,
                    total,
                }
            })
            .collect();

        race_totals.entrants = entrants.into_values().collect();
        let portfolio = (race_totals.races > 0).then_some(race_totals);

        let scheduler: Vec<GroupUtilization> = if scheduler_us > 0 {
            track_summaries
                .iter()
                .filter(|t| t.track.starts_with("group") && t.track.contains('.'))
                .map(|t| GroupUtilization {
                    track: t.track.clone(),
                    busy_us: t.busy_us,
                    scheduler_us,
                    utilization: t.busy_us as f64 / scheduler_us as f64,
                })
                .collect()
        } else {
            Vec::new()
        };

        TraceReport {
            total_events: events.len() as u64,
            tracks: track_summaries,
            spans,
            counters: counter_aggs,
            portfolio,
            scheduler,
        }
    }

    /// The aligned text rendering (what `trace-report` prints).
    pub fn to_text(&self) -> String {
        let ms = |us: u64| us as f64 / 1e3;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# {REPORT_SCHEMA} — {} events, {} tracks",
            self.total_events,
            self.tracks.len()
        );
        let _ = writeln!(
            out,
            "\n{:<20} {:>10} {:>10} {:>8} {:>7} {:>8}",
            "track", "wall_ms", "busy_ms", "events", "spans", "unclosed"
        );
        for t in &self.tracks {
            let _ = writeln!(
                out,
                "{:<20} {:>10.1} {:>10.1} {:>8} {:>7} {:>8}",
                t.track,
                ms(t.wall_us),
                ms(t.busy_us),
                t.events,
                t.spans,
                t.unclosed
            );
        }
        let _ = writeln!(
            out,
            "\n{:<20} {:<18} {:>6} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
            "track", "span", "count", "total_ms", "self_ms", "p50_us", "p90_us", "p99_us", "max_us"
        );
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{:<20} {:<18} {:>6} {:>10.1} {:>10.1} {:>8} {:>8} {:>8} {:>8}",
                s.track,
                s.name,
                s.count,
                ms(s.total_us),
                ms(s.self_us),
                s.p50_us,
                s.p90_us,
                s.p99_us,
                s.max_us
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(
                out,
                "\n{:<20} {:<24} {:>8} {:>12} {:>12} {:>12}",
                "track", "counter", "samples", "peak", "total", "rate/s"
            );
            for c in &self.counters {
                let _ = writeln!(
                    out,
                    "{:<20} {:<24} {:>8} {:>12} {:>12} {:>12.0}",
                    c.track,
                    format!("{}.{}", c.name, c.key),
                    c.samples,
                    c.peak,
                    c.total,
                    c.rate_per_sec
                );
            }
        }
        if let Some(p) = &self.portfolio {
            let _ = writeln!(
                out,
                "\nportfolio: {} races ({} decided), winners {:.1} ms, wasted {:.1} ms",
                p.races,
                p.decided,
                ms(p.winner_us),
                ms(p.wasted_us)
            );
            for e in &p.entrants {
                let _ = writeln!(
                    out,
                    "  {:<12} {:>4} runs {:>10.1} busy_ms {:>4} wins {:>10.1} wasted_ms",
                    e.entrant,
                    e.runs,
                    ms(e.busy_us),
                    e.wins,
                    ms(e.wasted_us)
                );
            }
        }
        if !self.scheduler.is_empty() {
            let _ = writeln!(out, "\nscheduler group utilization:");
            for g in &self.scheduler {
                let _ = writeln!(
                    out,
                    "  {:<16} {:>10.1} busy_ms / {:>10.1} sched_ms = {:>5.1}%",
                    g.track,
                    ms(g.busy_us),
                    ms(g.scheduler_us),
                    g.utilization * 100.0
                );
            }
        }
        out
    }

    /// The `itpseq-report/v1` JSON document; `baseline` embeds the result
    /// of a baseline comparison (`"baseline": null` when none ran — the
    /// field is always present, checked artifacts rely on that).
    pub fn to_json(&self, baseline: Option<&BaselineComparison>) -> String {
        let esc = crate::json_escape;
        let tracks: Vec<String> = self
            .tracks
            .iter()
            .map(|t| {
                format!(
                    concat!(
                        r#"{{"track":"{}","wall_us":{},"busy_us":{},"events":{},"#,
                        r#""spans":{},"unclosed":{}}}"#
                    ),
                    esc(&t.track),
                    t.wall_us,
                    t.busy_us,
                    t.events,
                    t.spans,
                    t.unclosed
                )
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    concat!(
                        r#"{{"track":"{}","name":"{}","count":{},"total_us":{},"self_us":{},"#,
                        r#""min_us":{},"max_us":{},"p50_us":{},"p90_us":{},"p99_us":{}}}"#
                    ),
                    esc(&s.track),
                    esc(&s.name),
                    s.count,
                    s.total_us,
                    s.self_us,
                    s.min_us,
                    s.max_us,
                    s.p50_us,
                    s.p90_us,
                    s.p99_us
                )
            })
            .collect();
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|c| {
                format!(
                    concat!(
                        r#"{{"track":"{}","name":"{}","key":"{}","samples":{},"peak":{},"#,
                        r#""total":{},"rate_per_sec":{:.3}}}"#
                    ),
                    esc(&c.track),
                    esc(&c.name),
                    esc(&c.key),
                    c.samples,
                    c.peak,
                    c.total,
                    c.rate_per_sec
                )
            })
            .collect();
        let portfolio = match &self.portfolio {
            None => "null".to_string(),
            Some(p) => {
                let entrants: Vec<String> = p
                    .entrants
                    .iter()
                    .map(|e| {
                        format!(
                            concat!(
                                r#"{{"entrant":"{}","runs":{},"busy_us":{},"wins":{},"#,
                                r#""wasted_us":{}}}"#
                            ),
                            esc(&e.entrant),
                            e.runs,
                            e.busy_us,
                            e.wins,
                            e.wasted_us
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        r#"{{"races":{},"decided":{},"winner_us":{},"wasted_us":{},"#,
                        r#""entrants":[{}]}}"#
                    ),
                    p.races,
                    p.decided,
                    p.winner_us,
                    p.wasted_us,
                    entrants.join(",")
                )
            }
        };
        let scheduler: Vec<String> = self
            .scheduler
            .iter()
            .map(|g| {
                format!(
                    concat!(
                        r#"{{"track":"{}","busy_us":{},"scheduler_us":{},"#,
                        r#""utilization":{:.4}}}"#
                    ),
                    esc(&g.track),
                    g.busy_us,
                    g.scheduler_us,
                    g.utilization
                )
            })
            .collect();
        let baseline = match baseline {
            None => "null".to_string(),
            Some(cmp) => cmp.to_json(),
        };
        format!(
            concat!(
                "{{\n  \"schema\": \"{}\",\n  \"total_events\": {},\n",
                "  \"tracks\": [{}],\n  \"spans\": [{}],\n  \"counters\": [{}],\n",
                "  \"portfolio\": {},\n  \"scheduler\": [{}],\n  \"baseline\": {}\n}}\n"
            ),
            REPORT_SCHEMA,
            self.total_events,
            tracks.join(","),
            spans.join(","),
            counters.join(","),
            portfolio,
            scheduler.join(","),
            baseline
        )
    }

    /// Compares this report against `baseline`; `extra_tol` widens every
    /// entry's own tolerance (the `trace-report --tolerance` flag).
    pub fn compare(&self, baseline: &Baseline, extra_tol: f64, file: &str) -> BaselineComparison {
        let mut violations = Vec::new();
        for entry in &baseline.entries {
            let tol = (entry.tol + extra_tol).max(0.0);
            let lo = ((entry.count as f64) * (1.0 - tol)).floor().max(0.0) as u64;
            let hi = ((entry.count as f64) * (1.0 + tol)).ceil() as u64;
            match self
                .spans
                .iter()
                .find(|s| s.track == entry.track && s.name == entry.name)
            {
                None => violations.push(format!(
                    "{}/{} missing from the report (baseline count {})",
                    entry.track, entry.name, entry.count
                )),
                Some(agg) if agg.count < lo || agg.count > hi => violations.push(format!(
                    "{}/{} count {} outside [{lo}, {hi}] (baseline {})",
                    entry.track, entry.name, agg.count, entry.count
                )),
                Some(_) => {}
            }
        }
        BaselineComparison {
            file: file.to_string(),
            tolerance: extra_tol,
            checked: baseline.entries.len() as u64,
            violations,
        }
    }
}

// ---------------------------------------------------------------------------
// Baselines: the CI perf-regression reference.
// ---------------------------------------------------------------------------

/// One gated aggregate: the span count of (`track`, `name`) must stay
/// within `tol` (relative) of `count`.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineEntry {
    /// Track of the gated aggregate.
    pub track: String,
    /// Span name of the gated aggregate.
    pub name: String,
    /// Reference count.
    pub count: u64,
    /// Relative tolerance (0.0 = exact).
    pub tol: f64,
}

/// A checked-in reference extracted from a known-good report
/// (`itpseq-report-baseline/v1`).
///
/// Only *structurally deterministic* aggregates are gated: the engine-run
/// span vocabulary (`*.run`, `*.multi`, `portfolio.race`, `preprocess`,
/// `scheduler.run`) whose counts at `threads = 1` racing depend on the
/// workload alone, never on machine speed.  Wall times are reported but
/// deliberately not gated — CI hardware varies, counts do not.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    /// The gated entries.
    pub entries: Vec<BaselineEntry>,
}

/// Span names whose per-track counts are deterministic for a given
/// workload (see [`Baseline`]).
fn is_stable_span(name: &str) -> bool {
    name.ends_with(".run")
        || name.ends_with(".multi")
        || name == "portfolio.race"
        || name == "preprocess"
        || name == "scheduler.run"
}

impl Baseline {
    /// Extracts the gate-worthy entries from a known-good report — the
    /// baseline-update procedure is exactly `trace-report --write-baseline`
    /// over a fresh local run.
    pub fn from_report(report: &TraceReport) -> Baseline {
        Baseline {
            entries: report
                .spans
                .iter()
                .filter(|s| is_stable_span(&s.name))
                .map(|s| BaselineEntry {
                    track: s.track.clone(),
                    name: s.name.clone(),
                    count: s.count,
                    tol: 0.0,
                })
                .collect(),
        }
    }

    /// Parses the `itpseq-report-baseline/v1` document.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = parse_json(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("baseline carries no schema field")?;
        if schema != BASELINE_SCHEMA {
            return Err(format!("unsupported baseline schema {schema:?}"));
        }
        let entries = doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("baseline carries no entries array")?;
        let mut parsed = Vec::with_capacity(entries.len());
        for entry in entries {
            let field = |key: &str| {
                entry
                    .get(key)
                    .ok_or_else(|| format!("baseline entry missing {key:?}"))
            };
            parsed.push(BaselineEntry {
                track: field("track")?
                    .as_str()
                    .ok_or("bad baseline track")?
                    .to_string(),
                name: field("name")?
                    .as_str()
                    .ok_or("bad baseline name")?
                    .to_string(),
                count: field("count")?.as_u64().ok_or("bad baseline count")?,
                tol: field("tol")?.as_f64().ok_or("bad baseline tol")?,
            });
        }
        Ok(Baseline { entries: parsed })
    }

    /// The `itpseq-report-baseline/v1` JSON document.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    r#"    {{"track":"{}","name":"{}","count":{},"tol":{:.3}}}"#,
                    crate::json_escape(&e.track),
                    crate::json_escape(&e.name),
                    e.count,
                    e.tol
                )
            })
            .collect();
        format!(
            "{{\n  \"schema\": \"{BASELINE_SCHEMA}\",\n  \"entries\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        )
    }
}

/// Outcome of gating a report against a [`Baseline`] — embedded in the
/// report JSON under `"baseline"`.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineComparison {
    /// Baseline file compared against.
    pub file: String,
    /// Extra tolerance applied on top of the per-entry tolerances.
    pub tolerance: f64,
    /// Entries checked.
    pub checked: u64,
    /// Human-readable violations; empty means the gate passes.
    pub violations: Vec<String>,
}

impl BaselineComparison {
    /// `true` when no entry was violated.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    fn to_json(&self) -> String {
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| format!("\"{}\"", crate::json_escape(v)))
            .collect();
        format!(
            concat!(
                r#"{{"file":"{}","tolerance":{:.3},"checked":{},"passed":{},"#,
                r#""violations":[{}]}}"#
            ),
            crate::json_escape(&self.file),
            self.tolerance,
            self.checked,
            self.passed(),
            violations.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemorySink, Telemetry};
    use std::sync::Arc;

    /// A handcrafted event with a chosen timestamp (the report only reads
    /// structure and timestamps, so tests fix both).
    fn ev(ts_us: u64, track: &str, name: &str, kind: EventKind, args: Args) -> RecEvent {
        RecEvent {
            ts_us,
            track: track.to_string(),
            name: name.to_string(),
            kind,
            args,
        }
    }

    type Args = Vec<(String, ArgValue)>;

    fn no_args() -> Args {
        Vec::new()
    }

    #[test]
    fn span_aggregates_compute_self_time_and_percentiles() {
        // main: run [0..100] containing sat [10..30] and sat [40..50].
        let events = vec![
            ev(0, "main", "run", EventKind::Begin, no_args()),
            ev(10, "main", "sat", EventKind::Begin, no_args()),
            ev(30, "main", "sat", EventKind::End, no_args()),
            ev(40, "main", "sat", EventKind::Begin, no_args()),
            ev(50, "main", "sat", EventKind::End, no_args()),
            ev(100, "main", "run", EventKind::End, no_args()),
        ];
        let report = TraceReport::from_rec(&events);
        let run = report
            .spans
            .iter()
            .find(|s| s.name == "run")
            .expect("run agg");
        assert_eq!(run.count, 1);
        assert_eq!(run.total_us, 100);
        assert_eq!(run.self_us, 70); // 100 - 20 - 10
        let sat = report
            .spans
            .iter()
            .find(|s| s.name == "sat")
            .expect("sat agg");
        assert_eq!(sat.count, 2);
        assert_eq!(sat.total_us, 30);
        assert_eq!(sat.self_us, 30);
        assert_eq!((sat.min_us, sat.max_us), (10, 20));
        assert_eq!((sat.p50_us, sat.p90_us, sat.p99_us), (10, 20, 20));
        let track = &report.tracks[0];
        assert_eq!(track.wall_us, 100);
        assert_eq!(track.busy_us, 100);
        assert_eq!(track.unclosed, 0);
        // Self times sum to exactly the root total.
        let self_sum: u64 = report.spans.iter().map(|s| s.self_us).sum();
        assert_eq!(self_sum, track.busy_us);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        assert_eq!(percentile(&samples, 90.0), 90);
        assert_eq!(percentile(&samples, 99.0), 99);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn counter_rollups_rebase_across_solver_switches() {
        let sample = |ts: u64, value: u64| {
            ev(
                ts,
                "main",
                "solver",
                EventKind::Counter,
                vec![("conflicts".to_string(), ArgValue::U64(value))],
            )
        };
        // Two solvers: cumulative 100, 300, then a fresh solver restarts
        // at 50 and reaches 150.  Progress total = 300 + 150.
        let events = vec![
            ev(0, "main", "run", EventKind::Begin, no_args()),
            sample(10, 100),
            sample(20, 300),
            sample(30, 50),
            sample(1_000_000, 150),
            ev(1_000_000, "main", "run", EventKind::End, no_args()),
        ];
        let report = TraceReport::from_rec(&events);
        let agg = &report.counters[0];
        assert_eq!(agg.samples, 4);
        assert_eq!(agg.peak, 300);
        assert_eq!(agg.total, 450);
        assert!(
            (agg.rate_per_sec - 450.0).abs() < 1e-6,
            "{}",
            agg.rate_per_sec
        );
    }

    #[test]
    fn portfolio_wasted_work_sums_losing_entrants() {
        let win = |ts: u64, entrant: &str| {
            ev(
                ts,
                "main",
                "entrant.win",
                EventKind::Instant,
                vec![("entrant".to_string(), ArgValue::Str(entrant.to_string()))],
            )
        };
        let events = vec![
            // Race 1: PDR wins (100 us), BMC loses (80 us).
            ev(0, "main", "portfolio.race", EventKind::Begin, no_args()),
            ev(0, "PDR", "PDR.run", EventKind::Begin, no_args()),
            ev(0, "BMC", "BMC.run", EventKind::Begin, no_args()),
            ev(80, "BMC", "BMC.run", EventKind::End, no_args()),
            ev(100, "PDR", "PDR.run", EventKind::End, no_args()),
            win(105, "PDR"),
            ev(110, "main", "portfolio.race", EventKind::End, no_args()),
            // Race 2: BMC wins (30 us), PDR loses (40 us).
            ev(200, "main", "portfolio.race", EventKind::Begin, no_args()),
            ev(200, "PDR", "PDR.run", EventKind::Begin, no_args()),
            ev(200, "BMC", "BMC.run", EventKind::Begin, no_args()),
            ev(230, "BMC", "BMC.run", EventKind::End, no_args()),
            ev(240, "PDR", "PDR.run", EventKind::End, no_args()),
            win(245, "BMC"),
            ev(250, "main", "portfolio.race", EventKind::End, no_args()),
        ];
        let report = TraceReport::from_rec(&events);
        let p = report.portfolio.expect("portfolio section");
        assert_eq!(p.races, 2);
        assert_eq!(p.decided, 2);
        assert_eq!(p.winner_us, 130); // 100 + 30
        assert_eq!(p.wasted_us, 120); // 80 + 40
        let pdr = p.entrants.iter().find(|e| e.entrant == "PDR").unwrap();
        assert_eq!(
            (pdr.runs, pdr.wins, pdr.busy_us, pdr.wasted_us),
            (2, 1, 140, 40)
        );
        let bmc = p.entrants.iter().find(|e| e.entrant == "BMC").unwrap();
        assert_eq!(
            (bmc.runs, bmc.wins, bmc.busy_us, bmc.wasted_us),
            (2, 1, 110, 80)
        );
    }

    #[test]
    fn scheduler_utilization_relates_group_tracks_to_the_run() {
        let events = vec![
            ev(0, "main", "scheduler.run", EventKind::Begin, no_args()),
            ev(10, "group0.PDR", "PDR.multi", EventKind::Begin, no_args()),
            ev(60, "group0.PDR", "PDR.multi", EventKind::End, no_args()),
            ev(10, "group0.BMC", "BMC.multi", EventKind::Begin, no_args()),
            ev(35, "group0.BMC", "BMC.multi", EventKind::End, no_args()),
            ev(100, "main", "scheduler.run", EventKind::End, no_args()),
        ];
        let report = TraceReport::from_rec(&events);
        assert_eq!(report.scheduler.len(), 2);
        let pdr = report
            .scheduler
            .iter()
            .find(|g| g.track == "group0.PDR")
            .unwrap();
        assert_eq!(pdr.busy_us, 50);
        assert_eq!(pdr.scheduler_us, 100);
        assert!((pdr.utilization - 0.5).abs() < 1e-9);
        // No portfolio.race span: the .multi roots are not misattributed.
        assert!(report.portfolio.is_none());
    }

    #[test]
    fn jsonl_round_trips_through_the_parser() {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        {
            let _run = telemetry.span_args("run", || {
                vec![("engine", ArgValue::Str("BMC \"q\"".into()))]
            });
            telemetry.counter("solver", || vec![("conflicts", ArgValue::U64(42))]);
            telemetry.instant("verdict");
        }
        let events = sink.snapshot();
        let mut buffer = Vec::new();
        crate::write_jsonl(&events, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let direct = TraceReport::from_events(&events);
        let parsed = TraceReport::from_jsonl(&text).expect("parse back");
        assert_eq!(direct, parsed);
        assert_eq!(parsed.total_events, events.len() as u64);
        assert_eq!(parsed.counters.len(), 1);
        assert_eq!(parsed.counters[0].peak, 42);
    }

    #[test]
    fn jsonl_parser_rejects_garbage() {
        assert!(TraceReport::from_jsonl("").is_err());
        assert!(TraceReport::from_jsonl("{\"schema\":\"bogus/v9\"}\n").is_err());
        assert!(TraceReport::from_jsonl("{\"schema\":\"itpseq-trace/v1\"}\nnot json\n").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("[1,2,").is_err());
        // Escapes round-trip.
        let doc = parse_json(r#"{"s":"a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(doc.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn baseline_round_trip_and_tolerances() {
        let events = vec![
            ev(0, "main", "BMC.run", EventKind::Begin, no_args()),
            ev(10, "main", "BMC.run", EventKind::End, no_args()),
            ev(20, "main", "BMC.run", EventKind::Begin, no_args()),
            ev(30, "main", "BMC.run", EventKind::End, no_args()),
            ev(40, "main", "sat", EventKind::Begin, no_args()),
            ev(50, "main", "sat", EventKind::End, no_args()),
        ];
        let report = TraceReport::from_rec(&events);
        let baseline = Baseline::from_report(&report);
        // Only the stable vocabulary is gated, not the sat spans.
        assert_eq!(baseline.entries.len(), 1);
        assert_eq!(baseline.entries[0].name, "BMC.run");
        assert_eq!(baseline.entries[0].count, 2);
        let parsed = Baseline::parse(&baseline.to_json()).expect("baseline parses");
        assert_eq!(parsed, baseline);

        // Same report gates clean; a count drift fails at tol 0 and is
        // absorbed by a wide-enough extra tolerance.
        assert!(report.compare(&baseline, 0.0, "b.json").passed());
        let mut drifted = baseline.clone();
        drifted.entries[0].count = 3;
        let strict = report.compare(&drifted, 0.0, "b.json");
        assert!(!strict.passed(), "{:?}", strict.violations);
        assert!(report.compare(&drifted, 0.5, "b.json").passed());
        let missing = Baseline {
            entries: vec![BaselineEntry {
                track: "main".to_string(),
                name: "PDR.run".to_string(),
                count: 1,
                tol: 0.0,
            }],
        };
        let cmp = report.compare(&missing, 0.0, "b.json");
        assert!(!cmp.passed());
        assert!(
            cmp.violations[0].contains("missing"),
            "{:?}",
            cmp.violations
        );
    }

    #[test]
    fn report_json_is_balanced_and_carries_the_baseline_field() {
        let events = vec![
            ev(0, "main", "run", EventKind::Begin, no_args()),
            ev(10, "main", "run", EventKind::End, no_args()),
        ];
        let report = TraceReport::from_rec(&events);
        let plain = report.to_json(None);
        assert!(plain.contains(r#""schema": "itpseq-report/v1""#), "{plain}");
        assert!(plain.contains(r#""baseline": null"#), "{plain}");
        assert_eq!(plain.matches('{').count(), plain.matches('}').count());
        let cmp = BaselineComparison {
            file: "baselines/x.json".to_string(),
            tolerance: 0.1,
            checked: 3,
            violations: vec!["main/run count 1 outside [2, 2]".to_string()],
        };
        let gated = report.to_json(Some(&cmp));
        assert!(gated.contains(r#""passed":false"#), "{gated}");
        assert!(gated.contains("outside"), "{gated}");
        assert_eq!(gated.matches('{').count(), gated.matches('}').count());
    }

    #[test]
    fn unclosed_spans_are_reported_not_aggregated() {
        let events = vec![
            ev(0, "main", "run", EventKind::Begin, no_args()),
            ev(10, "main", "sat", EventKind::Begin, no_args()),
            ev(20, "main", "sat", EventKind::End, no_args()),
        ];
        let report = TraceReport::from_rec(&events);
        assert_eq!(report.tracks[0].unclosed, 1);
        assert!(report.spans.iter().all(|s| s.name != "run"));
        // busy only counts completed roots; sat is a child of the open run.
        assert_eq!(report.tracks[0].busy_us, 0);
    }
}
