//! Shared machinery of the interpolation-sequence engines.
//!
//! The three sequence-based engines of the paper (`ITPSEQ`, `SITPSEQ`,
//! `ITPSEQCBA`) share one outer loop — Fig. 2 extended with the serial
//! computation of Fig. 4 and the abstraction-refinement of Fig. 5.  This
//! module implements that loop once, parameterised by:
//!
//! * the BMC check formulation (*exact-k* or *exact-assume-k*),
//! * the serial fraction `αs` (0 = fully parallel, 1 = fully serial),
//! * whether counterexample-based abstraction is enabled.
//!
//! The module is `pub(crate)` (rather than private) so that engine
//! families outside `engines/` — a portfolio runner combining
//! [`SeqConfig`]/[`run`] with [`crate::engines::pdr`], for instance —
//! can drive this loop without re-deriving it.  The PDR subsystem itself
//! keeps its own frame machinery (clause traces, not interpolant
//! columns) and does not depend on this module.

use crate::abstraction::Abstraction;
use crate::engines::CancelToken;
use crate::state::{encode_state_lit, StateSpace};
use crate::{EngineResult, EngineStats, Options, Verdict};
use aig::Aig;
use cnf::{BmcCheck, Unroller};
use itp::InterpolationContext;
use sat::{Proof, SolveResult, Solver};
use std::collections::HashMap;
use std::time::Instant;

/// Static configuration distinguishing the three sequence engines.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SeqConfig {
    /// Fraction of the sequence computed serially (Fig. 4's `αs`).
    pub alpha_serial: f64,
    /// Enable counterexample-based abstraction (Fig. 5).
    pub use_cba: bool,
}

/// How frame 0 of an unrolling is constrained.
enum InitKind<'a> {
    /// The design's reset state.
    Reset,
    /// An arbitrary symbolic state set (used by serial steps).
    Set {
        space: &'a StateSpace,
        set: aig::Lit,
        concrete_to_model: &'a [usize],
    },
}

/// A built (partitioned) unrolling plus its frame variable maps.
struct SeqInstance {
    cnf: cnf::Cnf,
    frame_latches: Vec<Vec<cnf::Lit>>,
}

/// Builds the partitioned unrolling of `model` covering `transitions` steps,
/// where sub-frame 0 corresponds to absolute frame `offset` of a bound
/// `total_bound` problem.
///
/// Partition layout: 1 = the initial constraint, `1 + f` = the transition
/// into sub-frame `f` (plus the assume-k property assumption on sub-frame
/// `f - 1` when applicable), `transitions + 2` = the `¬p` target.
fn build_instance(
    model: &Aig,
    bad_index: usize,
    transitions: usize,
    offset: usize,
    total_bound: usize,
    check: BmcCheck,
    init: InitKind<'_>,
) -> SeqInstance {
    let mut unroller = Unroller::new(model);
    unroller.builder_mut().set_partition(1);
    match init {
        InitKind::Reset => unroller.assert_initial(0),
        InitKind::Set {
            space,
            set,
            concrete_to_model,
        } => {
            let lit = encode_state_lit(&mut unroller, 0, space, set, concrete_to_model);
            unroller.assert_lit(lit);
        }
    }
    for f in 1..=transitions {
        unroller.builder_mut().set_partition((f + 1) as u32);
        let absolute = offset + f - 1;
        if check == BmcCheck::ExactAssume && absolute >= 1 && absolute < total_bound {
            let bad_prev = unroller.bad_lit(f - 1, bad_index);
            unroller.assert_lit(!bad_prev);
        }
        unroller.add_frame();
    }
    unroller
        .builder_mut()
        .set_partition((transitions + 2) as u32);
    let bad = unroller.bad_lit(transitions, bad_index);
    unroller.assert_lit(bad);
    let frame_latches = (0..=transitions).map(|f| unroller.latch_lits(f)).collect();
    SeqInstance {
        cnf: unroller.into_cnf(),
        frame_latches,
    }
}

fn solve(
    cnf: &cnf::Cnf,
    stats: &mut EngineStats,
    cancel: &CancelToken,
) -> (SolveResult, Option<Proof>) {
    let mut solver = Solver::new();
    solver.set_interrupt(Some(cancel.flag()));
    solver.add_cnf(cnf);
    stats.sat_calls += 1;
    let result = solver.solve();
    stats.conflicts += solver.stats().conflicts;
    let proof = if result == SolveResult::Unsat {
        solver.proof()
    } else {
        None
    };
    (result, proof)
}

/// Extracts the interpolants at the given sub-instance cuts, mapping shared
/// frame variables to state-space latches.
fn extract_interpolants(
    proof: &Proof,
    instance: &SeqInstance,
    cuts: &[u32],
    space: &mut StateSpace,
    model_to_concrete: &[usize],
    stats: &mut EngineStats,
) -> Result<Vec<aig::Lit>, String> {
    let mut var_to_latch: HashMap<u32, usize> = HashMap::new();
    for lits in &instance.frame_latches {
        for (model_latch, lit) in lits.iter().enumerate() {
            var_to_latch.insert(lit.var().index(), model_to_concrete[model_latch]);
        }
    }
    let latch_lits: Vec<aig::Lit> = (0..space.num_latches()).map(|i| space.latch(i)).collect();
    let ctx = InterpolationContext::new(proof).map_err(|e| e.to_string())?;
    let itps = ctx
        .sequence_for_cuts(cuts, space.manager_mut(), &|_, v| {
            let latch = *var_to_latch
                .get(&v.index())
                .expect("shared interpolant variables are frame latch variables");
            latch_lits[latch]
        })
        .map_err(|e| e.to_string())?;
    stats.interpolants += itps.len() as u64;
    Ok(itps)
}

/// Computes the interpolation sequence `I_1 … I_k` for bound `k`, given the
/// already-refuted full instance and its proof, using the serial/parallel
/// mix requested by `alpha_serial` (Fig. 4).
#[allow(clippy::too_many_arguments)]
fn compute_sequence(
    model: &Aig,
    bound: usize,
    check: BmcCheck,
    alpha_serial: f64,
    space: &mut StateSpace,
    model_to_concrete: &[usize],
    concrete_to_model: &[usize],
    full_instance: &SeqInstance,
    full_proof: &Proof,
    stats: &mut EngineStats,
    cancel: &CancelToken,
) -> Result<Vec<aig::Lit>, String> {
    let n = bound + 1;
    let serial = ((alpha_serial * n as f64).floor() as usize).min(bound);
    let mut sequence: Vec<aig::Lit> = Vec::with_capacity(bound);

    // Serial part: I_j = ITP(I_{j-1} ∧ A_j, ⋀_{i>j} A_i), each from its own
    // refutation.  The first step reuses the proof of the full instance
    // (its A side is exactly S0 ∧ A_1).
    for j in 1..=serial {
        let (instance, proof) = if j == 1 {
            (None, full_proof.clone())
        } else {
            let prev = sequence[j - 2];
            let inst = build_instance(
                model,
                0,
                bound - j + 1,
                j - 1,
                bound,
                check,
                InitKind::Set {
                    space,
                    set: prev,
                    concrete_to_model,
                },
            );
            let (result, proof) = solve(&inst.cnf, stats, cancel);
            match result {
                SolveResult::Unsat => {}
                SolveResult::Sat => {
                    return Err(format!(
                        "serial interpolation step {j} was unexpectedly satisfiable"
                    ));
                }
                SolveResult::Interrupted => return Err("cancelled".to_string()),
            }
            (Some(inst), proof.expect("unsat result has a proof"))
        };
        let inst_ref = instance.as_ref().unwrap_or(full_instance);
        let itp = extract_interpolants(&proof, inst_ref, &[2], space, model_to_concrete, stats)?;
        sequence.push(itp[0]);
    }

    // Parallel part: the remaining elements all come from one proof.
    if serial < bound {
        if serial == 0 {
            // Plain interpolation sequence: every element from the proof of
            // the full instance.
            let cuts: Vec<u32> = (2..=(bound + 1) as u32).collect();
            let itps = extract_interpolants(
                full_proof,
                full_instance,
                &cuts,
                space,
                model_to_concrete,
                stats,
            )?;
            sequence.extend(itps);
        } else {
            let prev = sequence[serial - 1];
            let inst = build_instance(
                model,
                0,
                bound - serial,
                serial,
                bound,
                check,
                InitKind::Set {
                    space,
                    set: prev,
                    concrete_to_model,
                },
            );
            let (result, proof) = solve(&inst.cnf, stats, cancel);
            match result {
                SolveResult::Unsat => {}
                SolveResult::Sat => {
                    return Err(
                        "parallel remainder of the serial sequence was unexpectedly satisfiable"
                            .to_string(),
                    );
                }
                SolveResult::Interrupted => return Err("cancelled".to_string()),
            }
            let proof = proof.expect("unsat result has a proof");
            let cuts: Vec<u32> = (2..=(bound - serial + 1) as u32).collect();
            let itps = extract_interpolants(&proof, &inst, &cuts, space, model_to_concrete, stats)?;
            sequence.extend(itps);
        }
    }
    debug_assert_eq!(sequence.len(), bound);
    Ok(sequence)
}

enum ExtendOutcome {
    /// The abstract counterexample concretises: the property fails.
    ConcreteCounterexample,
    /// The counterexample was spurious; the abstraction has been refined.
    Refined,
    /// The run was cancelled mid-check.
    Cancelled,
}

/// Checks an abstract counterexample against the concrete design
/// (Fig. 5's `EXTEND`) and refines the abstraction from the unsatisfiable
/// assumption core when it is spurious (`REFINE`).
#[allow(clippy::too_many_arguments)]
fn extend_or_refine(
    design: &Aig,
    bad_index: usize,
    bound: usize,
    abstraction: &mut Abstraction,
    check: BmcCheck,
    stats: &mut EngineStats,
    cancel: &CancelToken,
) -> ExtendOutcome {
    let mut unroller = Unroller::new(design);
    let mut guards: Vec<Option<cnf::Lit>> = vec![None; design.num_latches()];
    let mut activation: Vec<(cnf::Lit, usize)> = Vec::new();
    for (latch, guard) in guards.iter_mut().enumerate() {
        if !abstraction.is_visible(latch) {
            let a = unroller.builder_mut().new_lit();
            *guard = Some(a);
            activation.push((a, latch));
        }
    }
    unroller.assert_initial_guarded(0, &guards);
    for f in 1..=bound {
        if check == BmcCheck::ExactAssume && f >= 2 {
            let bad_prev = unroller.bad_lit(f - 1, bad_index);
            unroller.assert_lit(!bad_prev);
        }
        unroller.add_frame_guarded(&guards);
    }
    let bad = unroller.bad_lit(bound, bad_index);
    unroller.assert_lit(bad);

    let mut solver = Solver::new();
    solver.set_interrupt(Some(cancel.flag()));
    solver.add_cnf(&unroller.into_cnf());
    stats.sat_calls += 1;
    let assumptions: Vec<cnf::Lit> = activation.iter().map(|&(a, _)| a).collect();
    let result = solver.solve_with_assumptions(&assumptions);
    stats.conflicts += solver.stats().conflicts;
    match result {
        SolveResult::Sat => ExtendOutcome::ConcreteCounterexample,
        SolveResult::Interrupted => ExtendOutcome::Cancelled,
        SolveResult::Unsat => {
            let core = solver.assumption_core();
            let mut to_add: Vec<usize> = activation
                .iter()
                .filter(|&&(a, _)| core.contains(&a) || core.contains(&!a))
                .map(|&(_, latch)| latch)
                .collect();
            if to_add.is_empty() {
                // Defensive fallback: refine with every invisible latch.
                to_add = activation.iter().map(|&(_, latch)| latch).collect();
            }
            abstraction.refine(to_add);
            ExtendOutcome::Refined
        }
    }
}

/// The shared outer loop of the sequence-based engines.
pub(crate) fn run(
    design: &Aig,
    bad_index: usize,
    options: &Options,
    config: SeqConfig,
    cancel: &CancelToken,
) -> EngineResult {
    let start = Instant::now();
    let stop_reason = || crate::engines::stop_reason(cancel, start, options.timeout);
    let mut stats = EngineStats::default();
    let mut space = StateSpace::new(design.num_latches());
    // `ℐ_j` column conjunctions, persisted across bounds (1-based index j).
    let mut columns: Vec<aig::Lit> = Vec::new();

    if crate::engines::bmc::initial_violation(design, bad_index) {
        stats.sat_calls += 1;
        stats.time = start.elapsed();
        return EngineResult {
            verdict: Verdict::Falsified { depth: 0 },
            stats,
        };
    }
    stats.sat_calls += 1;

    let mut abstraction = if config.use_cba {
        Abstraction::initial(design, bad_index)
    } else {
        Abstraction::full(design)
    };
    stats.visible_latches = abstraction.num_visible();
    let mut current = abstraction.abstract_model(design, bad_index);

    let finish = |mut stats: EngineStats, verdict: Verdict, start: Instant| {
        stats.time = start.elapsed();
        EngineResult { verdict, stats }
    };

    for k in 1..=options.max_bound {
        if let Some(reason) = stop_reason() {
            return finish(
                stats,
                Verdict::Inconclusive {
                    reason: reason.to_string(),
                    bound_reached: k - 1,
                },
                start,
            );
        }

        // Bounded check at bound k (on the abstract model when CBA is on),
        // interleaved with abstraction refinement.
        let (instance, proof) = loop {
            let (model, _) = &current;
            let instance = build_instance(model, 0, k, 0, k, options.check, InitKind::Reset);
            let (result, proof) = solve(&instance.cnf, &mut stats, cancel);
            match result {
                SolveResult::Unsat => break (instance, proof.expect("unsat result has a proof")),
                SolveResult::Interrupted => {
                    return finish(
                        stats,
                        Verdict::Inconclusive {
                            reason: "cancelled".to_string(),
                            bound_reached: k - 1,
                        },
                        start,
                    );
                }
                SolveResult::Sat => {
                    if !config.use_cba || abstraction.is_complete(design) {
                        return finish(stats, Verdict::Falsified { depth: k }, start);
                    }
                    match extend_or_refine(
                        design,
                        bad_index,
                        k,
                        &mut abstraction,
                        options.check,
                        &mut stats,
                        cancel,
                    ) {
                        ExtendOutcome::ConcreteCounterexample => {
                            return finish(stats, Verdict::Falsified { depth: k }, start);
                        }
                        ExtendOutcome::Cancelled => {
                            return finish(
                                stats,
                                Verdict::Inconclusive {
                                    reason: "cancelled".to_string(),
                                    bound_reached: k - 1,
                                },
                                start,
                            );
                        }
                        ExtendOutcome::Refined => {
                            stats.refinements += 1;
                            stats.visible_latches = abstraction.num_visible();
                            current = abstraction.abstract_model(design, bad_index);
                        }
                    }
                }
            }
            if let Some(reason) = stop_reason() {
                return finish(
                    stats,
                    Verdict::Inconclusive {
                        reason: reason.to_string(),
                        bound_reached: k,
                    },
                    start,
                );
            }
        };

        // Interpolation sequence for this bound.
        let (model, model_to_concrete) = &current;
        let mut concrete_to_model = vec![usize::MAX; design.num_latches()];
        for (model_latch, &concrete) in model_to_concrete.iter().enumerate() {
            concrete_to_model[concrete] = model_latch;
        }
        let sequence = match compute_sequence(
            model,
            k,
            options.check,
            config.alpha_serial,
            &mut space,
            model_to_concrete,
            &concrete_to_model,
            &instance,
            &proof,
            &mut stats,
            cancel,
        ) {
            Ok(sequence) => sequence,
            Err(reason) => {
                return finish(
                    stats,
                    Verdict::Inconclusive {
                        reason,
                        bound_reached: k,
                    },
                    start,
                );
            }
        };

        // Column conjunctions and fixed-point checks (Fig. 2's inner loop).
        let initial_lits: Vec<aig::Lit> = (0..model.num_latches())
            .map(|i| {
                space
                    .latch(model_to_concrete[i])
                    .xor_complement(!model.init(i))
            })
            .collect();
        let r0 = space.manager_mut().and_many(initial_lits);
        let mut reached = r0;
        for j in 1..=k {
            if columns.len() < j {
                columns.push(aig::Lit::TRUE);
            }
            columns[j - 1] = space.and(columns[j - 1], sequence[j - 1]);
            if space.implies(columns[j - 1], reached) {
                return finish(stats, Verdict::Proved { k_fp: k, j_fp: j }, start);
            }
            reached = space.or(reached, columns[j - 1]);
        }
    }

    finish(
        stats,
        Verdict::Inconclusive {
            reason: "bound exhausted".to_string(),
            bound_reached: options.max_bound,
        },
        start,
    )
}
