//! Chaos suite: deterministic fault injection across the engine stack.
//!
//! The contract under test: an injected fault — a panic, a spurious
//! interrupt or a simulated allocation failure, fired at a solver
//! conflict, a clause-arena allocation or an engine phase — may cost a
//! run its verdict, but it must never
//!
//! 1. crash the process (every dispatch boundary contains the unwind),
//! 2. flip a conclusive answer (a faulted run that still concludes
//!    agrees with the clean run, counterexample depths included), or
//! 3. surface as anything but an `Inconclusive` verdict with a
//!    machine-readable stop reason.
//!
//! The seeded sweep runs everywhere; the full-suite stress variant is
//! `#[ignore]`d and exercised by CI's chaos job
//! (`cargo test --release --test fault_isolation -- --include-ignored`).

use itpseq::mc::{Engine, EngineResult, Options, StopReason, Verdict};
use itpseq::sat::{FaultKind, FaultPlan, FaultSite};
use itpseq::workloads::Benchmark;
use std::time::Duration;

const ENGINES: [Engine; 4] = [Engine::ItpSeq, Engine::Pdr, Engine::Bmc, Engine::Portfolio];

fn options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(30))
        .with_max_bound(40)
}

fn small_suite() -> Vec<Benchmark> {
    itpseq::workloads::suite::mid_size()
        .into_iter()
        .take(2)
        .collect()
}

/// The chaos invariant, checked for one faulted run against its clean
/// reference; returns `true` when the fault cost the run its verdict.
fn assert_sound(context: &str, clean: &Verdict, chaos: &EngineResult) -> bool {
    match &chaos.verdict {
        Verdict::Proved { .. } => {
            assert!(
                !clean.is_falsified(),
                "{context}: fault flipped {clean} to {}",
                chaos.verdict
            );
            false
        }
        Verdict::Falsified { depth } => {
            assert!(
                !clean.is_proved(),
                "{context}: fault flipped {clean} to {}",
                chaos.verdict
            );
            if let Verdict::Falsified { depth: reference } = clean {
                assert_eq!(
                    depth, reference,
                    "{context}: counterexample depth must stay minimal"
                );
            }
            false
        }
        Verdict::Inconclusive { reason, .. } => {
            assert!(
                !reason.to_string().is_empty(),
                "{context}: a degraded run must carry a machine-readable reason"
            );
            true
        }
    }
}

/// Seeded sweep over benchmarks × engines: every run survives, no
/// conclusive answer flips, and the sweep lands at least one fault.
#[test]
fn seeded_faults_are_contained_and_sound() {
    let mut fired = 0u64;
    for benchmark in &small_suite() {
        for engine in ENGINES {
            let clean = engine.verify(&benchmark.aig, 0, &options()).verdict;
            for seed in 0..5u64 {
                let chaos = options().with_faults(FaultPlan::seeded(seed));
                let result = engine.verify(&benchmark.aig, 0, &chaos);
                let context = format!("{} / {} / seed {seed}", benchmark.name, engine.name());
                assert_sound(&context, &clean, &result);
                fired += result.stats.faults_injected;
            }
        }
    }
    assert!(fired > 0, "the sweep must land at least one fault");
}

/// Every (site, kind) combination is contained; an unwind that costs the
/// verdict is counted and reported as a `panic:` reason.
#[test]
fn every_fault_site_and_kind_is_contained() {
    // A workload with real search: a propagation-only run never ticks
    // the conflict site, so the sweep needs a benchmark whose clean run
    // reports conflicts.
    let base = options().with_threads(1);
    let (benchmark, clean) = itpseq::workloads::suite::mid_size()
        .into_iter()
        .find_map(|b| {
            let result = Engine::ItpSeq.verify(&b.aig, 0, &base);
            (result.stats.conflicts > 0).then_some((b, result.verdict))
        })
        .expect("a mid-size benchmark with conflicts");
    for site in [FaultSite::Conflict, FaultSite::Alloc, FaultSite::Phase] {
        for kind in [FaultKind::Panic, FaultKind::Interrupt, FaultKind::AllocFail] {
            let chaos = base.clone().with_faults(FaultPlan::inject(site, kind, 1));
            let result = Engine::ItpSeq.verify(&benchmark.aig, 0, &chaos);
            let context = format!("{site:?}/{kind:?}");
            let degraded = assert_sound(&context, &clean, &result);
            assert_eq!(
                result.stats.faults_injected, 1,
                "{context}: the armed fault fires exactly once"
            );
            if degraded {
                match kind {
                    FaultKind::Panic | FaultKind::AllocFail => {
                        assert!(
                            result.stats.panics_contained >= 1,
                            "{context}: the contained unwind must be counted"
                        );
                        assert!(
                            matches!(
                                &result.verdict,
                                Verdict::Inconclusive {
                                    reason: StopReason::Panic(_),
                                    ..
                                }
                            ),
                            "{context}: expected a panic reason, got {}",
                            result.verdict
                        );
                    }
                    FaultKind::Interrupt => {}
                }
            }
        }
    }
}

/// Chaos runs are reproducible: the same seed yields the same verdict,
/// run after run (single-threaded, so the fault countdown is exact).
#[test]
fn chaos_runs_are_deterministic() {
    let benchmark = &small_suite()[0];
    for seed in [1u64, 7, 23] {
        let chaos = || {
            options()
                .with_threads(1)
                .with_faults(FaultPlan::seeded(seed))
        };
        let reference = Engine::ItpSeq.verify(&benchmark.aig, 0, &chaos()).verdict;
        for run in 0..2 {
            let again = Engine::ItpSeq.verify(&benchmark.aig, 0, &chaos()).verdict;
            assert_eq!(reference, again, "seed {seed} run {run}");
        }
    }
}

/// A panic inside a parallel-PDR pool worker is replayed sequentially:
/// whenever the pool contained the fault, the verdict is the one the
/// unfaulted single-threaded run produces.
#[test]
fn pdr_pool_fault_keeps_verdicts_thread_count_invariant() {
    let benchmark = &small_suite()[0];
    let clean = Engine::Pdr
        .verify(&benchmark.aig, 0, &options().with_threads(1))
        .verdict;
    let parallel = Engine::Pdr
        .verify(&benchmark.aig, 0, &options().with_threads(4))
        .verdict;
    assert_eq!(clean, parallel, "parallel PDR must match sequential PDR");
    for at in [1u64, 5, 20] {
        let chaos = options().with_threads(4).with_faults(FaultPlan::inject(
            FaultSite::Conflict,
            FaultKind::Panic,
            at,
        ));
        let result = Engine::Pdr.verify(&benchmark.aig, 0, &chaos);
        match &result.verdict {
            // The fault fired outside the pool: contained at the
            // dispatch boundary, reported as a panic.
            Verdict::Inconclusive {
                reason: StopReason::Panic(_),
                ..
            } => assert!(result.stats.panics_contained >= 1, "at={at}"),
            verdict => assert_eq!(verdict, &clean, "at={at}"),
        }
        if result.stats.pool_seq_reruns > 0 {
            assert_eq!(
                result.verdict, clean,
                "at={at}: a pool-contained fault must not cost the verdict"
            );
        }
    }
}

/// Faults in the multi-property scheduler (COI groups racing multi-PDR
/// against multi-BMC) degrade statuses, never flip them.
#[test]
fn multi_property_chaos_never_flips_statuses() {
    let aig = itpseq::workloads::counter::modular_multi(4, 10, &[3, 11, 7, 15]);
    let clean = Engine::Portfolio.verify_all(&aig, &options());
    for seed in 0..4u64 {
        let chaos = options().with_faults(FaultPlan::seeded(seed));
        let faulted = Engine::Portfolio.verify_all(&aig, &chaos);
        for (i, (reference, status)) in clean.statuses.iter().zip(&faulted.statuses).enumerate() {
            if status.is_conclusive() {
                assert_eq!(
                    reference.kind_and_depth(),
                    status.kind_and_depth(),
                    "property {i} seed {seed}"
                );
            }
        }
    }
}

/// An industrial run under a starved memory budget terminates with the
/// `memlimit` reason — surfaced exactly like a timeout, plus the hit
/// counter in the stats.
#[test]
fn memory_limited_run_stops_with_memlimit_reason() {
    let benchmark = itpseq::workloads::suite::industrial()
        .into_iter()
        .next()
        .expect("industrial suite is not empty");
    let starved = options()
        .with_timeout(Duration::from_secs(60))
        .with_memory_limit(1 << 16);
    let result = Engine::ItpSeq.verify(&benchmark.aig, 0, &starved);
    match &result.verdict {
        Verdict::Inconclusive {
            reason: StopReason::MemLimit,
            ..
        } => {}
        other => panic!("expected a memlimit stop, got {other}"),
    }
    assert!(
        result.stats.memlimit_hits >= 1,
        "the hit must be observable in the stats"
    );
}

/// Full-suite chaos sweep — the CI chaos job's release-mode workload.
#[test]
#[ignore = "full chaos sweep; CI's chaos job runs this in release mode"]
fn full_suite_chaos_sweep() {
    let mut fired = 0u64;
    for benchmark in &itpseq::workloads::suite::full() {
        for engine in ENGINES {
            let clean = engine.verify(&benchmark.aig, 0, &options()).verdict;
            for seed in 0..4u64 {
                let chaos = options().with_faults(FaultPlan::seeded(seed));
                let result = engine.verify(&benchmark.aig, 0, &chaos);
                let context = format!("{} / {} / seed {seed}", benchmark.name, engine.name());
                assert_sound(&context, &clean, &result);
                fired += result.stats.faults_injected;
            }
        }
    }
    assert!(fired > 0, "the sweep must land at least one fault");
}
