//! Property-directed reachability (IC3/PDR).
//!
//! PDR is the post-2011 competitor to the paper's interpolation engines:
//! instead of extracting over-approximations from one monolithic BMC
//! refutation, it maintains a *trace* of frames `F_0 = I ⊆ F_1 ⊆ … ⊆ F_k`
//! (each an over-approximation of the states reachable in that many
//! steps, represented by learned clauses over the latches) and refines it
//! with thousands of small one-step relative-induction queries:
//!
//! * `frames` — the delta-encoded frame trace and the cube algebra,
//! * `obligations` — the priority queue of proof obligations driving
//!   the blocking phase,
//! * `generalize` — cube generalization by assumption-core shrinking
//!   plus CTG-style literal dropping,
//! * this module — the top-level loop: bad-state extraction at the
//!   frontier, obligation processing, clause propagation and fixpoint
//!   detection.
//!
//! The SAT side uses one [`IncrementalSolver`] per frame (each loaded
//! with the shared two-frame transition template) and activation-literal
//! clause retirement for the temporary `¬cube` clauses of the queries.
//!
//! Obligations are *not* re-enqueued at higher frames after being
//! blocked, so every obligation chain satisfies `frame + depth = level`
//! and a chain reaching frame 0 is a counterexample of exactly `level`
//! transitions.  Combined with the level-by-level outer loop this makes
//! reported counterexample depths minimal, matching BMC and exact BDD
//! reachability.
//!
//! # Concurrency
//!
//! With [`Options::threads`] above 1, the two embarrassingly parallel
//! parts of a PDR iteration are farmed out to worker threads:
//!
//! * **propagation** — the per-frame push queries of one frame all run
//!   against a read-only snapshot of that frame's solver, so they are
//!   answered on cloned solvers in parallel and merged back *in cube
//!   order*;
//! * **generalization** — the literal-drop candidates of one lemma are
//!   screened in parallel, each on its own pristine clone of the
//!   predecessor frame's solver, and the first (lowest-index) successful
//!   drop is adopted.
//!
//! Both merges depend only on item order and every query is answered
//! from a state independent of chunk boundaries, so *within the parallel
//! mode* results are bit-identical for every thread count above 1 —
//! parallelism changes wall-clock time, not answers.  Between the
//! sequential mode (`threads == 1`, CTG-aware generalization) and the
//! parallel mode (CTG-free screening) the learned *lemmas* can differ,
//! so the convergence bookkeeping (`k_fp`, `j_fp`) may shift; verdict
//! kinds and counterexample depths still always agree, because both are
//! semantic facts — soundness fixes which properties prove, and depths
//! are structurally minimal (they come from the obligation bookkeeping,
//! not from SAT models).
//!
//! All loops also poll a [`CancelToken`], making the engine a portfolio
//! citizen: a cancelled run stops within one bounded SAT query and
//! reports [`Verdict::Inconclusive`] with reason `"cancelled"`.

mod frames;
mod generalize;
mod obligations;

use crate::certificate::{Certificate, InvariantCert};
use crate::engines::{pool, CancelToken, EngineProbe, RunBudget};
use crate::multi::{RetireBoard, StatusSlots};
use crate::{EngineResult, EngineStats, MultiResult, Options, PropertyStatus, Verdict};
use aig::Aig;
use cnf::{Cnf, Lit, Unroller};
use frames::{Cube, FrameTrace};
use obligations::{Obligation, ObligationQueue};
use sat::{IncrementalSolver, SolveResult};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use telemetry::ArgValue;

/// Minimum number of per-frame queries before the engine bothers cloning
/// solvers for a parallel pass.
const PAR_MIN_ITEMS: usize = 4;

/// Runs PDR on bad-state property `bad_index` of `aig`.
pub fn verify(aig: &Aig, bad_index: usize, options: &Options) -> EngineResult {
    verify_with_cancel(aig, bad_index, options, &CancelToken::new())
}

/// [`verify`] under a cancellation token: the outer loop, the blocking
/// phase, propagation, generalization and every SAT query stop soon after
/// the token is cancelled or the wall-clock budget runs out (the deadline
/// reaches the solvers through the same interrupt flag).
pub fn verify_with_cancel(
    aig: &Aig,
    bad_index: usize,
    options: &Options,
    cancel: &CancelToken,
) -> EngineResult {
    let start = Instant::now();
    let telemetry = &options.telemetry;
    let _run = telemetry.span_args("PDR.run", || {
        vec![("latches", ArgValue::U64(aig.num_latches() as u64))]
    });
    let mut stats = EngineStats {
        visible_latches: aig.num_latches(),
        ..EngineStats::default()
    };
    let budget = RunBudget::arm(cancel, start, options);
    if let Some((verdict, certificate)) =
        crate::engines::bmc::depth0_verdict(aig, bad_index, &budget, &mut stats, options)
    {
        telemetry.instant_args("verdict", || {
            vec![("verdict", ArgValue::Str(verdict.to_string()))]
        });
        stats.time = start.elapsed();
        return EngineResult {
            verdict,
            stats,
            certificate,
        };
    }
    Pdr::new(aig, &[bad_index], options, start, stats, &budget).run()
}

/// Amortized multi-property PDR: one frame trace and one per-frame solver
/// family serve every property in `props` (see [`crate::multi`]).
///
/// Frame lemmas are facts about *reachability*, not about any particular
/// property, so cubes blocked while working on one property remain valid
/// for all the others; the shared transition template carries every
/// property's bad cone at frame 0.  The outer loop is the standard
/// level-by-level major loop, with each level's blocking phase run once
/// per live property (in index order):
///
/// * an obligation chain reaching frame 0 falsifies exactly that property
///   at the level's (structurally minimal) depth and retires it — its
///   blocked cubes stay behind for the survivors;
/// * a converged frame after a level in which every live property's
///   frontier was cleaned is an inductive invariant excluding all of
///   their bad states: every surviving property is proved at once.
///
/// With a [`RetireBoard`], conclusive statuses are published and
/// externally-decided properties are dropped from the live set (the
/// scheduler's per-property cancellation).
pub(crate) fn verify_all_with_cancel(
    aig: &Aig,
    props: &[usize],
    options: &Options,
    cancel: &CancelToken,
    board: Option<&RetireBoard>,
) -> MultiResult {
    let start = Instant::now();
    let telemetry = &options.telemetry;
    let _run = telemetry.span_args("PDR.multi", || {
        vec![
            ("props", ArgValue::U64(props.len() as u64)),
            ("latches", ArgValue::U64(aig.num_latches() as u64)),
        ]
    });
    let stats = EngineStats {
        visible_latches: aig.num_latches(),
        ..EngineStats::default()
    };
    let budget = RunBudget::arm(cancel, start, options);
    let mut statuses = StatusSlots::new(props.len(), board, telemetry.clone());
    let mut pdr = Pdr::new(aig, props, options, start, stats, &budget);

    let finish = |mut pdr: Pdr<'_>, statuses: StatusSlots<'_>| {
        pdr.stats.time = start.elapsed();
        MultiResult {
            statuses: statuses.into_statuses(),
            stats: pdr.stats,
        }
    };

    // Depth 0 per property, answered by the init solver (`I ∧ T` plus
    // every bad cone): equisatisfiable with the per-property check.
    for i in 0..props.len() {
        if statuses.yield_if_retired(i, 0) {
            continue;
        }
        let bad0 = pdr.bads0[i];
        let result = Pdr::solve_on(&mut pdr.solvers[0], &mut pdr.stats, &[bad0]);
        match result {
            SolveResult::Sat => {
                // The init solver's model fixes the frame-0 inputs that
                // fire the bad cone from the (unique) initial state: a
                // one-frame replayable trace.
                let cex = options
                    .certificates
                    .then(|| vec![pdr.model_input_values(0)]);
                statuses.decide(i, PropertyStatus::Falsified { depth: 0, cex });
            }
            SolveResult::Unsat => {}
            SolveResult::Interrupted => {
                statuses.give_up(budget.interrupt_reason(), 0);
                return finish(pdr, statuses);
            }
        }
    }

    for level in 1..=options.max_bound {
        let _level = telemetry.span_args("level", || vec![("k", ArgValue::U64(level as u64))]);
        pdr.probe.set_bound(level);
        statuses.sync_board(level - 1);
        let live = statuses.live();
        if live.is_empty() {
            return finish(pdr, statuses);
        }
        pdr.extend();
        for i in live {
            // A property the other backend decided mid-level is recorded
            // as yielded, so the convergence sweep below can never
            // misreport it as proved — its frontier was not cleaned.
            if statuses.yield_if_retired(i, level - 1) {
                continue;
            }
            match pdr.blocking_phase(i) {
                Phase::Falsified { depth, trace } => {
                    statuses.decide(i, PropertyStatus::Falsified { depth, cex: trace });
                }
                Phase::Stopped => {
                    statuses.give_up(pdr.stop_reason(), level - 1);
                    return finish(pdr, statuses);
                }
                Phase::Done => {}
            }
        }
        if statuses.all_decided() {
            return finish(pdr, statuses);
        }
        if let Some(frame) = pdr.propagate() {
            // The converged frame is inductive and clean of every still-
            // undecided property's bad states (their blocking phases all
            // completed this level): every survivor is proved at once,
            // and one shared invariant certificate covers them all.
            let cert = options.certificates.then(|| {
                let _emit = telemetry.span("certificate.emit");
                pdr.invariant(frame)
            });
            let cert = cert.map(|mut inv| {
                pdr.stats.cert_clauses_subsumed += inv.compress() as u64;
                Arc::new(inv)
            });
            for i in statuses.live() {
                statuses.decide(
                    i,
                    PropertyStatus::Proved {
                        k_fp: level,
                        j_fp: frame,
                        cert: cert.clone(),
                    },
                );
            }
            return finish(pdr, statuses);
        }
        if pdr.stopped() {
            statuses.give_up(pdr.stop_reason(), level);
            return finish(pdr, statuses);
        }
    }
    statuses.give_up(crate::types::StopReason::BoundExhausted, options.max_bound);
    finish(pdr, statuses)
}

/// Outcome of one relative-induction query.
enum Query {
    /// The cube is unreachable from the previous frame; the payload is the
    /// assumption-core-shrunk (and initiation-repaired) sub-cube.
    Blocked(Cube),
    /// The cube has a predecessor in the previous frame; the payloads are
    /// the lifted predecessor cube and the input values under which it
    /// steps into the blocked cube (one entry of the obligation chain's
    /// replayable trace).
    Predecessor(Cube, Vec<bool>),
    /// The query was interrupted by cancellation before an answer.
    Cancelled,
}

/// Outcome of one level's blocking phase.
enum Phase {
    /// Every bad state at the frontier was blocked.
    Done,
    /// A proof obligation reached frame 0: counterexample of this depth,
    /// with the obligation chain replayed into an input trace (when
    /// certificates are enabled).
    Falsified {
        depth: usize,
        trace: Option<Vec<Vec<bool>>>,
    },
    /// The time budget ran out or the run was cancelled.
    Stopped,
}

/// The PDR engine state shared by the loop and the generalization module.
struct Pdr<'a> {
    options: &'a Options,
    start: Instant,
    stats: EngineStats,
    budget: &'a RunBudget,
    /// Worker threads for the parallel frame phases (1 = sequential).
    threads: usize,
    /// The (unique) initial state, one value per latch.
    init: Vec<bool>,
    /// Two-frame transition template `T(V⁰, V¹)` with the bad cone at
    /// frame 0, shared by every per-frame solver.
    template: Cnf,
    /// Latch variables of frame 0 / frame 1 of the template.
    latch0: Vec<Lit>,
    latch1: Vec<Lit>,
    /// Primary-input variables of frame 0.
    input0: Vec<Lit>,
    /// The bad literals at frame 0, one per verified property (a single
    /// property for [`verify`], the whole group for `verify_all`).
    bads0: Vec<Lit>,
    latch_of_var0: HashMap<u32, usize>,
    latch_of_var1: HashMap<u32, usize>,
    /// `solvers[i]` decides queries against `F_i ∧ T`; `solvers[0]` is
    /// `I ∧ T` exactly.
    solvers: Vec<IncrementalSolver>,
    /// Lifting solver: the bare template, queried only under assumptions
    /// and retirable clauses.
    lift: IncrementalSolver,
    frames: FrameTrace,
    obligations: ObligationQueue,
    /// Number of design latches (for invariant certificates).
    num_latches: usize,
    /// Progress publisher shared by every solver of the run; the major
    /// loop keeps its current level in it.
    probe: EngineProbe,
    /// Path arena for counterexample reconstruction: one
    /// `(inputs, successor)` entry per discovered predecessor, indexed by
    /// [`Obligation::path`].  Cleared with each new obligation root.
    paths: Vec<(Vec<bool>, Option<u32>)>,
}

impl<'a> Pdr<'a> {
    fn new(
        aig: &'a Aig,
        bad_indices: &[usize],
        options: &'a Options,
        start: Instant,
        stats: EngineStats,
        budget: &'a RunBudget,
    ) -> Pdr<'a> {
        let mut unroller = Unroller::new(aig);
        for input in 0..aig.num_inputs() {
            let _ = unroller.input_lit(0, input);
        }
        let bads0: Vec<Lit> = bad_indices
            .iter()
            .map(|&bad_index| unroller.bad_lit(0, bad_index))
            .collect();
        unroller.add_frame();
        let latch0 = unroller.latch_lits(0);
        let latch1 = unroller.latch_lits(1);
        let input0: Vec<Lit> = (0..aig.num_inputs())
            .map(|input| unroller.input_lit(0, input))
            .collect();
        let template = unroller.into_cnf();

        let latch_of_var0 = latch0
            .iter()
            .enumerate()
            .map(|(latch, lit)| (lit.var().index(), latch))
            .collect();
        let latch_of_var1 = latch1
            .iter()
            .enumerate()
            .map(|(latch, lit)| (lit.var().index(), latch))
            .collect();

        let probe = EngineProbe::new(&options.telemetry, options.probe_interval);
        let init: Vec<bool> = (0..aig.num_latches()).map(|l| aig.init(l)).collect();
        let mut init_solver = IncrementalSolver::with_base(&template);
        init_solver.set_reduce_interval(options.reduce_interval());
        budget.govern_incremental(&mut init_solver);
        init_solver.set_progress_probe(probe.probe());
        for (latch, &value) in init.iter().enumerate() {
            let lit = if value { latch0[latch] } else { !latch0[latch] };
            init_solver.add_clause([lit]);
        }
        let mut lift = IncrementalSolver::with_base(&template);
        lift.set_reduce_interval(options.reduce_interval());
        budget.govern_incremental(&mut lift);
        lift.set_progress_probe(probe.probe());

        Pdr {
            options,
            start,
            stats,
            budget,
            threads: options.effective_threads().max(1),
            init,
            template,
            latch0,
            latch1,
            input0,
            bads0,
            latch_of_var0,
            latch_of_var1,
            solvers: vec![init_solver],
            lift,
            frames: FrameTrace::new(),
            obligations: ObligationQueue::new(),
            num_latches: aig.num_latches(),
            probe,
            paths: Vec::new(),
        }
    }

    /// The standard IC3 major loop: extend the trace one frame, block
    /// every frontier bad state, propagate clauses forward, detect the
    /// fixpoint.
    fn run(mut self) -> EngineResult {
        for level in 1..=self.options.max_bound {
            let _level = self
                .options
                .telemetry
                .span_args("level", || vec![("k", ArgValue::U64(level as u64))]);
            self.probe.set_bound(level);
            self.extend();
            match self.blocking_phase(0) {
                Phase::Falsified { depth, trace } => {
                    return self
                        .finish(Verdict::Falsified { depth }, trace.map(Certificate::Trace));
                }
                Phase::Stopped => {
                    let reason = self.stop_reason();
                    return self.finish(
                        Verdict::Inconclusive {
                            reason,
                            bound_reached: level - 1,
                        },
                        None,
                    );
                }
                Phase::Done => {}
            }
            if let Some(frame) = self.propagate() {
                let certificate = self.options.certificates.then(|| {
                    let _emit = self.options.telemetry.span("certificate.emit");
                    self.invariant(frame)
                });
                let certificate = certificate.map(|mut inv| {
                    self.stats.cert_clauses_subsumed += inv.compress() as u64;
                    Certificate::Invariant(inv)
                });
                return self.finish(
                    Verdict::Proved {
                        k_fp: level,
                        j_fp: frame,
                    },
                    certificate,
                );
            }
            if self.stopped() {
                let reason = self.stop_reason();
                return self.finish(
                    Verdict::Inconclusive {
                        reason,
                        bound_reached: level,
                    },
                    None,
                );
            }
        }
        let bound_reached = self.options.max_bound;
        self.finish(
            Verdict::Inconclusive {
                reason: crate::types::StopReason::BoundExhausted,
                bound_reached,
            },
            None,
        )
    }

    fn finish(mut self, verdict: Verdict, certificate: Option<Certificate>) -> EngineResult {
        self.options.telemetry.instant_args("verdict", || {
            vec![("verdict", ArgValue::Str(verdict.to_string()))]
        });
        self.stats.time = self.start.elapsed();
        EngineResult {
            verdict,
            stats: self.stats,
            certificate,
        }
    }

    /// Exports the converged frame `F_frame` as an inductive-invariant
    /// certificate: the conjunction of its lemma clauses.  Soundness:
    /// every lemma excludes the (unique) initial state, so `init ⊆ Inv`;
    /// at the fixpoint `F_frame = F_{frame+1} ⊇ Image(F_frame)`, so `Inv`
    /// is inductive; and `frame ≤ level` with every live property's
    /// frontier cleaned this level makes `Inv ∧ bad` unsatisfiable.
    fn invariant(&self, frame: usize) -> InvariantCert {
        InvariantCert {
            num_latches: self.num_latches,
            clauses: self.frames.invariant_clauses(frame),
            cone: None,
        }
    }

    /// Returns `true` when the engine must stop: the time budget ran out
    /// or the supervisor cancelled the run.
    fn stopped(&self) -> bool {
        self.budget.stop_reason().is_some()
    }

    /// The reason to report for a stop, cancellation taking precedence.
    fn stop_reason(&self) -> crate::types::StopReason {
        self.budget
            .stop_reason()
            .unwrap_or(crate::types::StopReason::Timeout)
    }

    /// Opens frame `k`: a fresh unconstrained frontier with its own solver.
    fn extend(&mut self) {
        self.frames.push_frame();
        self.options.telemetry.instant_args("extend", || {
            vec![("frames", ArgValue::U64(self.frames.level() as u64 + 1))]
        });
        let mut solver = IncrementalSolver::with_base(&self.template);
        solver.set_reduce_interval(self.options.reduce_interval());
        self.budget.govern_incremental(&mut solver);
        solver.set_progress_probe(self.probe.probe());
        self.solvers.push(solver);
    }

    /// Blocks frontier bad states of property `prop` until none remain
    /// (or a counterexample or timeout surfaces).
    fn blocking_phase(&mut self, prop: usize) -> Phase {
        let level = self.frames.level();
        let _blocking = self.options.telemetry.span_args("blocking", || {
            vec![
                ("k", ArgValue::U64(level as u64)),
                ("prop", ArgValue::U64(prop as u64)),
            ]
        });
        let mut obligations_processed = 0u64;
        let report = |telemetry: &telemetry::Telemetry, processed: u64| {
            if processed > 0 {
                telemetry.counter("obligations", || {
                    vec![("processed", ArgValue::U64(processed))]
                });
            }
        };
        loop {
            if self.stopped() {
                report(&self.options.telemetry, obligations_processed);
                return Phase::Stopped;
            }
            let Some((bad, path)) = self.get_bad(prop) else {
                // `None` also covers an interrupted query: distinguish a
                // clean "no bad states" from a cancelled probe.
                report(&self.options.telemetry, obligations_processed);
                if self.stopped() {
                    return Phase::Stopped;
                }
                return Phase::Done;
            };
            self.obligations.clear();
            self.obligations.push(Obligation {
                frame: level,
                depth: 0,
                cube: bad,
                path,
            });
            while let Some(obligation) = self.obligations.pop() {
                obligations_processed += 1;
                if self.stopped() {
                    report(&self.options.telemetry, obligations_processed);
                    return Phase::Stopped;
                }
                if obligation.frame == 0 {
                    // Without push-forward every chain satisfies
                    // `frame + depth = level`, which is what makes the
                    // reported depths minimal; a forwarded chain reaches
                    // frame 0 with a real but possibly longer depth.
                    debug_assert!(self.options.push_obligations || obligation.depth == level);
                    report(&self.options.telemetry, obligations_processed);
                    let trace = self
                        .options
                        .certificates
                        .then(|| self.reconstruct_trace(obligation.path));
                    return Phase::Falsified {
                        depth: obligation.depth,
                        trace,
                    };
                }
                match self.relative_induction(obligation.frame, &obligation.cube) {
                    Query::Blocked(core) => {
                        let lemma = generalize::generalize(self, obligation.frame, core);
                        self.add_lemma(obligation.frame, lemma);
                        // Push-forward: the cube's states stay `depth`
                        // transitions from bad, so re-examining it one
                        // frame later eagerly strengthens the trace.
                        if self.options.push_obligations && obligation.frame < level {
                            self.obligations.push(Obligation {
                                frame: obligation.frame + 1,
                                depth: obligation.depth,
                                cube: obligation.cube,
                                path: obligation.path,
                            });
                        }
                    }
                    Query::Predecessor(cube, inputs) => {
                        let path = self.push_path(inputs, Some(obligation.path));
                        let child = Obligation {
                            frame: obligation.frame - 1,
                            depth: obligation.depth + 1,
                            cube,
                            path,
                        };
                        self.obligations.push(obligation);
                        self.obligations.push(child);
                    }
                    Query::Cancelled => {
                        report(&self.options.telemetry, obligations_processed);
                        return Phase::Stopped;
                    }
                }
            }
            debug_assert!(self.obligations.is_empty());
        }
    }

    /// Returns a (lifted) frontier state that exhibits property `prop`'s
    /// bad cone together with its path-arena root entry, or `None` when
    /// `F_k ∧ bad` is unsatisfiable.
    fn get_bad(&mut self, prop: usize) -> Option<(Cube, u32)> {
        let level = self.frames.level();
        let bad0 = self.bads0[prop];
        let result = Self::solve_on(&mut self.solvers[level], &mut self.stats, &[bad0]);
        if result != SolveResult::Sat {
            // Unsat: the frontier is clean.  Interrupted: the caller
            // re-checks `stopped` and winds down.
            return None;
        }
        let (state, inputs) = self.model_state_and_inputs(level);
        // Root of this round's obligation chains: the inputs that fire
        // the bad cone from the frontier state.  The arena only ever
        // holds entries of the current root's chains.
        self.paths.clear();
        let path = self.push_path(self.input_values_of(&inputs), None);
        // Lift: with the inputs fixed, which part of the state forces bad?
        let mut assumptions = inputs;
        assumptions.push(!bad0);
        assumptions.extend_from_slice(&state);
        let lifted = Self::solve_on(&mut self.lift, &mut self.stats, &assumptions);
        if lifted == SolveResult::Interrupted {
            return None;
        }
        let cube = if lifted == SolveResult::Unsat {
            // When the bad cone is a bare latch literal, `¬bad0` aliases a
            // state variable and shows up in the core next to the opposite
            // state literal — drop it before reading the core as a cube.
            let core: Vec<Lit> = self
                .lift
                .assumption_core()
                .into_iter()
                .filter(|&lit| lit != !bad0)
                .collect();
            self.cube_from_core0(&core)
        } else {
            debug_assert!(false, "a total assignment must decide the bad cone");
            Cube::new(Vec::new())
        };
        Some(if cube.is_empty() {
            (self.cube_from_state_lits(&state), path)
        } else {
            (cube, path)
        })
    }

    /// The one-step relative-induction query
    /// `SAT?[F_{frame-1} ∧ ¬cube ∧ T ∧ cube′]`.
    fn relative_induction(&mut self, frame: usize, cube: &Cube) -> Query {
        debug_assert!(frame >= 1 && frame <= self.frames.level());
        let clause: Vec<Lit> = cube
            .iter()
            .map(|(latch, value)| !Self::state_lit(&self.latch0, latch, value))
            .collect();
        let assumptions: Vec<Lit> = cube
            .iter()
            .map(|(latch, value)| Self::state_lit(&self.latch1, latch, value))
            .collect();
        let guard = self.solvers[frame - 1].add_retirable_clause(clause);
        let result = Self::solve_on(&mut self.solvers[frame - 1], &mut self.stats, &assumptions);
        match result {
            SolveResult::Unsat => {
                let core = self.solvers[frame - 1].assumption_core();
                self.solvers[frame - 1].retire(guard);
                let mut seed = self.cube_from_core1(&core);
                if seed.is_empty() {
                    seed = cube.clone();
                }
                Query::Blocked(self.repair_initiation(seed, cube))
            }
            SolveResult::Sat => {
                let (state, inputs) = self.model_state_and_inputs(frame - 1);
                self.solvers[frame - 1].retire(guard);
                let values = self.input_values_of(&inputs);
                Query::Predecessor(self.lift_predecessor(state, inputs, cube), values)
            }
            SolveResult::Interrupted => {
                self.solvers[frame - 1].retire(guard);
                Query::Cancelled
            }
        }
    }

    /// Shrinks a concrete predecessor (state + inputs) to the sub-cube
    /// that is forced to step into `successor` under those inputs.
    fn lift_predecessor(&mut self, state: Vec<Lit>, inputs: Vec<Lit>, successor: &Cube) -> Cube {
        let blocking: Vec<Lit> = successor
            .iter()
            .map(|(latch, value)| !Self::state_lit(&self.latch1, latch, value))
            .collect();
        let guard = self.lift.add_retirable_clause(blocking);
        let mut assumptions = inputs;
        assumptions.extend_from_slice(&state);
        let result = Self::solve_on(&mut self.lift, &mut self.stats, &assumptions);
        let cube = if result == SolveResult::Unsat {
            self.cube_from_core0(&self.lift.assumption_core())
        } else {
            // Interrupted lifts fall back to the full (sound) predecessor;
            // a genuine Sat answer would contradict totality.
            debug_assert!(
                result == SolveResult::Interrupted,
                "a total assignment determines its successor"
            );
            Cube::new(Vec::new())
        };
        self.lift.retire(guard);
        if cube.is_empty() {
            self.cube_from_state_lits(&state)
        } else {
            cube
        }
    }

    /// Pushes every lemma that also holds one frame later; returns the
    /// converged frame when the trace reaches a fixpoint.
    ///
    /// The push queries of one frame are mutually independent — they only
    /// *read* `solvers[frame]` (lemmas move into `frame + 1`) — so with
    /// `threads > 1` they are answered on cloned solvers in parallel.
    /// Results are merged in cube order, which reproduces the sequential
    /// pass exactly: whether a query is answered by the original solver or
    /// a clone cannot change its Sat/Unsat answer, only its running time.
    fn propagate(&mut self) -> Option<usize> {
        let level = self.frames.level();
        let _propagate = self
            .options
            .telemetry
            .span_args("propagate", || vec![("k", ArgValue::U64(level as u64))]);
        for frame in 1..level {
            let cubes = self.frames.take_frame(frame);
            let outcomes = self.push_queries(frame, &cubes);
            let mut interrupted = false;
            for (index, cube) in cubes.into_iter().enumerate() {
                let outcome = outcomes.get(index).copied();
                if outcome == Some(SolveResult::Unsat) && !interrupted {
                    if self.frames.add(frame + 1, cube.clone()) {
                        self.add_lemma_clause(frame + 1, &cube);
                    }
                } else {
                    // Sat answers stay put; interrupted or unissued
                    // queries must be restored so no lemma is ever lost
                    // (a lost lemma could fake frame convergence).
                    if outcome != Some(SolveResult::Sat) {
                        interrupted = true;
                    }
                    self.frames.restore(frame, cube);
                }
            }
            if interrupted {
                return None;
            }
            if self.frames.frame_converged(frame) {
                return Some(frame);
            }
            if self.stopped() {
                return None;
            }
        }
        None
    }

    /// Answers the push queries `SAT?[F_frame ∧ T ∧ cube′]` for all cubes
    /// of one frame, sequentially or chunked across worker threads.
    fn push_queries(&mut self, frame: usize, cubes: &[Cube]) -> Vec<SolveResult> {
        let assumption_sets: Vec<Vec<Lit>> = cubes
            .iter()
            .map(|cube| {
                cube.iter()
                    .map(|(latch, value)| Self::state_lit(&self.latch1, latch, value))
                    .collect()
            })
            .collect();
        if self.threads > 1 && cubes.len() >= PAR_MIN_ITEMS {
            let solver = &self.solvers[frame];
            let (answers, reruns): (Vec<(SolveResult, sat::SolverStats)>, u64) = pool::map_chunked(
                &assumption_sets,
                self.threads,
                || solver.clone(),
                |worker, assumptions| {
                    let before = worker.stats();
                    let result = worker.solve(assumptions);
                    (result, worker.stats() - before)
                },
            );
            self.record_pool_reruns(reruns);
            for &(_, delta) in &answers {
                self.stats.sat_calls += 1;
                self.stats.add_solver_delta(delta);
            }
            answers.into_iter().map(|(result, _)| result).collect()
        } else {
            let mut results = Vec::with_capacity(assumption_sets.len());
            for assumptions in &assumption_sets {
                let result = Self::solve_on(&mut self.solvers[frame], &mut self.stats, assumptions);
                let done = result == SolveResult::Interrupted;
                results.push(result);
                if done {
                    // The caller restores the unqueried remainder.
                    break;
                }
            }
            results
        }
    }

    /// Screens generalization candidates concurrently: every candidate's
    /// relative-induction query `SAT?[F_{frame-1} ∧ ¬cand ∧ T ∧ cand′]`
    /// runs on its own clone of `solvers[frame - 1]`, and a blocked
    /// candidate yields its core-shrunk, initiation-repaired sub-cube.
    ///
    /// Candidates that are empty or contain the initial state screen as
    /// `None` without a query.  Every clone starts from the same solver
    /// state, so the outcome vector is independent of the thread count.
    fn screen_drop_candidates(&mut self, frame: usize, candidates: &[Cube]) -> Vec<Option<Cube>> {
        // One screened candidate: the core-shrunk sub-cube (when the
        // query blocked), the solver-stat delta, and the interrupt bit.
        type Screened = (Option<Vec<Lit>>, sat::SolverStats, bool);
        debug_assert!(frame >= 1 && frame <= self.frames.level());
        let this = &*self;
        let solver = &this.solvers[frame - 1];
        let (answers, reruns): (Vec<Screened>, u64) = pool::map_chunked(
            candidates,
            this.threads,
            || solver,
            |base, candidate| {
                if candidate.is_empty() || candidate.contains_state(&this.init) {
                    return (None, sat::SolverStats::default(), false);
                }
                // Every candidate gets its own pristine clone: a shared
                // clone would accumulate the earlier candidates' live
                // `¬cand` clauses (IncrementalSolver::solve activates all
                // of them), poisoning later queries with non-lemmas and
                // making answers depend on chunk boundaries.  The clone is
                // dropped after one query, so nothing needs retiring.
                let mut worker = (*base).clone();
                let clause: Vec<Lit> = candidate
                    .iter()
                    .map(|(latch, value)| !Self::state_lit(&this.latch0, latch, value))
                    .collect();
                let assumptions: Vec<Lit> = candidate
                    .iter()
                    .map(|(latch, value)| Self::state_lit(&this.latch1, latch, value))
                    .collect();
                worker.add_retirable_clause(clause);
                let before = worker.stats();
                let result = worker.solve(&assumptions);
                let delta = worker.stats() - before;
                match result {
                    SolveResult::Unsat => (Some(worker.assumption_core()), delta, true),
                    SolveResult::Sat | SolveResult::Interrupted => (None, delta, true),
                }
            },
        );
        self.record_pool_reruns(reruns);
        let mut outcomes = Vec::with_capacity(candidates.len());
        for ((core, delta, queried), candidate) in answers.into_iter().zip(candidates) {
            if queried {
                self.stats.sat_calls += 1;
                self.stats.add_solver_delta(delta);
            }
            outcomes.push(core.map(|core| {
                let mut seed = self.cube_from_core1(&core);
                if seed.is_empty() {
                    seed = candidate.clone();
                }
                self.repair_initiation(seed, candidate)
            }));
        }
        outcomes
    }

    /// Books a degraded parallel pass: `reruns` chunks fell back to the
    /// deterministic sequential replay after a contained worker panic.
    fn record_pool_reruns(&mut self, reruns: u64) {
        if reruns > 0 {
            self.stats.pool_seq_reruns += reruns;
            self.options.telemetry.instant_args("degraded", || {
                vec![("pool_seq_reruns", ArgValue::U64(reruns))]
            });
        }
    }

    /// Records `¬cube` as a lemma of frames `1..=frame`.
    fn add_lemma(&mut self, frame: usize, cube: Cube) {
        debug_assert!(
            !cube.contains_state(&self.init),
            "lemmas must exclude the initial state"
        );
        if self.frames.add(frame, cube.clone()) {
            for f in 1..=frame {
                self.add_lemma_clause(f, &cube);
            }
        }
    }

    /// Installs the clause `¬cube` into one frame solver.
    fn add_lemma_clause(&mut self, frame: usize, cube: &Cube) {
        let clause: Vec<Lit> = cube
            .iter()
            .map(|(latch, value)| !Self::state_lit(&self.latch0, latch, value))
            .collect();
        self.solvers[frame].add_clause(clause);
    }

    /// Re-adds one initiation-separating literal when core shrinking made
    /// the cube contain the initial state.
    fn repair_initiation(&self, seed: Cube, full: &Cube) -> Cube {
        if !seed.contains_state(&self.init) {
            return seed;
        }
        for (latch, value) in full.iter() {
            if self.init[latch] != value {
                return seed.with(latch, value);
            }
        }
        debug_assert!(false, "obligation cubes never contain the initial state");
        full.clone()
    }

    fn state_lit(vars: &[Lit], latch: usize, value: bool) -> Lit {
        if value {
            vars[latch]
        } else {
            !vars[latch]
        }
    }

    /// Reads the frame-0 state and input literals of the model of the last
    /// satisfiable query on `solvers[index]`.
    fn model_state_and_inputs(&self, index: usize) -> (Vec<Lit>, Vec<Lit>) {
        let solver = &self.solvers[index];
        let state = self
            .latch0
            .iter()
            .map(|&lit| {
                if solver.lit_value(lit).unwrap_or(false) {
                    lit
                } else {
                    !lit
                }
            })
            .collect();
        let inputs = self
            .input0
            .iter()
            .map(|&lit| {
                if solver.lit_value(lit).unwrap_or(false) {
                    lit
                } else {
                    !lit
                }
            })
            .collect();
        (state, inputs)
    }

    /// Reads the frame-0 input values of the model of the last satisfiable
    /// query on `solvers[index]`.
    fn model_input_values(&self, index: usize) -> Vec<bool> {
        let solver = &self.solvers[index];
        self.input0
            .iter()
            .map(|&lit| solver.lit_value(lit).unwrap_or(false))
            .collect()
    }

    /// Decodes a model's input literals (as produced by
    /// [`Self::model_state_and_inputs`]) into plain boolean values.
    fn input_values_of(&self, inputs: &[Lit]) -> Vec<bool> {
        inputs
            .iter()
            .zip(&self.input0)
            .map(|(&lit, &var)| lit == var)
            .collect()
    }

    /// Appends one `(inputs, successor)` entry to the path arena.
    fn push_path(&mut self, inputs: Vec<bool>, parent: Option<u32>) -> u32 {
        let id = self.paths.len() as u32;
        self.paths.push((inputs, parent));
        id
    }

    /// Replays an obligation chain into an input trace.  A frame-0
    /// obligation's entry holds the inputs applied at the initial state
    /// (the lift guarantees any state in an obligation cube steps into
    /// the successor cube under the recorded inputs, and `solvers[0]`
    /// forces the initial state exactly), and each successor link moves
    /// one transition closer to the frontier — so the child→parent walk
    /// already yields time order: `depth + 1` input vectors whose replay
    /// exhibits the bad output at exactly the reported depth.
    fn reconstruct_trace(&self, path: u32) -> Vec<Vec<bool>> {
        let mut trace = Vec::new();
        let mut cursor = Some(path);
        while let Some(id) = cursor {
            let (inputs, parent) = &self.paths[id as usize];
            trace.push(inputs.clone());
            cursor = *parent;
        }
        trace
    }

    /// Converts a full frame-0 state assignment into a cube.
    fn cube_from_state_lits(&self, state: &[Lit]) -> Cube {
        Cube::new(
            state
                .iter()
                .map(|lit| {
                    let latch = self.latch_of_var0[&lit.var().index()];
                    (latch, lit.is_positive())
                })
                .collect(),
        )
    }

    /// Keeps the frame-0 latch literals of an assumption core as a cube.
    fn cube_from_core0(&self, core: &[Lit]) -> Cube {
        Cube::new(
            core.iter()
                .filter_map(|lit| {
                    self.latch_of_var0
                        .get(&lit.var().index())
                        .map(|&latch| (latch, lit.is_positive()))
                })
                .collect(),
        )
    }

    /// Keeps the frame-1 latch literals of an assumption core as a cube.
    fn cube_from_core1(&self, core: &[Lit]) -> Cube {
        Cube::new(
            core.iter()
                .filter_map(|lit| {
                    self.latch_of_var1
                        .get(&lit.var().index())
                        .map(|&latch| (latch, lit.is_positive()))
                })
                .collect(),
        )
    }

    fn solve_on(
        solver: &mut IncrementalSolver,
        stats: &mut EngineStats,
        assumptions: &[Lit],
    ) -> SolveResult {
        let before = solver.stats();
        let result = solver.solve(assumptions);
        stats.sat_calls += 1;
        stats.add_solver_delta(solver.stats() - before);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aig::builder::{latch_word, word_equals_const, word_increment, word_mux};
    use std::time::Duration;

    fn modular_counter(width: usize, modulus: u64, bad_at: u64) -> Aig {
        let mut aig = Aig::new();
        let (ids, bits) = latch_word(&mut aig, width, 0);
        let wrap = word_equals_const(&mut aig, &bits, modulus - 1);
        let inc = word_increment(&mut aig, &bits, aig::Lit::TRUE);
        let zero = aig::builder::word_const(width, 0);
        let next = word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        let bad = word_equals_const(&mut aig, &bits, bad_at);
        aig.add_bad(bad);
        aig
    }

    fn options() -> Options {
        Options::default()
            .with_timeout(Duration::from_secs(10))
            .with_max_bound(40)
    }

    #[test]
    fn proves_unreachable_counter_values() {
        let aig = modular_counter(3, 6, 7);
        let result = verify(&aig, 0, &options());
        assert!(result.verdict.is_proved(), "{}", result.verdict);
        assert!(result.stats.sat_calls > 0);
    }

    #[test]
    fn finds_minimal_counterexample_depths() {
        for bad_at in [1u64, 3, 5, 9] {
            let aig = modular_counter(4, 10, bad_at);
            let result = verify(&aig, 0, &options());
            assert_eq!(
                result.verdict,
                Verdict::Falsified {
                    depth: bad_at as usize
                },
                "bad_at = {bad_at}"
            );
        }
    }

    #[test]
    fn detects_depth_zero_violations() {
        let aig = modular_counter(3, 6, 0);
        let result = verify(&aig, 0, &options());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 0 });
    }

    #[test]
    fn respects_the_bound_budget() {
        // The bad value 30 needs 30 steps; a bound of 3 must give up.
        let aig = modular_counter(5, 32, 30);
        let result = verify(&aig, 0, &options().with_max_bound(3));
        assert!(matches!(
            result.verdict,
            Verdict::Inconclusive {
                bound_reached: 3,
                ..
            } | Verdict::Inconclusive {
                bound_reached: 2,
                ..
            }
        ));
    }

    #[test]
    fn handles_inputs_in_the_bad_cone() {
        // Bad = input ∧ latch; the latch turns on after one step.
        let mut aig = Aig::new();
        let trigger = aig::Lit::positive(aig.add_input());
        let armed = aig.add_latch(false);
        let armed_lit = aig.latch_lit(armed);
        aig.set_next(armed, aig::Lit::TRUE);
        let bad = aig.and(trigger, armed_lit);
        aig.add_bad(bad);
        let result = verify(&aig, 0, &options());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 1 });
    }

    #[test]
    fn proves_a_design_with_irrelevant_latches() {
        // A stuck-at-zero flag plus free-running noise latches: the lemma
        // generalization must discard the noise.
        let mut aig = Aig::new();
        let flag = aig.add_latch(false);
        let flag_lit = aig.latch_lit(flag);
        aig.set_next(flag, aig::Lit::FALSE);
        for _ in 0..8 {
            let noise_input = aig::Lit::positive(aig.add_input());
            let noise = aig.add_latch(false);
            aig.set_next(noise, noise_input);
        }
        aig.add_bad(flag_lit);
        let result = verify(&aig, 0, &options());
        assert!(result.verdict.is_proved(), "{}", result.verdict);
        // The parallel generalization screening must reach the same proof.
        let parallel = verify(&aig, 0, &options().with_threads(4));
        assert!(parallel.verdict.is_proved(), "{}", parallel.verdict);
    }

    #[test]
    fn parallel_frames_match_the_sequential_verdicts() {
        for (modulus, bad_at) in [(6u64, 7u64), (6, 3), (10, 9), (14, 15)] {
            let aig = modular_counter(4, modulus, bad_at);
            let sequential = verify(&aig, 0, &options());
            let parallel = verify(&aig, 0, &options().with_threads(4));
            assert_eq!(
                sequential.verdict.is_proved(),
                parallel.verdict.is_proved(),
                "modulus={modulus} bad_at={bad_at}: {} vs {}",
                sequential.verdict,
                parallel.verdict
            );
            if let Verdict::Falsified { depth } = sequential.verdict {
                assert_eq!(parallel.verdict, Verdict::Falsified { depth });
            }
        }
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        // Chunked merges are ordered, so repeated parallel runs (and runs
        // with different worker counts) must report identical verdicts.
        let aig = modular_counter(5, 20, 31);
        let reference = verify(&aig, 0, &options().with_threads(2));
        for threads in [2usize, 3, 8] {
            let again = verify(&aig, 0, &options().with_threads(threads));
            assert_eq!(reference.verdict, again.verdict, "threads = {threads}");
        }
    }

    #[test]
    fn push_forward_keeps_verdict_kinds() {
        // Options::push_obligations is an A/B switch: verdict kinds must
        // be identical on and off, and the default (off) reports minimal
        // counterexample depths.  A forwarded chain may witness a longer
        // (but still real) counterexample.
        for (modulus, bad_at) in [(6u64, 7u64), (6, 3), (10, 9), (14, 15), (14, 6)] {
            let aig = modular_counter(4, modulus, bad_at);
            let off = verify(&aig, 0, &options());
            let on = verify(&aig, 0, &options().with_push_obligations(true));
            assert_eq!(
                off.verdict.is_proved(),
                on.verdict.is_proved(),
                "modulus={modulus} bad_at={bad_at}: {} vs {}",
                off.verdict,
                on.verdict
            );
            if let Verdict::Falsified { depth: minimal } = off.verdict {
                assert_eq!(minimal, bad_at as usize, "off must stay minimal");
                match on.verdict {
                    Verdict::Falsified { depth } => assert!(
                        depth >= minimal,
                        "push-forward counterexamples are real, so never shorter"
                    ),
                    ref other => panic!("expected a counterexample, got {other}"),
                }
            }
        }
    }

    #[test]
    fn push_forward_default_is_off() {
        assert!(!Options::default().push_obligations);
        assert!(
            Options::default()
                .with_push_obligations(true)
                .push_obligations
        );
    }

    #[test]
    fn proved_runs_carry_a_checkable_invariant() {
        let aig = modular_counter(3, 6, 7);
        let result = verify(&aig, 0, &options());
        assert!(result.verdict.is_proved(), "{}", result.verdict);
        let Some(Certificate::Invariant(inv)) = &result.certificate else {
            panic!("proved PDR run must carry an invariant certificate");
        };
        assert_eq!(inv.num_latches, 3);
        let state = |v: u64| -> Vec<bool> { (0..3).map(|i| (v >> i) & 1 == 1).collect() };
        for v in 0..6 {
            assert!(inv.eval(&state(v)), "reachable state {v} must satisfy Inv");
        }
        assert!(!inv.eval(&state(7)), "the bad state must violate Inv");
        // The A/B switch: no certificate, same verdict.
        let off = verify(&aig, 0, &options().with_certificates(false));
        assert_eq!(off.verdict, result.verdict);
        assert_eq!(off.certificate, None);
    }

    #[test]
    fn counterexample_chains_replay_to_the_bad_state() {
        for bad_at in [1u64, 3, 5, 9] {
            let aig = modular_counter(4, 10, bad_at);
            let result = verify(&aig, 0, &options());
            let depth = bad_at as usize;
            assert_eq!(result.verdict, Verdict::Falsified { depth });
            let Some(Certificate::Trace(inputs)) = &result.certificate else {
                panic!("falsified PDR run must carry a trace certificate");
            };
            assert_eq!(inputs.len(), depth + 1, "bad_at = {bad_at}");
            let sim = aig::simulate(&aig, inputs);
            assert!(sim.bad[depth][0], "replay must hit bad at depth {depth}");
        }
    }

    #[test]
    fn obligation_chains_record_the_inputs() {
        // Bad = input ∧ latch: the replay only works if the chain kept the
        // model's input values (the trigger must be high in cycle 1).
        let mut aig = Aig::new();
        let trigger = aig::Lit::positive(aig.add_input());
        let armed = aig.add_latch(false);
        let armed_lit = aig.latch_lit(armed);
        aig.set_next(armed, aig::Lit::TRUE);
        let bad = aig.and(trigger, armed_lit);
        aig.add_bad(bad);
        let result = verify(&aig, 0, &options());
        assert_eq!(result.verdict, Verdict::Falsified { depth: 1 });
        let Some(Certificate::Trace(inputs)) = &result.certificate else {
            panic!("missing trace");
        };
        let sim = aig::simulate(&aig, inputs);
        assert!(sim.bad[1][0], "replay must hit the bad state at depth 1");
    }

    #[test]
    fn multi_pdr_shares_one_invariant_and_replays_every_trace() {
        // A mod-6 counter with four properties: two falsified (depth 0 and
        // depth 3) and two proved (values 6 and 7 are unreachable).
        let mut aig = modular_counter(3, 6, 0);
        let bits: Vec<aig::Lit> = (0..3).map(|l| aig.latch_lit(l)).collect();
        for value in [3u64, 6, 7] {
            let bad = word_equals_const(&mut aig, &bits, value);
            aig.add_bad(bad);
        }
        let result =
            verify_all_with_cancel(&aig, &[0, 1, 2, 3], &options(), &CancelToken::new(), None);
        let cert_of = |i: usize| match &result.statuses[i] {
            PropertyStatus::Proved { cert: Some(c), .. } => c.clone(),
            other => panic!("property {i} must be proved with a certificate, got {other:?}"),
        };
        for (i, depth) in [(0usize, 0usize), (1, 3)] {
            let PropertyStatus::Falsified {
                depth: d,
                cex: Some(inputs),
            } = &result.statuses[i]
            else {
                panic!(
                    "property {i} must be falsified with a trace, got {:?}",
                    result.statuses[i]
                );
            };
            assert_eq!(*d, depth);
            assert_eq!(inputs.len(), depth + 1);
            let sim = aig::simulate(&aig, inputs);
            assert!(
                sim.bad[depth][i],
                "property {i} must replay to depth {depth}"
            );
        }
        let (six, seven) = (cert_of(2), cert_of(3));
        assert!(
            std::sync::Arc::ptr_eq(&six, &seven),
            "survivors must share one invariant"
        );
        let state = |v: u64| -> Vec<bool> { (0..3).map(|i| (v >> i) & 1 == 1).collect() };
        for v in 0..6 {
            assert!(six.eval(&state(v)), "reachable state {v} must satisfy Inv");
        }
        assert!(!six.eval(&state(6)) && !six.eval(&state(7)));
    }

    #[test]
    fn cancellation_stops_the_run() {
        use crate::engines::CancelToken;
        let aig = modular_counter(5, 28, 27);
        let cancel = CancelToken::new();
        cancel.cancel();
        let result = verify_with_cancel(&aig, 0, &options(), &cancel);
        match result.verdict {
            Verdict::Inconclusive { ref reason, .. } => assert_eq!(reason, "cancelled"),
            ref other => panic!("cancelled run must be inconclusive, got {other}"),
        }
    }

    #[test]
    fn certificate_compression_shrinks_a_suite_invariant() {
        // The 5-bit mod-20 counter is the smallest suite design whose
        // converged PDR trace parks a weaker lemma above a stronger one,
        // so its invariant certificate genuinely loses clauses to the
        // subsumption pass before emission.
        let bench = workloads::counter::modular(5, 20, 31);
        let result = verify(
            &bench,
            0,
            &options()
                .with_timeout(std::time::Duration::from_secs(30))
                .with_max_bound(60),
        );
        assert!(result.verdict.is_proved(), "{}", result.verdict);
        assert!(
            result.stats.cert_clauses_subsumed > 0,
            "compression must drop at least one subsumed clause here"
        );
        let Some(Certificate::Invariant(inv)) = &result.certificate else {
            panic!("proved PDR run must carry an invariant certificate");
        };
        // The emitted certificate is fully compressed and still correct.
        assert_eq!(inv.clone().compress(), 0, "emission already compressed");
        let state = |v: u64| -> Vec<bool> { (0..5).map(|i| (v >> i) & 1 == 1).collect() };
        for v in 0..20 {
            assert!(inv.eval(&state(v)), "reachable state {v} must satisfy Inv");
        }
        assert!(!inv.eval(&state(31)), "the bad state must violate Inv");
    }
}
