//! Regenerates Table I: per-benchmark detail with #PI, #FF, the exact BDD
//! diameters (d_F, d_B) and Time / k_fp / j_fp for each engine.
//!
//! Run with `cargo run -p itpseq-bench --bin table1 --release`.

use itpseq_bench::{experiment_options, run_engine};
use mc::Engine;
use std::time::Instant;

fn main() {
    let suite = workloads::suite::full();
    let options = experiment_options();
    let engines = [
        Engine::Itp,
        Engine::ItpSeq,
        Engine::SerialItpSeq,
        Engine::ItpSeqCba,
        Engine::Pdr,
    ];

    println!("# Table I — ovf means budget exhausted, '-' means not available");
    println!(
        "{:<34} {:>4} {:>4} | {:>4} {:>7} {:>4} {:>7} | {}",
        "name",
        "#PI",
        "#FF",
        "dF",
        "TimeF",
        "dB",
        "TimeB",
        engines
            .iter()
            .map(|e| format!("{:>8} {:>5} {:>5}", e.name(), "k_fp", "j_fp"))
            .collect::<Vec<_>>()
            .join(" | ")
    );

    for benchmark in &suite {
        // BDD columns (diameters), with a node limit standing in for the
        // paper's memory limit.
        let bdd_start = Instant::now();
        let analysis = bdd::reach::analyze(&benchmark.aig, 0, 2_000_000);
        let bdd_ms = bdd_start.elapsed().as_secs_f64() * 1e3;
        let (df, db) = (
            analysis
                .forward_diameter
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".to_string()),
            analysis
                .backward_diameter
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".to_string()),
        );
        let bdd_time = if analysis.forward_diameter.is_some() {
            format!("{bdd_ms:.0}")
        } else {
            "ovf".to_string()
        };

        let mut engine_cells = Vec::new();
        for engine in engines {
            let record = run_engine(benchmark, engine, &options);
            let (time, k, j) = record.cells();
            engine_cells.push(format!("{time:>8} {k:>5} {j:>5}"));
        }

        println!(
            "{:<34} {:>4} {:>4} | {:>4} {:>7} {:>4} {:>7} | {}",
            benchmark.name,
            benchmark.aig.num_inputs(),
            benchmark.aig.num_latches(),
            df,
            bdd_time,
            db,
            bdd_time,
            engine_cells.join(" | ")
        );
    }
}
