//! Telemetry contract tests: tracing observes a run, it never changes it.
//!
//! * recorded streams are well formed — monotone sequence numbers, the
//!   span vocabulary the engines promise, balanced per-track nesting;
//! * a `threads = 1` run traces the *identical* event stream every time
//!   (timestamps excluded — they are wall-clock, everything else is
//!   deterministic);
//! * verdicts are bit-identical with tracing on and off, including across
//!   the portfolio race (the recording-sink analogue of
//!   `portfolio_determinism.rs`);
//! * the Chrome trace export of a portfolio run carries one named track
//!   per entrant.

use itpseq::mc::{Engine, Options, Telemetry};
use itpseq::telemetry::{check_span_nesting, Event, EventKind, MemorySink};
use std::sync::Arc;
use std::time::Duration;

fn options() -> Options {
    Options::default()
        .with_timeout(Duration::from_secs(20))
        .with_max_bound(40)
}

fn counter(bad_at: u64) -> itpseq::aig::Aig {
    itpseq::workloads::counter::modular(4, 10, bad_at)
}

/// Runs `engine` with a fresh recording sink and returns the events.
fn record(engine: Engine, aig: &itpseq::aig::Aig, options: &Options) -> Vec<Event> {
    let sink = Arc::new(MemorySink::new());
    let traced = options.clone().with_telemetry(Telemetry::new(sink.clone()));
    let _ = engine.verify(aig, 0, &traced);
    sink.snapshot()
}

/// The structural fingerprint of an event stream: everything except the
/// wall-clock timestamp.
fn shape(events: &[Event]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            let args: Vec<String> = e.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!(
                "{}:{}:{}:{}:{}",
                e.seq,
                e.track,
                e.kind.phase(),
                e.name,
                args.join(",")
            )
        })
        .collect()
}

#[test]
fn engine_runs_emit_well_formed_streams() {
    for engine in [Engine::Bmc, Engine::ItpSeq, Engine::Pdr, Engine::Itp] {
        let events = record(engine, &counter(12), &options());
        assert!(!events.is_empty(), "{engine:?} must trace");
        // Sequence numbers are strictly increasing (single-track run).
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "{engine:?}: seq must increase");
        }
        // The stream opens with the preprocessing span (the staged
        // pipeline shrinks the design before the engine starts), and the
        // engine's run span follows once the reduced model is handed over.
        assert!(
            events[0].kind == EventKind::Begin && events[0].name == "preprocess",
            "{engine:?}: first event is the preprocess span, got {:?}",
            events[0].name
        );
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::Begin && e.name.ends_with(".run")),
            "{engine:?}: the engine run span must be emitted"
        );
        assert!(
            events.iter().any(|e| e.name == "verdict"),
            "{engine:?}: a verdict instant must be emitted"
        );
        assert!(
            events
                .iter()
                .any(|e| e.name == "bound" || e.name == "level"),
            "{engine:?}: per-bound spans must be emitted"
        );
        let spans = check_span_nesting(&events)
            .unwrap_or_else(|e| panic!("{engine:?}: broken nesting: {e}"));
        assert!(spans > 0, "{engine:?}: at least the run span completes");
    }
}

#[test]
fn sequential_traces_are_reproducible() {
    for engine in [Engine::Bmc, Engine::ItpSeq, Engine::Pdr] {
        let aig = counter(12);
        let reference = shape(&record(engine, &aig, &options()));
        for _ in 0..2 {
            let again = shape(&record(engine, &aig, &options()));
            assert_eq!(reference, again, "{engine:?}: threads=1 trace must repeat");
        }
    }
}

#[test]
fn tracing_never_changes_verdicts() {
    for engine in Engine::ALL {
        for bad_at in [7u64, 12] {
            let aig = counter(bad_at);
            let off = engine.verify(&aig, 0, &options());
            let sink = Arc::new(MemorySink::new());
            let traced = options().with_telemetry(Telemetry::new(sink.clone()));
            let on = engine.verify(&aig, 0, &traced);
            assert_eq!(
                off.verdict, on.verdict,
                "{engine:?} bad_at={bad_at}: tracing must not change the verdict"
            );
            assert!(!sink.snapshot().is_empty(), "{engine:?}: sink must record");
        }
    }
}

#[test]
fn multi_property_run_traces_scheduler_events() {
    let aig = itpseq::workloads::counter::modular_multi(4, 10, &[3, 11, 7, 15]);
    let sink = Arc::new(MemorySink::new());
    let traced = options().with_telemetry(Telemetry::new(sink.clone()));
    let multi = Engine::Portfolio.verify_all(&aig, &traced);
    assert_eq!(multi.statuses.len(), 4);
    let events = sink.snapshot();
    for name in [
        "scheduler.run",
        "coi.groups",
        "group.dispatch",
        "prop.decide",
    ] {
        assert!(
            events.iter().any(|e| e.name == name),
            "scheduler run must emit {name}"
        );
    }
    // The racing backends trace onto per-group named tracks.
    assert!(
        events.iter().any(|e| e.track.contains(".PDR")),
        "multi-PDR gets its own track"
    );
    assert!(
        events.iter().any(|e| e.track.contains(".BMC")),
        "multi-BMC gets its own track"
    );
    check_span_nesting(&events).expect("balanced per-track nesting");
}

#[test]
fn portfolio_trace_has_per_entrant_tracks_and_race_markers() {
    let aig = counter(12);
    let sink = Arc::new(MemorySink::new());
    let traced = options().with_telemetry(Telemetry::new(sink.clone()));
    let result = Engine::Portfolio.verify(&aig, 0, &traced);
    assert!(result.verdict.is_proved(), "{}", result.verdict);
    let events = sink.snapshot();
    for entrant in ["PDR", "ITPSEQCBA", "BMC"] {
        assert!(
            events.iter().any(|e| &*e.track == entrant),
            "entrant {entrant} must trace on its own track"
        );
    }
    for marker in ["entrant.start", "entrant.done", "entrant.win"] {
        assert!(
            events.iter().any(|e| e.name == marker),
            "race marker {marker} must be emitted"
        );
    }
    check_span_nesting(&events).expect("balanced per-track nesting");

    // The Chrome export names one tid per track (entrants + main).
    let mut chrome = Vec::new();
    itpseq::telemetry::write_chrome_trace(&events, &mut chrome).expect("vec write");
    let chrome = String::from_utf8(chrome).expect("utf8");
    for entrant in ["PDR", "ITPSEQCBA", "BMC"] {
        assert!(
            chrome.contains(&format!(r#""name":"{entrant}""#)),
            "chrome trace must name the {entrant} track"
        );
    }
    assert!(chrome.contains(r#""ph":"B""#) && chrome.contains(r#""ph":"E""#));
}

/// The recording-sink analogue of `portfolio_determinism.rs`: racing with
/// a sink attached must still reproduce the sequential reference verdict.
#[test]
fn recorded_portfolio_matches_the_sequential_reference() {
    for bad_at in [5u64, 12] {
        let aig = counter(bad_at);
        let reference = if bad_at < 10 {
            Engine::Bmc.verify(&aig, 0, &options()).verdict
        } else {
            Engine::Pdr.verify(&aig, 0, &options()).verdict
        };
        for _ in 0..3 {
            let sink = Arc::new(MemorySink::new());
            let traced = options().with_telemetry(Telemetry::new(sink.clone()));
            let raced = Engine::Portfolio.verify(&aig, 0, &traced).verdict;
            assert_eq!(
                reference.is_proved(),
                raced.is_proved(),
                "bad_at={bad_at}: {reference} vs {raced}"
            );
            if let itpseq::mc::Verdict::Falsified { depth } = reference {
                assert_eq!(raced, itpseq::mc::Verdict::Falsified { depth });
            }
        }
    }
}
