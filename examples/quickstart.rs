//! Quickstart: build a tiny sequential design, verify it with every engine
//! and print the verdicts with their depth statistics.
//!
//! Run with `cargo run --example quickstart`.

use itpseq::mc::{Engine, Options};

fn main() {
    // A 4-bit counter that counts 0..=9 and wraps.  The property claims the
    // value 12 is never reached — true, because the counter wraps at 10.
    let passing = itpseq::workloads::counter::modular(4, 10, 12);
    // The same counter, but the property claims 7 is never reached — false.
    let failing = itpseq::workloads::counter::modular(4, 10, 7);

    let options = Options::default();
    println!(
        "design: {} ({} latches)",
        passing.name(),
        passing.num_latches()
    );
    for engine in Engine::ALL {
        let result = engine.verify(&passing, 0, &options);
        println!(
            "  {:<9} -> {:<28} [{}]",
            engine.name(),
            result.verdict.to_string(),
            result.stats
        );
    }

    println!(
        "design: {} ({} latches)",
        failing.name(),
        failing.num_latches()
    );
    for engine in Engine::ALL {
        let result = engine.verify(&failing, 0, &options);
        println!(
            "  {:<9} -> {:<28} [{}]",
            engine.name(),
            result.verdict.to_string(),
            result.stats
        );
    }
}
