//! `certify` — validate `itpseq-cert/v1` certificate documents.
//!
//! ```text
//! cargo run --bin certify -- [--strict] <path>...
//! ```
//!
//! Each path is a `*.certs.json` document or a directory scanned
//! (recursively) for them.  The design named by each document's
//! `"design"` field is re-parsed from the file next to the document; no
//! engine state is consulted.  Exit status is non-zero when any
//! certificate is rejected or any document fails to load — and, with
//! `--strict`, when a conclusive verdict carries no certificate at all.

use certify::{check_entry, parse_document, Outcome};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn collect_documents(path: &Path, into: &mut Vec<PathBuf>) -> Result<(), String> {
    if path.is_dir() {
        let mut children: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("{}: {e}", path.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        children.sort();
        for child in children {
            if child.is_dir() || child.to_string_lossy().ends_with(".certs.json") {
                collect_documents(&child, into)?;
            }
        }
        Ok(())
    } else if path.is_file() {
        into.push(path.to_path_buf());
        Ok(())
    } else {
        Err(format!("{}: no such file or directory", path.display()))
    }
}

fn main() -> ExitCode {
    let mut strict = false;
    let mut roots = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--strict" => strict = true,
            "--help" | "-h" => {
                println!("usage: certify [--strict] <certs.json | directory>...");
                return ExitCode::SUCCESS;
            }
            _ => roots.push(PathBuf::from(arg)),
        }
    }
    if roots.is_empty() {
        eprintln!("usage: certify [--strict] <certs.json | directory>...");
        return ExitCode::FAILURE;
    }

    let mut documents = Vec::new();
    for root in &roots {
        if let Err(error) = collect_documents(root, &mut documents) {
            eprintln!("error: {error}");
            return ExitCode::FAILURE;
        }
    }
    if documents.is_empty() {
        eprintln!("error: no *.certs.json documents found");
        return ExitCode::FAILURE;
    }

    let (mut accepted, mut skipped, mut rejected) = (0usize, 0usize, 0usize);
    let mut failures = 0usize;
    for path in &documents {
        let name = path.display();
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(error) => {
                eprintln!("error: {name}: {error}");
                failures += 1;
                continue;
            }
        };
        let document = match parse_document(&text) {
            Ok(document) => document,
            Err(error) => {
                eprintln!("error: {name}: {error}");
                failures += 1;
                continue;
            }
        };
        let design_path = path
            .parent()
            .unwrap_or_else(|| Path::new("."))
            .join(&document.design);
        let design = match std::fs::read_to_string(&design_path)
            .map_err(|e| e.to_string())
            .and_then(|text| aig::parse_aag(&text).map_err(|e| format!("{e:?}")))
        {
            Ok(design) => design,
            Err(error) => {
                eprintln!("error: {name}: design {}: {error}", design_path.display());
                failures += 1;
                continue;
            }
        };
        for entry in &document.entries {
            let engine = entry.engine.as_deref().unwrap_or("-");
            match check_entry(&design, entry) {
                Outcome::Accepted => {
                    accepted += 1;
                    println!("ok   {name} p{} {engine} {}", entry.property, entry.verdict);
                }
                Outcome::Skipped(reason) => {
                    skipped += 1;
                    let conclusive = entry.verdict == "proved" || entry.verdict == "falsified";
                    if strict && conclusive {
                        failures += 1;
                        eprintln!(
                            "MISS {name} p{} {engine} {}: {reason}",
                            entry.property, entry.verdict
                        );
                    } else {
                        println!(
                            "skip {name} p{} {engine} {}: {reason}",
                            entry.property, entry.verdict
                        );
                    }
                }
                Outcome::Rejected(reason) => {
                    rejected += 1;
                    eprintln!(
                        "FAIL {name} p{} {engine} {}: {reason}",
                        entry.property, entry.verdict
                    );
                }
            }
        }
    }

    println!(
        "certify: {accepted} accepted, {skipped} skipped, {rejected} rejected across {} document(s)",
        documents.len()
    );
    if rejected > 0 || failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
