//! Errors reported by interpolant extraction.

use cnf::Var;
use std::error::Error;
use std::fmt;

/// Reasons why an interpolant cannot be extracted from a proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ItpError {
    /// The proof has no final (empty-clause) chain, i.e. the formula was
    /// never refuted.
    MissingRefutation,
    /// A clause participating in the proof has partition 0, so it belongs to
    /// neither side of any cut.
    UnpartitionedClause {
        /// Index of the offending clause in the proof.
        clause: usize,
    },
    /// A resolution pivot never occurs in any original clause, so it cannot
    /// be classified as local or global.
    UnclassifiableVariable {
        /// The offending variable.
        var: Var,
    },
    /// The requested cut index lies outside `1..num_partitions`.
    CutOutOfRange {
        /// The requested cut.
        cut: u32,
        /// Number of partitions in the proof.
        partitions: u32,
    },
}

impl fmt::Display for ItpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ItpError::MissingRefutation => {
                write!(f, "proof does not derive the empty clause")
            }
            ItpError::UnpartitionedClause { clause } => {
                write!(f, "clause {clause} used by the proof has no partition")
            }
            ItpError::UnclassifiableVariable { var } => {
                write!(f, "variable {var} does not occur in any original clause")
            }
            ItpError::CutOutOfRange { cut, partitions } => {
                write!(
                    f,
                    "cut {cut} is outside the valid range 1..{partitions} of the proof"
                )
            }
        }
    }
}

impl Error for ItpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_problem() {
        assert!(ItpError::MissingRefutation
            .to_string()
            .contains("empty clause"));
        assert!(ItpError::UnpartitionedClause { clause: 3 }
            .to_string()
            .contains("clause 3"));
        assert!(ItpError::UnclassifiableVariable { var: Var::new(7) }
            .to_string()
            .contains("x7"));
        assert!(ItpError::CutOutOfRange {
            cut: 9,
            partitions: 4
        }
        .to_string()
        .contains("cut 9"));
    }
}
