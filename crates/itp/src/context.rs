//! Interpolant extraction from resolution proofs (McMillan's system).

use crate::ItpError;
use aig::Aig;
use cnf::Var;
use sat::{Chain, ClauseOrigin, Proof};

/// Occurrence range of a variable over the original partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct VarRange {
    min: u32,
    max: u32,
}

/// Prepared interpolation state for one refutation proof.
///
/// The context pre-computes, for every SAT variable, the range of partitions
/// in which it occurs.  Interpolants for arbitrary cuts can then be
/// extracted with a single traversal of the proof per request; all cuts of
/// an interpolation sequence are computed in *one* traversal, mirroring the
/// paper's observation that the whole sequence comes from a single proof.
#[derive(Clone, Debug)]
pub struct InterpolationContext<'a> {
    proof: &'a Proof,
    ranges: Vec<Option<VarRange>>,
    needed: Vec<bool>,
    partitions: u32,
}

impl<'a> InterpolationContext<'a> {
    /// Prepares interpolation over `proof`.
    ///
    /// # Errors
    ///
    /// Returns [`ItpError::MissingRefutation`] if the proof does not derive
    /// the empty clause, or [`ItpError::UnpartitionedClause`] if a clause
    /// participating in the refutation carries no partition label.
    pub fn new(proof: &'a Proof) -> Result<InterpolationContext<'a>, ItpError> {
        let final_chain = proof
            .empty_clause_chain
            .as_ref()
            .ok_or(ItpError::MissingRefutation)?;

        // Mark the clauses actually used by the refutation.
        let mut needed = vec![false; proof.clauses.len()];
        let mut stack: Vec<usize> = Vec::new();
        let mark_chain = |chain: &Chain, stack: &mut Vec<usize>| {
            stack.push(chain.start);
            for &(_, c) in &chain.steps {
                stack.push(c);
            }
        };
        mark_chain(final_chain, &mut stack);
        while let Some(id) = stack.pop() {
            if needed[id] {
                continue;
            }
            needed[id] = true;
            if let ClauseOrigin::Learned { chain } = &proof.clauses[id].origin {
                mark_chain(chain, &mut stack);
            }
        }

        // Every needed original clause must be partitioned.
        for (id, clause) in proof.clauses.iter().enumerate() {
            if needed[id] && clause.partition() == Some(0) {
                return Err(ItpError::UnpartitionedClause { clause: id });
            }
        }

        // Occurrence ranges over *all* partitioned original clauses.
        let num_vars = proof
            .clauses
            .iter()
            .flat_map(|c| c.lits.iter())
            .map(|l| l.var().index() + 1)
            .max()
            .unwrap_or(0) as usize;
        let mut ranges: Vec<Option<VarRange>> = vec![None; num_vars];
        for clause in &proof.clauses {
            let partition = match clause.partition() {
                Some(p) if p > 0 => p,
                _ => continue,
            };
            for lit in &clause.lits {
                let slot = &mut ranges[lit.var().index() as usize];
                *slot = Some(match *slot {
                    None => VarRange {
                        min: partition,
                        max: partition,
                    },
                    Some(r) => VarRange {
                        min: r.min.min(partition),
                        max: r.max.max(partition),
                    },
                });
            }
        }

        Ok(InterpolationContext {
            proof,
            ranges,
            needed,
            partitions: proof.num_partitions(),
        })
    }

    /// Number of partitions `n` of the underlying formula `Γ_{1..n}`.
    pub fn num_partitions(&self) -> u32 {
        self.partitions
    }

    /// Returns `true` when `var` is shared between the two sides of `cut`
    /// (occurs both in some `A_i` with `i ≤ cut` and in some `A_j` with
    /// `j > cut`).
    pub fn is_global(&self, cut: u32, var: Var) -> bool {
        match self.ranges.get(var.index() as usize).copied().flatten() {
            Some(r) => r.min <= cut && r.max > cut,
            None => false,
        }
    }

    fn is_a_local(&self, cut: u32, var: Var) -> Option<bool> {
        self.ranges
            .get(var.index() as usize)
            .copied()
            .flatten()
            .map(|r| r.max <= cut)
    }

    /// Computes the interpolant `ITP(A_1 ∧ … ∧ A_cut, A_{cut+1} ∧ … ∧ A_n)`.
    ///
    /// `var_map(cut, v)` must return the AIG literal standing for the shared
    /// variable `v` at this cut; it is only called for variables that are
    /// global for the cut.
    ///
    /// # Errors
    ///
    /// See [`InterpolationContext::sequence_for_cuts`].
    pub fn interpolant(
        &self,
        cut: u32,
        mgr: &mut Aig,
        var_map: &dyn Fn(u32, Var) -> aig::Lit,
    ) -> Result<aig::Lit, ItpError> {
        Ok(self.sequence_for_cuts(&[cut], mgr, var_map)?.remove(0))
    }

    /// Computes the full interpolation sequence `I_1 … I_{n-1}` (the paper's
    /// `I_0 = ⊤` and `I_n = ⊥` endpoints are omitted).
    ///
    /// # Errors
    ///
    /// See [`InterpolationContext::sequence_for_cuts`].
    pub fn sequence(
        &self,
        mgr: &mut Aig,
        var_map: &dyn Fn(u32, Var) -> aig::Lit,
    ) -> Result<Vec<aig::Lit>, ItpError> {
        let cuts: Vec<u32> = (1..self.partitions).collect();
        self.sequence_for_cuts(&cuts, mgr, var_map)
    }

    /// Computes interpolants for an arbitrary set of cuts in a single
    /// traversal of the proof.
    ///
    /// # Errors
    ///
    /// * [`ItpError::CutOutOfRange`] if a cut is not in `1..n`;
    /// * [`ItpError::UnclassifiableVariable`] if a resolution pivot does not
    ///   occur in any partitioned original clause.
    pub fn sequence_for_cuts(
        &self,
        cuts: &[u32],
        mgr: &mut Aig,
        var_map: &dyn Fn(u32, Var) -> aig::Lit,
    ) -> Result<Vec<aig::Lit>, ItpError> {
        for &cut in cuts {
            if cut == 0 || cut >= self.partitions {
                return Err(ItpError::CutOutOfRange {
                    cut,
                    partitions: self.partitions,
                });
            }
        }
        // Partial interpolants per needed clause.
        let mut partial: Vec<Option<Vec<aig::Lit>>> = vec![None; self.proof.clauses.len()];
        for (id, clause) in self.proof.clauses.iter().enumerate() {
            if !self.needed[id] {
                continue;
            }
            let itps = match &clause.origin {
                ClauseOrigin::Original { partition } => {
                    let mut itps = Vec::with_capacity(cuts.len());
                    for &cut in cuts {
                        if *partition <= cut {
                            // A-side leaf: disjunction of the global literals.
                            let mut acc = aig::Lit::FALSE;
                            for lit in &clause.lits {
                                if self.is_global(cut, lit.var()) {
                                    let leaf = var_map(cut, lit.var());
                                    let leaf = if lit.is_negative() { !leaf } else { leaf };
                                    acc = mgr.or(acc, leaf);
                                }
                            }
                            itps.push(acc);
                        } else {
                            // B-side leaf.
                            itps.push(aig::Lit::TRUE);
                        }
                    }
                    itps
                }
                ClauseOrigin::Learned { chain } => {
                    self.replay_chain_itps(chain, cuts, mgr, &partial)?
                }
            };
            partial[id] = Some(itps);
        }
        let final_chain = self
            .proof
            .empty_clause_chain
            .as_ref()
            .expect("checked in new()");
        self.replay_chain_itps(final_chain, cuts, mgr, &partial)
    }

    fn replay_chain_itps(
        &self,
        chain: &Chain,
        cuts: &[u32],
        mgr: &mut Aig,
        partial: &[Option<Vec<aig::Lit>>],
    ) -> Result<Vec<aig::Lit>, ItpError> {
        let mut current = partial[chain.start]
            .clone()
            .expect("antecedent processed before use");
        for &(pivot, antecedent) in &chain.steps {
            let other = partial[antecedent]
                .as_ref()
                .expect("antecedent processed before use");
            for (i, slot) in current.iter_mut().enumerate() {
                let cut = cuts[i];
                let a_local = self
                    .is_a_local(cut, pivot)
                    .ok_or(ItpError::UnclassifiableVariable { var: pivot })?;
                *slot = if a_local {
                    mgr.or(*slot, other[i])
                } else {
                    mgr.and(*slot, other[i])
                };
            }
        }
        Ok(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnf::{Cnf, CnfBuilder, Lit};
    use sat::{SolveResult, Solver};

    /// Helper: solve a partitioned CNF, returning the proof when UNSAT.
    fn refute(cnf: &Cnf) -> Option<Proof> {
        let mut solver = Solver::new();
        solver.add_cnf(cnf);
        match solver.solve() {
            SolveResult::Unsat => Some(solver.proof().expect("proof")),
            SolveResult::Sat | SolveResult::Interrupted => None,
        }
    }

    /// Helper: evaluate the conjunction of the clauses with partition in
    /// `range` under a total assignment.
    fn eval_side(cnf: &Cnf, assignment: &[bool], pred: impl Fn(u32) -> bool) -> bool {
        cnf.clauses.iter().filter(|c| pred(c.partition)).all(|c| {
            c.lits
                .iter()
                .any(|l| assignment[l.var().index() as usize] != l.is_negative())
        })
    }

    /// Checks the three defining properties of an interpolant for every cut,
    /// by brute force over all assignments.
    fn check_interpolant_properties(cnf: &Cnf) {
        let proof = refute(cnf).expect("formula must be unsatisfiable");
        check_proof_interpolants(cnf, &proof);
    }

    /// [`check_interpolant_properties`] on an externally produced proof.
    fn check_proof_interpolants(cnf: &Cnf, proof: &Proof) {
        proof.check().expect("proof must be valid");
        let ctx = InterpolationContext::new(proof).expect("context");
        let n = ctx.num_partitions();
        assert!(n >= 2, "need at least two partitions");

        let mut mgr = Aig::new();
        let inputs: Vec<aig::Lit> = (0..cnf.num_vars)
            .map(|_| aig::Lit::positive(mgr.add_input()))
            .collect();
        let cuts: Vec<u32> = (1..n).collect();
        let itps = ctx
            .sequence_for_cuts(&cuts, &mut mgr, &|_, v| inputs[v.index() as usize])
            .expect("sequence");

        for (idx, &cut) in cuts.iter().enumerate() {
            // Support check: the interpolant only mentions global variables.
            let support = aig::coi::combinational_support(&mgr, itps[idx]);
            for &inp in &support.inputs {
                assert!(
                    ctx.is_global(cut, Var::new(inp as u32)),
                    "cut {cut}: interpolant mentions non-shared variable x{inp}"
                );
            }
            for bits in 0..(1u64 << cnf.num_vars) {
                let assignment: Vec<bool> =
                    (0..cnf.num_vars).map(|i| (bits >> i) & 1 == 1).collect();
                let itp_value = mgr.eval(itps[idx], &assignment, &[]);
                if eval_side(cnf, &assignment, |p| p != 0 && p <= cut) {
                    assert!(itp_value, "cut {cut}: A does not imply the interpolant");
                }
                if eval_side(cnf, &assignment, |p| p > cut) {
                    assert!(!itp_value, "cut {cut}: interpolant ∧ B is satisfiable");
                }
            }
        }

        // Sequence chaining property: I_j ∧ A_{j+1} ⇒ I_{j+1}.
        for w in 0..cuts.len().saturating_sub(1) {
            let cut = cuts[w];
            for bits in 0..(1u64 << cnf.num_vars) {
                let assignment: Vec<bool> =
                    (0..cnf.num_vars).map(|i| (bits >> i) & 1 == 1).collect();
                let i_j = mgr.eval(itps[w], &assignment, &[]);
                let a_next = eval_side(cnf, &assignment, |p| p == cut + 1);
                let i_next = mgr.eval(itps[w + 1], &assignment, &[]);
                if i_j && a_next {
                    assert!(i_next, "sequence property violated at cut {cut}");
                }
            }
        }
    }

    fn lit(v: u32, neg: bool) -> Lit {
        Lit::new(Var::new(v), neg)
    }

    #[test]
    fn unit_conflict_interpolant_is_the_shared_literal() {
        let mut b = CnfBuilder::new();
        let a = b.new_lit();
        b.set_partition(1);
        b.add_unit(a);
        b.set_partition(2);
        b.add_unit(!a);
        check_interpolant_properties(&b.into_cnf());
    }

    #[test]
    fn implication_chain_interpolants() {
        // A: a, a->b ; B: b->c, ¬c  — interpolant over {b}.
        let mut b = CnfBuilder::new();
        let x: Vec<Lit> = (0..3).map(|_| b.new_lit()).collect();
        b.set_partition(1);
        b.add_unit(x[0]);
        b.add_clause([!x[0], x[1]]);
        b.set_partition(2);
        b.add_clause([!x[1], x[2]]);
        b.add_unit(!x[2]);
        check_interpolant_properties(&b.into_cnf());
    }

    #[test]
    fn three_partition_sequence() {
        // A1: a ; A2: a->b ; A3: ¬b.
        let mut b = CnfBuilder::new();
        let x: Vec<Lit> = (0..2).map(|_| b.new_lit()).collect();
        b.set_partition(1);
        b.add_unit(x[0]);
        b.set_partition(2);
        b.add_clause([!x[0], x[1]]);
        b.set_partition(3);
        b.add_unit(!x[1]);
        check_interpolant_properties(&b.into_cnf());
    }

    #[test]
    fn pigeonhole_interpolants_across_partitions() {
        // Pigeons in partition 1, hole-exclusivity in partition 2.
        let holes = 3;
        let pigeons = holes + 1;
        let mut b = CnfBuilder::new();
        let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
        for _ in 0..pigeons * holes {
            b.new_var();
        }
        b.set_partition(1);
        for p in 0..pigeons {
            b.add_clause((0..holes).map(|h| Lit::positive(var(p, h))));
        }
        b.set_partition(2);
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    b.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
                }
            }
        }
        check_interpolant_properties(&b.into_cnf());
    }

    #[test]
    fn interpolants_stay_valid_after_db_reduction_cycles() {
        // An aggressive reduction schedule forces many learned-clause
        // deletion passes *during* the proof-logging refutation; clauses
        // referenced by recorded chains are pinned, so the exported proof
        // must still be complete and its whole interpolation sequence
        // must satisfy every defining property.
        let holes = 3;
        let pigeons = holes + 1;
        let mut b = CnfBuilder::new();
        let var = |p: usize, h: usize| Var::new((p * holes + h) as u32);
        for _ in 0..pigeons * holes {
            b.new_var();
        }
        b.set_partition(1);
        for p in 0..pigeons {
            b.add_clause((0..holes).map(|h| Lit::positive(var(p, h))));
        }
        b.set_partition(2);
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    b.add_clause([Lit::negative(var(p1, h)), Lit::negative(var(p2, h))]);
                }
            }
        }
        let cnf = b.into_cnf();
        let mut solver = Solver::new();
        solver.set_reduce_interval(Some(2));
        solver.add_cnf(&cnf);
        assert_eq!(solver.solve(), SolveResult::Unsat);
        assert!(
            solver.stats().db_reductions > 0,
            "the aggressive schedule must actually run reduction passes"
        );
        let proof = solver.proof().expect("proof");
        check_proof_interpolants(&cnf, &proof);
    }

    #[test]
    fn random_partitioned_formulas_yield_valid_sequences() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2011);
        let mut checked = 0;
        for _ in 0..200 {
            if checked >= 12 {
                break;
            }
            let num_vars = rng.gen_range(4..8u32);
            let num_partitions = rng.gen_range(2..5u32);
            let num_clauses = num_vars * 5;
            let mut b = CnfBuilder::new();
            for _ in 0..num_vars {
                b.new_var();
            }
            for _ in 0..num_clauses {
                b.set_partition(rng.gen_range(1..=num_partitions));
                let len = rng.gen_range(1..=3);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
                    .collect();
                b.add_clause(clause);
            }
            let cnf = b.into_cnf();
            if refute(&cnf).is_some() {
                check_interpolant_properties(&cnf);
                checked += 1;
            }
        }
        assert!(checked >= 5, "not enough unsatisfiable samples generated");
    }

    #[test]
    fn cut_out_of_range_is_reported() {
        let mut b = CnfBuilder::new();
        let a = b.new_lit();
        b.set_partition(1);
        b.add_unit(a);
        b.set_partition(2);
        b.add_unit(!a);
        let cnf = b.into_cnf();
        let proof = refute(&cnf).unwrap();
        let ctx = InterpolationContext::new(&proof).unwrap();
        let mut mgr = Aig::new();
        let err = ctx
            .interpolant(5, &mut mgr, &|_, _| aig::Lit::TRUE)
            .unwrap_err();
        assert!(matches!(err, ItpError::CutOutOfRange { cut: 5, .. }));
    }

    #[test]
    fn unpartitioned_clause_is_reported() {
        let mut solver = Solver::new();
        let a = Lit::positive(solver.new_var());
        solver.add_clause([a], 0);
        solver.add_clause([!a], 2);
        assert_eq!(solver.solve(), SolveResult::Unsat);
        let proof = solver.proof().unwrap();
        let err = InterpolationContext::new(&proof).unwrap_err();
        assert!(matches!(err, ItpError::UnpartitionedClause { .. }));
    }

    #[test]
    fn missing_refutation_is_reported() {
        let mut solver = Solver::new();
        let a = Lit::positive(solver.new_var());
        solver.add_clause([a], 1);
        assert_eq!(solver.solve(), SolveResult::Sat);
        // No proof is available at all for satisfiable formulas.
        assert!(solver.proof().is_none());
        // A hand-built proof without a final chain is rejected.
        let proof = Proof {
            clauses: vec![],
            empty_clause_chain: None,
        };
        assert!(matches!(
            InterpolationContext::new(&proof),
            Err(ItpError::MissingRefutation)
        ));
    }

    #[test]
    fn lit_helper_is_used() {
        // Keep the helper exercised even though most tests build literals
        // through CnfBuilder.
        assert!(lit(1, true).is_negative());
    }
}
