//! DIMACS CNF import/export.
//!
//! Mainly a debugging aid: formulas produced by the unroller can be dumped
//! and fed to external SAT solvers for cross-checking, and regression tests
//! can load hand-written formulas.

use crate::{Cnf, CnfBuilder, Lit};
use std::error::Error;
use std::fmt;

/// Error produced while parsing a DIMACS file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseDimacsError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid dimacs line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDimacsError {}

/// Serialises a [`Cnf`] to DIMACS format.
///
/// Partition labels are emitted as `c partition <p>` comments before each
/// clause so the file stays loadable by standard tools while remaining
/// self-describing.
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars, cnf.clauses.len()));
    for clause in &cnf.clauses {
        if clause.partition != 0 {
            out.push_str(&format!("c partition {}\n", clause.partition));
        }
        for lit in &clause.lits {
            out.push_str(&format!("{} ", lit.to_dimacs()));
        }
        out.push_str("0\n");
    }
    out
}

/// Parses a DIMACS file, honouring the `c partition <p>` comments emitted by
/// [`to_dimacs`].
///
/// # Errors
///
/// Returns a [`ParseDimacsError`] when a literal cannot be parsed or a
/// clause is not terminated by `0`.
pub fn parse_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut builder = CnfBuilder::new();
    let mut declared_vars = 0u32;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('c') {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() == 2 && toks[0] == "partition" {
                let p: u32 = toks[1].parse().map_err(|_| ParseDimacsError {
                    line: line_no,
                    message: format!("bad partition `{}`", toks[1]),
                })?;
                builder.set_partition(p);
            }
            continue;
        }
        if line.starts_with('p') {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() >= 3 {
                declared_vars = toks[2].parse().unwrap_or(0);
            }
            continue;
        }
        let mut lits = Vec::new();
        let mut terminated = false;
        for tok in line.split_whitespace() {
            let value: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: line_no,
                message: format!("bad literal `{tok}`"),
            })?;
            if value == 0 {
                terminated = true;
                break;
            }
            lits.push(Lit::from_dimacs(value));
        }
        if !terminated {
            return Err(ParseDimacsError {
                line: line_no,
                message: "clause not terminated by 0".to_string(),
            });
        }
        builder.add_clause(lits);
    }
    let mut cnf = builder.into_cnf();
    let max_used = cnf
        .clauses
        .iter()
        .flat_map(|c| c.lits.iter())
        .map(|l| l.var().index() + 1)
        .max()
        .unwrap_or(0);
    cnf.num_vars = declared_vars.max(max_used);
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CnfBuilder;

    #[test]
    fn roundtrip_preserves_clauses_and_partitions() {
        let mut b = CnfBuilder::new();
        let x = b.new_lit();
        let y = b.new_lit();
        b.set_partition(1);
        b.add_clause([x, !y]);
        b.set_partition(2);
        b.add_clause([!x]);
        let cnf = b.into_cnf();
        let text = to_dimacs(&cnf);
        let back = parse_dimacs(&text).expect("parse");
        assert_eq!(back.clauses.len(), 2);
        assert_eq!(back.clauses[0].partition, 1);
        assert_eq!(back.clauses[1].partition, 2);
        assert_eq!(back.clauses[0].lits, cnf.clauses[0].lits);
        assert_eq!(back.num_vars, 2);
    }

    #[test]
    fn parses_plain_dimacs_without_partitions() {
        let text = "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = parse_dimacs(text).expect("parse");
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(cnf.clauses[0].partition, 0);
    }

    #[test]
    fn rejects_unterminated_clause() {
        let err = parse_dimacs("p cnf 2 1\n1 -2\n").unwrap_err();
        assert!(err.message.contains("not terminated"));
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_garbage_literal() {
        let err = parse_dimacs("p cnf 2 1\n1 abc 0\n").unwrap_err();
        assert!(err.message.contains("abc"));
    }

    #[test]
    fn var_count_grows_to_cover_used_literals() {
        let cnf = parse_dimacs("p cnf 1 1\n5 0\n").expect("parse");
        assert_eq!(cnf.num_vars, 5);
    }
}
