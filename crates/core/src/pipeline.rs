//! The staged verification pipeline: parse → preprocess → solve →
//! reconstruct.
//!
//! [`prepare`] (all properties) and [`prepare_property`] (one property)
//! run the [`aig::passes`] preprocessing pipeline over a design and
//! return a [`Prepared`] model: the reduced design, the
//! [`aig::passes::Reconstruction`] mapping back to the original, and the
//! per-pass reduction statistics.  [`Prepared::verify`] /
//! [`Prepared::verify_all`] then run an engine **on the reduced model**
//! and translate everything that leaves the run back into
//! original-design coordinates:
//!
//! * counterexample input traces are lifted to the original input width
//!   ([`aig::passes::Reconstruction::lift_inputs`]; inputs proven
//!   irrelevant are driven to `false`),
//! * inductive-invariant certificates are re-indexed through the latch
//!   map, one unit clause is conjoined per stuck-at latch (the sweep's
//!   proof obligation: those latches hold their reset value in every
//!   reachable state, and the invariant's inductiveness on the original
//!   design depends on that fact), and combinational cone literals are
//!   renumbered into the original latch space,
//! * [`crate::EngineStats`] picks up the preprocessing wall-clock and
//!   the ands/latches/inputs-removed totals.
//!
//! Verdict kinds and counterexample depths are untouched: on every
//! reachable state the reduced model agrees with the original on all
//! bad-state literals cycle by cycle.  The `certify` trust path is
//! deliberately not involved — mapped-back certificates are validated by
//! the independent checker against the *raw* design, which is exactly
//! what makes aggressive preprocessing a zero-trust component.
//!
//! Telemetry: when enabled, the run carries a `preprocess` track with
//! one span per pass and a `reduction` counter sample reporting what the
//! pass removed.

use crate::certificate::{Certificate, InvariantCert, InvariantCone};
use crate::engines::CancelToken;
use crate::{Engine, EngineResult, MultiResult, Options, PropertyStatus};
use aig::coi::Coi;
use aig::passes::{self, PipelineStats, Reconstruction};
use aig::Aig;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::ArgValue;

/// A design that went through the preprocessing pipeline, ready for the
/// solve stage, plus everything needed to reconstruct results.
#[derive(Clone, Debug)]
pub struct Prepared {
    /// The reduced design the engines run on.
    pub aig: Aig,
    /// The mapping from reduced coordinates back to the original design.
    pub recon: Reconstruction,
    /// Per-pass and aggregate reduction statistics.
    pub stats: PipelineStats,
    /// Wall-clock time the pass pipeline took.
    pub preprocess_time: Duration,
    /// Per-property sequential COIs in reduced coordinates, when the COI
    /// pass ran — reused by the multi-property scheduler instead of
    /// recomputing them.
    bad_cois: Option<Vec<Coi>>,
}

/// Runs the preprocessing pipeline over the whole design (all bad-state
/// properties kept, same indices) — the multi-property preparation.
pub fn prepare(aig: &Aig, options: &Options) -> Prepared {
    run_pipeline(aig, options)
}

/// Runs the preprocessing pipeline for one property: the design is first
/// narrowed to bad-state property `bad_index` (the reduced model's
/// property 0), so the cone-of-influence pass reduces with respect to
/// that property alone.
///
/// # Panics
///
/// Panics if `bad_index` is out of range.
pub fn prepare_property(aig: &Aig, bad_index: usize, options: &Options) -> Prepared {
    let mut focused = aig.clone();
    focused.select_bads(&[bad_index]);
    run_pipeline(&focused, options)
}

fn run_pipeline(aig: &Aig, options: &Options) -> Prepared {
    let start = Instant::now();
    let telemetry = options.telemetry.scoped("preprocess");
    let outer = telemetry.span_args("preprocess", || {
        vec![
            ("ands", ArgValue::U64(aig.num_ands() as u64)),
            ("latches", ArgValue::U64(aig.num_latches() as u64)),
            ("inputs", ArgValue::U64(aig.num_inputs() as u64)),
        ]
    });
    let mut pipeline = passes::Pipeline::new(aig);
    for kind in options.preprocess.passes() {
        let span = telemetry.span(kind.name());
        let removed = pipeline.run_pass(kind);
        span.end();
        telemetry.counter("reduction", || {
            vec![
                ("pass", ArgValue::Str(kind.name().to_string())),
                ("ands_removed", ArgValue::U64(removed.ands_removed)),
                ("latches_removed", ArgValue::U64(removed.latches_removed)),
                ("inputs_removed", ArgValue::U64(removed.inputs_removed)),
            ]
        });
    }
    outer.end();
    let result = pipeline.finish();
    Prepared {
        aig: result.aig,
        recon: result.recon,
        stats: result.stats,
        preprocess_time: start.elapsed(),
        bad_cois: result.bad_cois,
    }
}

impl Prepared {
    /// Runs `engine` on reduced-model property `bad_index` (0 for a
    /// [`prepare_property`] model) and reconstructs the result back to
    /// original-design coordinates.
    pub fn verify(&self, engine: Engine, bad_index: usize, options: &Options) -> EngineResult {
        self.verify_with_cancel(engine, bad_index, options, &CancelToken::new())
    }

    /// [`verify`](Self::verify) under a cancellation token.
    pub fn verify_with_cancel(
        &self,
        engine: Engine,
        bad_index: usize,
        options: &Options,
        cancel: &CancelToken,
    ) -> EngineResult {
        let mut result = engine.dispatch(&self.aig, bad_index, options, cancel);
        self.absorb_stats(&mut result.stats);
        if let Some(certificate) = result.certificate.take() {
            result.certificate = Some(match certificate {
                Certificate::Invariant(inv) => Certificate::Invariant(self.lift_invariant(&inv)),
                Certificate::Trace(frames) => Certificate::Trace(self.recon.lift_inputs(&frames)),
            });
        }
        result
    }

    /// Runs `engine` over every property of the reduced model (see
    /// [`Engine::verify_all`]) and reconstructs statuses, traces and
    /// certificates back to original-design coordinates.
    pub fn verify_all(&self, engine: Engine, options: &Options) -> MultiResult {
        self.verify_all_with_cancel(engine, options, &CancelToken::new())
    }

    /// [`verify_all`](Self::verify_all) under a cancellation token.
    pub fn verify_all_with_cancel(
        &self,
        engine: Engine,
        options: &Options,
        cancel: &CancelToken,
    ) -> MultiResult {
        let mut result = crate::multi::verify_all_inner(
            &self.aig,
            engine,
            options,
            cancel,
            self.bad_cois.as_deref(),
        );
        self.absorb_stats(&mut result.stats);
        // A multi-PDR run shares one invariant certificate Arc across
        // every property it proves; lift each distinct certificate once
        // and keep the sharing.
        let mut lifted: HashMap<*const InvariantCert, Arc<InvariantCert>> = HashMap::new();
        for status in &mut result.statuses {
            match status {
                PropertyStatus::Proved {
                    cert: Some(cert), ..
                } => {
                    let mapped = lifted
                        .entry(Arc::as_ptr(cert))
                        .or_insert_with(|| Arc::new(self.lift_invariant(cert)))
                        .clone();
                    *cert = mapped;
                }
                PropertyStatus::Falsified { cex: Some(cex), .. } => {
                    *cex = self.recon.lift_inputs(cex);
                }
                _ => {}
            }
        }
        result
    }

    /// Folds the preprocessing accounting into an engine's statistics.
    fn absorb_stats(&self, stats: &mut crate::EngineStats) {
        stats.preprocess_time += self.preprocess_time;
        stats.ands_removed += self.stats.ands_removed();
        stats.latches_removed += self.stats.latches_removed();
        stats.inputs_removed += self.stats.inputs_removed();
    }

    /// Translates an inductive invariant over the reduced latches into
    /// one over the original latches:
    ///
    /// * clause literals re-index through the latch map,
    /// * one unit clause per stuck-at latch pins it to its reset value —
    ///   without these the mapped invariant need not be inductive on the
    ///   original design (the reduced next-state functions were folded
    ///   *under* the stuck assumptions),
    /// * cone literals renumber: var 0 (the constant) stays, latch vars
    ///   map through the latch map, internal AND vars shift into the
    ///   original latch space.
    ///
    /// Latches outside the properties' cone of influence stay
    /// unconstrained: the invariant never mentions them, and none of the
    /// three checker queries needs them bounded.
    fn lift_invariant(&self, inv: &InvariantCert) -> InvariantCert {
        let recon = &self.recon;
        if recon.is_identity() {
            return inv.clone();
        }
        let n_reduced = inv.num_latches;
        debug_assert_eq!(n_reduced, recon.latch_map.len());
        let mut clauses: Vec<Vec<(usize, bool)>> = inv
            .clauses
            .iter()
            .map(|clause| {
                clause
                    .iter()
                    .map(|&(latch, phase)| (recon.latch_map[latch], phase))
                    .collect()
            })
            .collect();
        for &(latch, value) in &recon.stuck {
            clauses.push(vec![(latch, value)]);
        }
        let lift_lit = |lit: u32| -> u32 {
            let var = (lit >> 1) as usize;
            let mapped = if var == 0 {
                0
            } else if var <= n_reduced {
                recon.latch_map[var - 1] + 1
            } else {
                var - n_reduced + recon.orig_latches
            };
            (mapped as u32) << 1 | (lit & 1)
        };
        let cone = inv.cone.as_ref().map(|cone| InvariantCone {
            ands: cone
                .ands
                .iter()
                .map(|&(l, r)| (lift_lit(l), lift_lit(r)))
                .collect(),
            root: lift_lit(cone.root),
        });
        InvariantCert {
            num_latches: recon.orig_latches,
            clauses,
            cone,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verdict;
    use aig::Lit;

    /// chain A proves/falsifies the property; a stuck latch and an
    /// out-of-COI chain pad the design.
    fn padded_design(failing: bool) -> Aig {
        let mut aig = Aig::new();
        // a 2-bit counter wrapping at 2: values 0,1,2,0,...
        let (ids, bits) = aig::builder::latch_word(&mut aig, 2, 0);
        let wrap = aig::builder::word_equals_const(&mut aig, &bits, 2);
        let inc = aig::builder::word_increment(&mut aig, &bits, Lit::TRUE);
        let zero = aig::builder::word_const(2, 0);
        let next = aig::builder::word_mux(&mut aig, wrap, &zero, &inc);
        for (id, n) in ids.iter().zip(next.iter()) {
            aig.set_next(*id, *n);
        }
        // stuck latch (next = const = init) read by the property.
        let s = aig.add_latch(false);
        aig.set_next(s, Lit::FALSE);
        let slit = aig.latch_lit(s);
        // an out-of-COI latch chain fed by its own input.
        let free = aig.add_latch(false);
        let i = Lit::positive(aig.add_input());
        aig.set_next(free, i);
        // bad: counter == 2 (failing, depth 2) or counter == 3 (never).
        let target = if failing { 2 } else { 3 };
        let hit = aig::builder::word_equals_const(&mut aig, &bits, target);
        let bad = aig.or(hit, slit);
        aig.add_bad(bad);
        aig
    }

    #[test]
    fn prepare_property_reduces_and_engine_agrees() {
        let aig = padded_design(false);
        let options = Options::default();
        let prepared = prepare_property(&aig, 0, &options);
        assert_eq!(prepared.aig.num_latches(), 2, "counter bits only");
        assert_eq!(prepared.aig.num_inputs(), 0);
        assert_eq!(prepared.recon.stuck, vec![(2, false)]);
        let result = prepared.verify(Engine::Pdr, 0, &options);
        assert!(result.verdict.is_proved());
        assert_eq!(result.stats.latches_removed, 2);
        assert_eq!(result.stats.inputs_removed, 1);
        assert!(result.stats.ands_removed > 0);
    }

    #[test]
    fn lifted_invariant_certifies_original_design() {
        let aig = padded_design(false);
        let options = Options::default();
        let result = Engine::Pdr.verify(&aig, 0, &options);
        assert!(result.verdict.is_proved());
        let Some(Certificate::Invariant(inv)) = &result.certificate else {
            panic!("expected a lifted invariant certificate");
        };
        // The lifted certificate talks about the original design.
        assert_eq!(inv.num_latches, aig.num_latches());
        // It contains the stuck-at unit clause for latch 2.
        assert!(inv.clauses.contains(&vec![(2, false)]));
        // Initiation on the original design's reset state.
        let init: Vec<bool> = (0..aig.num_latches()).map(|l| aig.init(l)).collect();
        assert!(inv.eval(&init));
        // Safety: a state about to be counted as bad (counter == 3)
        // must be excluded.
        assert!(!inv.eval(&[true, true, false, false]));
    }

    #[test]
    fn lifted_trace_replays_on_original_design() {
        let aig = padded_design(true);
        let options = Options::default();
        let result = Engine::Bmc.verify(&aig, 0, &options);
        let Verdict::Falsified { depth } = result.verdict else {
            panic!("expected falsification");
        };
        assert_eq!(depth, 2);
        let Some(Certificate::Trace(frames)) = &result.certificate else {
            panic!("expected a lifted trace");
        };
        assert_eq!(frames.len(), depth + 1);
        for frame in frames {
            assert_eq!(frame.len(), aig.num_inputs(), "original input width");
        }
        let trace = aig::simulate(&aig, frames);
        assert_eq!(trace.first_failure(), Some(depth));
    }

    #[test]
    fn verify_all_reconstructs_shared_certificates() {
        let mut aig = padded_design(false);
        // A second holding property over the same counter.
        let bits: Vec<Lit> = (0..2).map(|l| aig.latch_lit(l)).collect();
        let hit = aig::builder::word_equals_const(&mut aig, &bits, 3);
        aig.add_bad(hit);
        let options = Options::default();
        let result = Engine::Pdr.verify_all(&aig, &options);
        assert!(result.statuses.iter().all(|s| s.is_proved()));
        let certs: Vec<&Arc<InvariantCert>> = result
            .statuses
            .iter()
            .filter_map(|s| match s {
                PropertyStatus::Proved { cert, .. } => cert.as_ref(),
                _ => None,
            })
            .collect();
        assert_eq!(certs.len(), 2);
        for cert in &certs {
            assert_eq!(cert.num_latches, aig.num_latches());
        }
        // The multi-PDR shared certificate stays shared after lifting.
        if Arc::ptr_eq(certs[0], certs[1]) {
            assert_eq!(certs[0].num_latches, aig.num_latches());
        }
        assert!(result.stats.latches_removed > 0);
    }

    #[test]
    fn preprocessing_off_produces_identical_kinds_and_depths() {
        for failing in [false, true] {
            let aig = padded_design(failing);
            let on = Options::default();
            let off = Options::default().with_preprocess(aig::passes::PassConfig::off());
            for engine in Engine::ALL {
                let a = engine.verify(&aig, 0, &on);
                let b = engine.verify(&aig, 0, &off);
                assert_eq!(
                    std::mem::discriminant(&a.verdict),
                    std::mem::discriminant(&b.verdict),
                    "{engine} kind (failing={failing})"
                );
                if let (Verdict::Falsified { depth: da }, Verdict::Falsified { depth: db }) =
                    (&a.verdict, &b.verdict)
                {
                    assert_eq!(da, db, "{engine} depth");
                }
                assert_eq!(b.stats.latches_removed, 0, "off-run reports no reduction");
            }
        }
    }

    #[test]
    fn cone_certificates_lift_into_original_latch_space() {
        let aig = padded_design(false);
        let options = Options::default();
        let result = Engine::ItpSeq.verify(&aig, 0, &options);
        assert!(result.verdict.is_proved());
        let Some(Certificate::Invariant(inv)) = &result.certificate else {
            panic!("expected an invariant certificate");
        };
        assert_eq!(inv.num_latches, aig.num_latches());
        if let Some(cone) = &inv.cone {
            let max_var = aig.num_latches() as u32 + cone.ands.len() as u32;
            let check = |lit: u32| assert!(lit >> 1 <= max_var, "cone literal in range");
            check(cone.root);
            for &(l, r) in &cone.ands {
                check(l);
                check(r);
            }
        }
        let init: Vec<bool> = (0..aig.num_latches()).map(|l| aig.init(l)).collect();
        assert!(inv.eval(&init));
    }
}
