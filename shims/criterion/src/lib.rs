//! Offline stand-in for the subset of the `criterion` 0.5 API used by the
//! workspace's bench targets: [`Criterion`], benchmark groups,
//! [`Bencher::iter`] and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! The build environment has no access to crates.io.  This shim keeps the
//! bench sources compiling unchanged and reports simple wall-clock medians
//! instead of criterion's full statistical analysis.  Sample sizes are
//! deliberately small — the model-checking benchmarks themselves run for
//! seconds each.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measures one benchmark body.
pub struct Bencher {
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Runs `body` repeatedly and records the median wall-clock time.
    ///
    /// The shim caps the executed iterations at 3 regardless of the
    /// configured sample size — the model-checking benchmarks run for
    /// milliseconds to seconds each, and the shim reports medians, not
    /// criterion's full statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let runs = self.samples.clamp(1, 3);
        let mut times = Vec::with_capacity(runs);
        for _ in 0..runs {
            let start = Instant::now();
            black_box(body());
            times.push(start.elapsed());
        }
        times.sort();
        self.samples = runs;
        self.median = Some(times[times.len() / 2]);
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 3 }
    }
}

impl Criterion {
    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Criterion {
        run_one(id.to_string(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark.
    ///
    /// Mirrors real criterion's contract (which rejects sizes below 10)
    /// so that swapping the shim for the real crate never changes what a
    /// bench source is allowed to say; the shim still executes at most 3
    /// iterations (see [`Bencher::iter`]).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Registers and immediately runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (printing nothing extra in the shim).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: String, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        median: None,
    };
    f(&mut bencher);
    match bencher.median {
        Some(median) => {
            let runs = bencher.samples;
            println!("bench: {id:<60} {median:>12.3?} (median of {runs})");
        }
        None => println!("bench: {id:<60} (no measurement)"),
    }
}

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_median() {
        let mut criterion = Criterion::default();
        let mut ran = 0;
        criterion.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn groups_cap_executed_iterations() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10);
        let mut runs = 0;
        group.bench_function("inc", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3, "the shim executes at most 3 iterations");
    }

    #[test]
    #[should_panic(expected = "at least 10")]
    fn sample_sizes_below_ten_are_rejected_like_real_criterion() {
        let mut criterion = Criterion::default();
        criterion.benchmark_group("g").sample_size(9);
    }
}
