//! One-hot token rings.

use aig::builder::at_most_one;
use aig::{Aig, Lit};

/// A ring of `stations` one-hot latches circulating a single token; the
/// property states that at most one station ever holds the token.
///
/// With `seeded_bug`, the token duplicates when an external input fires
/// while station 0 holds it, so the property fails.
pub fn ring(stations: usize, seeded_bug: bool) -> Aig {
    assert!(stations >= 2, "a ring needs at least two stations");
    let mut aig = Aig::new();
    aig.set_name(format!(
        "ring{stations}{}",
        if seeded_bug { "bug" } else { "ok" }
    ));
    let glitch = Lit::positive(aig.add_input());
    let latches: Vec<usize> = (0..stations).map(|i| aig.add_latch(i == 0)).collect();
    let lits: Vec<Lit> = latches.iter().map(|&l| aig.latch_lit(l)).collect();
    for i in 0..stations {
        let prev = lits[(i + stations - 1) % stations];
        let next = if seeded_bug && i == 1 {
            // Bug: station 1 also grabs the token when the glitch input
            // fires while station 0 keeps it (duplication).
            let dup = aig.and(lits[0], glitch);
            aig.or(prev, dup)
        } else if seeded_bug && i == 0 {
            // Station 0 keeps the token during the glitch.
            let keep = aig.and(lits[0], glitch);
            aig.or(prev, keep)
        } else {
            prev
        };
        aig.set_next(latches[i], next);
    }
    let safe = at_most_one(&mut aig, &lits);
    aig.add_bad(!safe);
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_ring_never_duplicates_the_token() {
        let aig = ring(5, false);
        let stim: Vec<Vec<bool>> = (0..20).map(|i| vec![i % 3 == 0]).collect();
        assert_eq!(aig::simulate(&aig, &stim).first_failure(), None);
    }

    #[test]
    fn buggy_ring_duplicates_under_glitch() {
        let aig = ring(4, true);
        let stim: Vec<Vec<bool>> = vec![vec![true]; 6];
        assert!(aig::simulate(&aig, &stim).first_failure().is_some());
    }

    #[test]
    fn buggy_ring_is_fine_without_glitches() {
        let aig = ring(4, true);
        let stim: Vec<Vec<bool>> = vec![vec![false]; 12];
        assert_eq!(aig::simulate(&aig, &stim).first_failure(), None);
    }

    #[test]
    fn exact_reachability_confirms_verdicts() {
        assert_eq!(
            bdd::reach::analyze(&ring(4, false), 0, 100_000).verdict,
            bdd::BddVerdict::Pass
        );
        assert!(matches!(
            bdd::reach::analyze(&ring(4, true), 0, 100_000).verdict,
            bdd::BddVerdict::Fail { .. }
        ));
    }
}
