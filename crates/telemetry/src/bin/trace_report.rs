//! `trace-report` — span-tree analytics over any recorded
//! `itpseq-trace/v1` JSONL file (a `table1 --trace` / `hwmcc --trace`
//! run, or anything else that speaks the schema).
//!
//! ```text
//! trace-report TRACE.jsonl [options]
//!   --json PATH             write the itpseq-report/v1 JSON document
//!   --folded PATH           write the inferno-compatible folded stacks
//!   --baseline FILE         gate against a checked-in baseline
//!   --tolerance F           extra relative tolerance on top of the
//!                           baseline's per-entry tolerances (default 0)
//!   --write-baseline PATH   extract a fresh baseline from this trace
//!   --quiet                 suppress the text table
//! ```
//!
//! Exits 0 on success, 1 when the baseline comparison fails, 2 on usage
//! or I/O errors.

use std::process::ExitCode;
use telemetry::folded::folded_from_jsonl;
use telemetry::report::{Baseline, TraceReport};

fn usage() -> ! {
    eprintln!(
        "usage: trace-report TRACE.jsonl [--json PATH] [--folded PATH] \
         [--baseline FILE] [--tolerance F] [--write-baseline PATH] [--quiet]"
    );
    std::process::exit(2);
}

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("trace-report: {message}");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut trace_path: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut folded_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut tolerance = 0.0f64;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().unwrap_or_else(|| usage())),
            "--folded" => folded_path = Some(args.next().unwrap_or_else(|| usage())),
            "--baseline" => baseline_path = Some(args.next().unwrap_or_else(|| usage())),
            "--write-baseline" => write_baseline = Some(args.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other if trace_path.is_none() && !other.starts_with('-') => {
                trace_path = Some(other.to_string())
            }
            other => fail(format!("unexpected argument {other:?}")),
        }
    }
    let trace_path = trace_path.unwrap_or_else(|| usage());

    let text =
        std::fs::read_to_string(&trace_path).unwrap_or_else(|e| fail(format!("{trace_path}: {e}")));
    let report =
        TraceReport::from_jsonl(&text).unwrap_or_else(|e| fail(format!("{trace_path}: {e}")));

    let comparison = baseline_path.map(|path| {
        let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        let baseline = Baseline::parse(&doc).unwrap_or_else(|e| fail(format!("{path}: {e}")));
        report.compare(&baseline, tolerance, &path)
    });

    if !quiet {
        print!("{}", report.to_text());
    }
    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json(comparison.as_ref()))
            .unwrap_or_else(|e| fail(format!("{path}: {e}")));
    }
    if let Some(path) = &folded_path {
        let folded = folded_from_jsonl(&text).unwrap_or_else(|e| fail(e));
        std::fs::write(path, folded).unwrap_or_else(|e| fail(format!("{path}: {e}")));
    }
    if let Some(path) = &write_baseline {
        std::fs::write(path, Baseline::from_report(&report).to_json())
            .unwrap_or_else(|e| fail(format!("{path}: {e}")));
        eprintln!("trace-report: baseline written to {path}");
    }

    match comparison {
        Some(cmp) if !cmp.passed() => {
            eprintln!(
                "trace-report: baseline {} FAILED ({} checked, extra tolerance {:.3}):",
                cmp.file, cmp.checked, cmp.tolerance
            );
            for violation in &cmp.violations {
                eprintln!("  - {violation}");
            }
            ExitCode::from(1)
        }
        Some(cmp) => {
            eprintln!(
                "trace-report: baseline {} passed ({} entries checked)",
                cmp.file, cmp.checked
            );
            ExitCode::SUCCESS
        }
        None => ExitCode::SUCCESS,
    }
}
