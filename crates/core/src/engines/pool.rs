//! Deterministic fork–join helpers shared by the concurrent engines.
//!
//! Both the racing portfolio and PDR's parallel frame phases fan work out
//! to scoped worker threads.  The helper here enforces the property the
//! determinism guarantees rest on: work is split into *contiguous chunks
//! by index* and results are stitched back together *in item order*, so
//! the output of [`map_chunked`] is a pure function of the inputs — never
//! of thread scheduling or of the number of workers.

use std::num::NonZeroUsize;

/// Worker threads the current machine comfortably supports.
pub(crate) fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// Maps every item through `work` on at most `threads` scoped worker
/// threads, returning results in item order.
///
/// `seed` builds one mutable context per chunk on the calling thread
/// (e.g. a cloned SAT solver); `work` consumes it item by item.  Because
/// every context is seeded from the same caller state and chunks are
/// contiguous, the result vector is identical for every `threads` value —
/// parallelism changes wall-clock time, not answers.
pub(crate) fn map_chunked<T, C, R>(
    items: &[T],
    threads: usize,
    mut seed: impl FnMut() -> C,
    work: impl Fn(&mut C, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    C: Send,
    R: Send,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 {
        let mut context = seed();
        return items.iter().map(|item| work(&mut context, item)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
    let contexts: Vec<C> = (0..chunks.len()).map(|_| seed()).collect();
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .zip(contexts)
            .map(|(chunk, mut context)| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|item| work(&mut context, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("worker threads do not panic"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<usize> = (0..23).collect();
        let doubled = map_chunked(&items, 4, || (), |_, &i| i * 2);
        assert_eq!(doubled, (0..23).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn results_are_invariant_in_the_thread_count() {
        let items: Vec<u64> = (0..57).collect();
        let reference = map_chunked(&items, 1, || 3u64, |offset, &i| i + *offset);
        for threads in [2, 3, 5, 8, 64] {
            let parallel = map_chunked(&items, threads, || 3u64, |offset, &i| i + *offset);
            assert_eq!(parallel, reference, "threads = {threads}");
        }
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_chunked(&empty, 8, || (), |_, &i| i).is_empty());
        assert_eq!(map_chunked(&[7u8], 8, || (), |_, &i| i + 1), vec![8]);
    }

    #[test]
    fn contexts_are_per_chunk() {
        // Each chunk's context counts its own items; totals must cover all.
        let items: Vec<usize> = (0..10).collect();
        let counted = map_chunked(
            &items,
            3,
            || 0usize,
            |seen, &i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(counted.len(), 10);
        let total: usize = counted
            .iter()
            .map(|&(_, seen)| usize::from(seen == 1))
            .sum();
        assert!(total >= 3, "at least one fresh context per chunk");
    }
}
