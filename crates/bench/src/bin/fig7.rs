//! Regenerates Fig. 7: scatter plot of ITPSEQ run times with exact-k
//! checks (x axis) versus exact-assume-k checks (y axis).
//!
//! Run with `cargo run -p itpseq-bench --bin fig7 --release`.

use cnf::BmcCheck;
use itpseq_bench::{experiment_options, run_engine};
use mc::Engine;

fn main() {
    let suite = workloads::suite::full();
    let base = experiment_options();

    println!("# Fig. 7 — ITPSEQ run time (ms): exact-k vs assume-k per instance");
    println!("{:<34} {:>10} {:>10}", "name", "exact", "assume");
    let mut assume_wins = 0usize;
    let mut total = 0usize;
    for benchmark in &suite {
        let exact = run_engine(
            benchmark,
            Engine::ItpSeq,
            &base.clone().with_check(BmcCheck::Exact),
        );
        let assume = run_engine(
            benchmark,
            Engine::ItpSeq,
            &base.clone().with_check(BmcCheck::ExactAssume),
        );
        let exact_ms = if exact.result.verdict.is_conclusive() {
            exact.millis()
        } else {
            base.timeout.as_secs_f64() * 1e3
        };
        let assume_ms = if assume.result.verdict.is_conclusive() {
            assume.millis()
        } else {
            base.timeout.as_secs_f64() * 1e3
        };
        if assume_ms <= exact_ms {
            assume_wins += 1;
        }
        total += 1;
        println!(
            "{:<34} {:>10.1} {:>10.1}",
            benchmark.name, exact_ms, assume_ms
        );
    }
    println!("# assume-k at least as fast on {assume_wins}/{total} instances");
}
