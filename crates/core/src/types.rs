//! Common result and configuration types for the verification engines.

use crate::certificate::{Certificate, InvariantCert};
use crate::engines::CancelToken;
use cnf::BmcCheck;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use telemetry::{ArgValue, Telemetry};

/// Why an engine stopped without an answer — the machine-readable
/// vocabulary behind every [`Verdict::Inconclusive`].
///
/// The enum replaces the earlier ad-hoc reason strings; its
/// [`Display`](fmt::Display) form reproduces them exactly (`"timeout"`,
/// `"cancelled"`, `"bound exhausted"`, …), and `reason == "timeout"`
/// comparisons against string literals still work through the
/// [`PartialEq<str>`] impl, so downstream consumers (reports, JSON,
/// tests) see the same surface as before.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock budget ([`Options::timeout`]) ran out.
    Timeout,
    /// The run's [`CancelToken`] was cancelled.
    Cancelled,
    /// The memory budget ([`Options::memory_limit`]) was exhausted.
    MemLimit,
    /// The bound budget ([`Options::max_bound`]) was exhausted.
    BoundExhausted,
    /// A multi-property backend retired the property because a
    /// concurrent backend decided it first.
    Retired,
    /// A panic was contained at an engine boundary; the payload is the
    /// panic message.
    Panic(String),
    /// Any other engine-specific reason.
    Other(String),
}

impl StopReason {
    /// Wraps an arbitrary reason string.
    pub fn other(reason: impl Into<String>) -> StopReason {
        StopReason::Other(reason.into())
    }

    /// Wraps a contained panic's message.
    pub fn panic(message: impl Into<String>) -> StopReason {
        StopReason::Panic(message.into())
    }

    /// `true` for the reasons a budget artifact may legitimately produce
    /// (the run was stopped from outside, not by the engine's own
    /// limits).
    pub fn is_budget_stop(&self) -> bool {
        matches!(
            self,
            StopReason::Timeout | StopReason::Cancelled | StopReason::MemLimit
        )
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Timeout => f.write_str("timeout"),
            StopReason::Cancelled => f.write_str("cancelled"),
            StopReason::MemLimit => f.write_str("memlimit"),
            StopReason::BoundExhausted => f.write_str("bound exhausted"),
            StopReason::Retired => f.write_str("retired"),
            StopReason::Panic(msg) => write!(f, "panic:{msg}"),
            StopReason::Other(reason) => f.write_str(reason),
        }
    }
}

/// Compares against the rendered reason string (`reason == "timeout"`).
impl PartialEq<str> for StopReason {
    fn eq(&self, other: &str) -> bool {
        match self {
            StopReason::Timeout => other == "timeout",
            StopReason::Cancelled => other == "cancelled",
            StopReason::MemLimit => other == "memlimit",
            StopReason::BoundExhausted => other == "bound exhausted",
            StopReason::Retired => other == "retired",
            StopReason::Panic(msg) => other.strip_prefix("panic:").is_some_and(|rest| rest == msg),
            StopReason::Other(reason) => other == reason,
        }
    }
}

impl PartialEq<&str> for StopReason {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

/// Outcome of a verification run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds for every reachable state.
    Proved {
        /// The BMC bound at which the fixed point was found (`k_fp`).
        k_fp: usize,
        /// The forward depth (inner iteration / cut index) at the fixed
        /// point (`j_fp`).
        j_fp: usize,
    },
    /// The property is violated by a concrete trace.
    Falsified {
        /// Length of the counterexample (number of transitions).
        depth: usize,
    },
    /// The engine gave up (bound, time or memory budget exhausted, or a
    /// contained fault).
    Inconclusive {
        /// Why the engine stopped.
        reason: StopReason,
        /// Bound reached when the engine stopped (the paper's bracketed
        /// `(k_fp)` values on overflow rows).
        bound_reached: usize,
    },
}

impl Verdict {
    /// Returns `true` for [`Verdict::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved { .. })
    }

    /// Returns `true` for [`Verdict::Falsified`].
    pub fn is_falsified(&self) -> bool {
        matches!(self, Verdict::Falsified { .. })
    }

    /// Returns `true` when the run produced a definite answer.
    pub fn is_conclusive(&self) -> bool {
        !matches!(self, Verdict::Inconclusive { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Proved { k_fp, j_fp } => write!(f, "proved (k_fp={k_fp}, j_fp={j_fp})"),
            Verdict::Falsified { depth } => write!(f, "falsified at depth {depth}"),
            Verdict::Inconclusive {
                reason,
                bound_reached,
            } => write!(f, "inconclusive after bound {bound_reached}: {reason}"),
        }
    }
}

/// Measured statistics of a verification run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Wall-clock time spent.
    pub time: Duration,
    /// Number of SAT queries issued.
    pub sat_calls: u64,
    /// Total conflicts across all SAT queries.
    pub conflicts: u64,
    /// Total branching decisions across all SAT queries.
    pub decisions: u64,
    /// Total literals propagated across all SAT queries.
    pub propagations: u64,
    /// Total solver restarts across all SAT queries.
    pub restarts: u64,
    /// Total clauses handed to SAT solvers (encoding volume).  With the
    /// incremental unrolling cache this grows linearly in the bound for
    /// BMC, where the scratch path grew quadratically.
    pub clauses_encoded: u64,
    /// Time spent building or extending CNF encodings (Tseitin encoding,
    /// frame extension and instance snapshots), as opposed to solving.
    pub encode_time: Duration,
    /// Learned clauses the SAT cores deleted — by the periodic LBD-driven
    /// database reduction and by the root-satisfied sweeps that follow
    /// incremental clause retirement.
    pub learned_deleted: u64,
    /// Literals removed from learned clauses by the SAT cores' recursive
    /// minimization before backjumping.
    pub minimized_literals: u64,
    /// Learned-clause database reduction passes across all SAT queries.
    pub db_reductions: u64,
    /// Number of interpolants extracted.
    pub interpolants: u64,
    /// Number of abstraction refinements (CBA engine only).
    pub refinements: u64,
    /// Number of latches visible in the final abstraction (CBA engine only;
    /// equals the total latch count for the other engines).
    pub visible_latches: usize,
    /// Name of the entrant whose verdict a portfolio run adopted
    /// ([`Engine::Portfolio`] only; `None` for direct engine runs).
    pub winner: Option<&'static str>,
    /// Time spent in the preprocessing pass pipeline before the solver
    /// saw the design (zero when preprocessing is off).
    pub preprocess_time: Duration,
    /// AND gates the preprocessing pipeline removed from the design.
    pub ands_removed: u64,
    /// Latches the preprocessing pipeline removed (stuck-at sweeps plus
    /// cone-of-influence reduction).
    pub latches_removed: u64,
    /// Primary inputs the preprocessing pipeline removed.
    pub inputs_removed: u64,
    /// Invariant-certificate clauses dropped by the subsumption
    /// compression pass before emission
    /// ([`InvariantCert::compress`](crate::InvariantCert::compress)).
    pub cert_clauses_subsumed: u64,
    /// Panics contained at engine dispatch boundaries (each one turned
    /// into a [`Verdict::Inconclusive`] with a `panic:<msg>` reason).
    pub panics_contained: u64,
    /// Times the shared memory budget ([`Options::memory_limit`])
    /// stopped a SAT call.
    pub memlimit_hits: u64,
    /// Faults fired by an injection plan ([`Options::faults`]) during
    /// this run (0 in production).
    pub faults_injected: u64,
    /// Parallel-worker slices re-run sequentially after a contained
    /// worker fault (the degraded-but-deterministic fallback).
    pub pool_seq_reruns: u64,
}

impl EngineStats {
    /// Folds a SAT-solver statistics delta (`after - before` snapshots of
    /// one query, or the whole stats of a throwaway solver) into the
    /// engine-level counters.
    pub fn add_solver_delta(&mut self, delta: sat::SolverStats) {
        self.conflicts += delta.conflicts;
        self.decisions += delta.decisions;
        self.propagations += delta.propagations;
        self.restarts += delta.restarts;
        self.learned_deleted += delta.learned_deleted;
        self.minimized_literals += delta.minimized_literals;
        self.db_reductions += delta.db_reductions;
    }

    /// Folds another run's counters into this one (multi-property runs
    /// aggregate the statistics of every backend and property group).
    /// Work counters add up; `time` is *not* touched — it stays the
    /// caller's wall clock, which concurrent backends overlap.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.sat_calls += other.sat_calls;
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.clauses_encoded += other.clauses_encoded;
        self.encode_time += other.encode_time;
        self.learned_deleted += other.learned_deleted;
        self.minimized_literals += other.minimized_literals;
        self.db_reductions += other.db_reductions;
        self.interpolants += other.interpolants;
        self.refinements += other.refinements;
        self.visible_latches = self.visible_latches.max(other.visible_latches);
        self.preprocess_time += other.preprocess_time;
        self.ands_removed += other.ands_removed;
        self.latches_removed += other.latches_removed;
        self.inputs_removed += other.inputs_removed;
        self.cert_clauses_subsumed += other.cert_clauses_subsumed;
        self.panics_contained += other.panics_contained;
        self.memlimit_hits += other.memlimit_hits;
        self.faults_injected += other.faults_injected;
        self.pool_seq_reruns += other.pool_seq_reruns;
    }
}

/// One line summarizing the run: wall/encode time, query volume and the
/// engine-specific counters that are actually in play (interpolation and
/// refinement counts only when nonzero, the portfolio winner only when
/// tagged).
impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} ms ({:.1} ms encoding), {} SAT calls, {} conflicts, \
             {} decisions, {} propagations, {} restarts",
            self.time.as_secs_f64() * 1e3,
            self.encode_time.as_secs_f64() * 1e3,
            self.sat_calls,
            self.conflicts,
            self.decisions,
            self.propagations,
            self.restarts
        )?;
        if self.ands_removed > 0 || self.latches_removed > 0 || self.inputs_removed > 0 {
            write!(
                f,
                ", preprocessed -{} ands -{} latches -{} inputs in {:.1} ms",
                self.ands_removed,
                self.latches_removed,
                self.inputs_removed,
                self.preprocess_time.as_secs_f64() * 1e3
            )?;
        }
        if self.cert_clauses_subsumed > 0 {
            write!(
                f,
                ", {} certificate clauses subsumed",
                self.cert_clauses_subsumed
            )?;
        }
        if self.interpolants > 0 {
            write!(f, ", {} interpolants", self.interpolants)?;
        }
        if self.refinements > 0 {
            write!(f, ", {} refinements", self.refinements)?;
        }
        if self.panics_contained > 0 {
            write!(f, ", {} panics contained", self.panics_contained)?;
        }
        if self.memlimit_hits > 0 {
            write!(f, ", {} memory-limit hits", self.memlimit_hits)?;
        }
        if self.faults_injected > 0 {
            write!(f, ", {} faults injected", self.faults_injected)?;
        }
        if self.pool_seq_reruns > 0 {
            write!(f, ", {} worker slices re-run", self.pool_seq_reruns)?;
        }
        if let Some(winner) = self.winner {
            write!(f, ", won by {winner}")?;
        }
        Ok(())
    }
}

/// The verdict plus the statistics of one engine run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineResult {
    /// The verification outcome.
    pub verdict: Verdict,
    /// Aggregate run statistics.
    pub stats: EngineStats,
    /// Evidence backing a conclusive verdict (an inductive invariant for
    /// `Proved`, a replayable input trace for `Falsified`), when
    /// [`Options::certificates`] is on and the engine produced any.
    pub certificate: Option<Certificate>,
}

/// Per-property outcome of a multi-property run ([`crate::multi`]).
///
/// The variants mirror [`Verdict`]; `Falsified` additionally carries the
/// counterexample's input trace when the deciding backend produced one
/// (multi-BMC reads it off the satisfying assignment; multi-PDR reports
/// the depth only).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PropertyStatus {
    /// The property holds for every reachable state.
    Proved {
        /// Level at which the deciding engine converged.
        k_fp: usize,
        /// Frame/cut index of the fixed point.
        j_fp: usize,
        /// The inductive invariant witnessing the proof, when the
        /// deciding backend emitted one.  Shared: a multi-PDR run's
        /// converged frame certifies every surviving property at once.
        cert: Option<Arc<InvariantCert>>,
    },
    /// The property is violated.
    Falsified {
        /// Length of the counterexample (number of transitions).
        depth: usize,
        /// The violating input sequence, one vector of primary-input
        /// values per cycle (`depth + 1` cycles), when available.
        /// Replaying it through [`aig::simulate()`] exhibits the bad state
        /// at cycle `depth`.
        cex: Option<Vec<Vec<bool>>>,
    },
    /// The run stopped without an answer for this property.
    Inconclusive {
        /// Why the engine stopped.
        reason: StopReason,
        /// Bound reached when the engine stopped.
        bound_reached: usize,
    },
}

impl PropertyStatus {
    /// Builds a status from a single-property [`Verdict`] (no evidence).
    pub fn from_verdict(verdict: Verdict) -> PropertyStatus {
        match verdict {
            Verdict::Proved { k_fp, j_fp } => PropertyStatus::Proved {
                k_fp,
                j_fp,
                cert: None,
            },
            Verdict::Falsified { depth } => PropertyStatus::Falsified { depth, cex: None },
            Verdict::Inconclusive {
                reason,
                bound_reached,
            } => PropertyStatus::Inconclusive {
                reason,
                bound_reached,
            },
        }
    }

    /// Builds a status from a full [`EngineResult`], preserving the
    /// certificate (invariant → [`PropertyStatus::Proved`]'s `cert`,
    /// trace → [`PropertyStatus::Falsified`]'s `cex`).
    pub fn from_result(result: &EngineResult) -> PropertyStatus {
        match (&result.verdict, &result.certificate) {
            (Verdict::Proved { k_fp, j_fp }, Some(Certificate::Invariant(inv))) => {
                PropertyStatus::Proved {
                    k_fp: *k_fp,
                    j_fp: *j_fp,
                    cert: Some(Arc::new(inv.clone())),
                }
            }
            (Verdict::Falsified { depth }, Some(Certificate::Trace(inputs))) => {
                PropertyStatus::Falsified {
                    depth: *depth,
                    cex: Some(inputs.clone()),
                }
            }
            _ => PropertyStatus::from_verdict(result.verdict.clone()),
        }
    }

    /// The status as a plain [`Verdict`] (dropping any counterexample).
    pub fn verdict(&self) -> Verdict {
        match self {
            PropertyStatus::Proved { k_fp, j_fp, .. } => Verdict::Proved {
                k_fp: *k_fp,
                j_fp: *j_fp,
            },
            PropertyStatus::Falsified { depth, .. } => Verdict::Falsified { depth: *depth },
            PropertyStatus::Inconclusive {
                reason,
                bound_reached,
            } => Verdict::Inconclusive {
                reason: reason.clone(),
                bound_reached: *bound_reached,
            },
        }
    }

    /// Returns `true` for [`PropertyStatus::Proved`].
    pub fn is_proved(&self) -> bool {
        matches!(self, PropertyStatus::Proved { .. })
    }

    /// Returns `true` for [`PropertyStatus::Falsified`].
    pub fn is_falsified(&self) -> bool {
        matches!(self, PropertyStatus::Falsified { .. })
    }

    /// Returns `true` when the property got a definite answer.
    pub fn is_conclusive(&self) -> bool {
        !matches!(self, PropertyStatus::Inconclusive { .. })
    }

    /// The counterexample depth of a falsified property.
    pub fn depth(&self) -> Option<usize> {
        match self {
            PropertyStatus::Falsified { depth, .. } => Some(*depth),
            _ => None,
        }
    }

    /// The comparison key of the multi-property determinism contract:
    /// verdict *kind* plus the counterexample depth.  Proof bookkeeping
    /// (`k_fp`/`j_fp`), inconclusive reasons and counterexample traces may
    /// legitimately vary between backends, schedules and thread counts;
    /// this key never does.
    pub fn kind_and_depth(&self) -> (&'static str, Option<usize>) {
        match self {
            PropertyStatus::Proved { .. } => ("proved", None),
            PropertyStatus::Falsified { depth, .. } => ("falsified", Some(*depth)),
            PropertyStatus::Inconclusive { .. } => ("inconclusive", None),
        }
    }

    /// Returns `true` when the status agrees with a single-property
    /// verdict under the determinism contract (same kind; equal depths
    /// when falsified).
    pub fn agrees_with(&self, verdict: &Verdict) -> bool {
        match (self, verdict) {
            (PropertyStatus::Proved { .. }, Verdict::Proved { .. }) => true,
            (PropertyStatus::Falsified { depth, .. }, Verdict::Falsified { depth: expected }) => {
                depth == expected
            }
            (PropertyStatus::Inconclusive { .. }, Verdict::Inconclusive { .. }) => true,
            _ => false,
        }
    }
}

impl fmt::Display for PropertyStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyStatus::Falsified {
                depth,
                cex: Some(_),
            } => write!(f, "falsified at depth {depth} (with trace)"),
            other => other.verdict().fmt(f),
        }
    }
}

/// Outcome of a multi-property run: one [`PropertyStatus`] per bad-state
/// property (indexed like the design's bad literals) plus the aggregated
/// statistics of every backend that contributed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiResult {
    /// Per-property outcomes.
    pub statuses: Vec<PropertyStatus>,
    /// Aggregate statistics across all backends and property groups.
    pub stats: EngineStats,
}

impl MultiResult {
    /// Number of properties that received a definite answer.
    pub fn num_conclusive(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_conclusive()).count()
    }

    /// Returns `true` when every property received a definite answer.
    pub fn all_conclusive(&self) -> bool {
        self.statuses.iter().all(|s| s.is_conclusive())
    }
}

/// Configuration shared by all engines.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Maximum BMC bound explored before giving up.
    pub max_bound: usize,
    /// Wall-clock budget; engines stop with [`Verdict::Inconclusive`] when
    /// it is exhausted.
    pub timeout: Duration,
    /// BMC formulation used by the sequence-based engines (the paper
    /// advocates [`BmcCheck::ExactAssume`]).
    pub check: BmcCheck,
    /// Serial fraction `αs` of [`crate::engines::sitpseq`] (0 = fully
    /// parallel, 1 = fully serial).  The paper uses 0.5.
    pub alpha_serial: f64,
    /// Whether the SAT cores periodically retire high-LBD learned clauses
    /// (`true`, the default).  The switch exists for A/B validation: the
    /// reduction-regression tests re-run the suite with it off and assert
    /// bit-identical verdicts and counterexample depths.
    pub reduce_db: bool,
    /// Whether the engines collect proof certificates — inductive
    /// invariants for `Proved` verdicts, replayable counterexample input
    /// traces for `Falsified` ones (`true`, the default).  The switch
    /// exists for A/B validation: certification must never change a
    /// verdict, only attach evidence to it, and the regression tests
    /// re-run the suite with it off and compare.
    pub certificates: bool,
    /// Whether PDR re-enqueues a blocked proof obligation one frame
    /// forward (`false`, the default).
    ///
    /// Pushing obligations forward strengthens later frames eagerly and
    /// can speed up convergence, but a forwarded obligation chain that
    /// reaches frame 0 witnesses a real — yet possibly non-minimal —
    /// counterexample, so the option trades the engine's minimal-depth
    /// guarantee for speed.  Verdict *kinds* are unaffected either way
    /// (see `tests/multi_property.rs` and the PDR A/B regression).
    pub push_obligations: bool,
    /// Worker threads for the concurrent modes.
    ///
    /// `1` (the default) keeps every engine's internals strictly
    /// sequential — the deterministic reference.  Values above `1` let
    /// [`Engine::Pdr`] farm its per-frame propagation queries and
    /// generalization candidates out to that many workers, and give
    /// [`Engine::Portfolio`] its total worker budget (the race always
    /// uses one thread per entrant; the surplus parallelizes the PDR
    /// entrant).  `0` means "ask the machine"
    /// (`std::thread::available_parallelism`).
    pub threads: usize,
    /// Tracing handle the run emits spans, markers and progress samples
    /// through (see the `telemetry` crate).  Disabled by default
    /// ([`Telemetry::off`]), which reduces every instrumentation site to
    /// a single branch.  Tracing never changes verdicts: the determinism
    /// and A/B regression suites run with a recording sink attached.
    pub telemetry: Telemetry,
    /// Preprocessing pass pipeline configuration (every pass on by
    /// default; see [`aig::passes`]).  The engines then run on the
    /// reduced model and every counterexample trace and inductive-
    /// invariant certificate is mapped back to original-design
    /// coordinates before it leaves the run, so preprocessing never
    /// changes verdict kinds or counterexample depths — the A/B
    /// regression suite re-runs with it off and compares.
    pub preprocess: aig::passes::PassConfig,
    /// Conflicts between two telemetry progress-counter samples inside
    /// the SAT cores (see [`sat::ProgressProbe`]).  Only read when
    /// [`Options::telemetry`] is enabled; defaults to
    /// [`sat::DEFAULT_PROBE_INTERVAL`].
    pub probe_interval: u64,
    /// Shared memory budget, or `None` (the default) for unbounded runs.
    ///
    /// The budget governs the *aggregate* estimated footprint of every
    /// SAT solver of the run — clones of the `Options` share the
    /// accounting, so a portfolio's concurrent entrants and multi-PDR's
    /// frame solvers all draw from one pool.  Solvers check it at the
    /// same cadence as the interrupt flag and stop with a `memlimit`
    /// [`StopReason`], which engines surface exactly like a timeout.
    /// Build with [`Options::with_memory_limit`].
    pub memory_limit: Option<sat::MemoryBudget>,
    /// Deterministic fault-injection plan (unarmed by default; see
    /// [`sat::FaultPlan`]).  Chaos testing only: injected faults may flip
    /// a verdict to [`Verdict::Inconclusive`], never fabricate or change
    /// a conclusive answer, and never abort the process.
    pub faults: sat::FaultPlan,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_bound: 60,
            timeout: Duration::from_secs(30),
            check: BmcCheck::ExactAssume,
            alpha_serial: 0.5,
            reduce_db: true,
            certificates: true,
            push_obligations: false,
            threads: 1,
            telemetry: Telemetry::off(),
            preprocess: aig::passes::PassConfig::default(),
            probe_interval: sat::DEFAULT_PROBE_INTERVAL,
            memory_limit: None,
            faults: sat::FaultPlan::none(),
        }
    }
}

impl Options {
    /// Returns a copy with the given time budget.
    pub fn with_timeout(mut self, timeout: Duration) -> Options {
        self.timeout = timeout;
        self
    }

    /// Returns a copy with the given maximum bound.
    pub fn with_max_bound(mut self, max_bound: usize) -> Options {
        self.max_bound = max_bound;
        self
    }

    /// Returns a copy with the given BMC check formulation.
    pub fn with_check(mut self, check: BmcCheck) -> Options {
        self.check = check;
        self
    }

    /// Returns a copy with the given serial fraction `αs`.
    pub fn with_alpha(mut self, alpha: f64) -> Options {
        self.alpha_serial = alpha;
        self
    }

    /// Returns a copy with learned-clause database reduction switched on
    /// or off (see [`Options::reduce_db`]).
    pub fn with_reduce_db(mut self, reduce_db: bool) -> Options {
        self.reduce_db = reduce_db;
        self
    }

    /// The [`sat::Solver::set_reduce_interval`] argument implementing
    /// [`Options::reduce_db`]: `None` (reduction disabled) when the A/B
    /// switch is off, the solver default otherwise.
    pub(crate) fn reduce_interval(&self) -> Option<u64> {
        if self.reduce_db {
            Some(sat::DEFAULT_REDUCE_FIRST)
        } else {
            None
        }
    }

    /// Returns a copy with certificate collection switched on or off
    /// (see [`Options::certificates`]).
    pub fn with_certificates(mut self, certificates: bool) -> Options {
        self.certificates = certificates;
        self
    }

    /// Returns a copy with PDR's obligation push-forward switched on or
    /// off (see [`Options::push_obligations`]).
    pub fn with_push_obligations(mut self, push_obligations: bool) -> Options {
        self.push_obligations = push_obligations;
        self
    }

    /// Returns a copy with the given worker-thread count (see
    /// [`Options::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Options {
        self.threads = threads;
        self
    }

    /// Returns a copy emitting trace events through `telemetry` (see
    /// [`Options::telemetry`]).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Options {
        self.telemetry = telemetry;
        self
    }

    /// Returns a copy with the given preprocessing configuration (see
    /// [`Options::preprocess`]); pass [`aig::passes::PassConfig::off()`]
    /// to run engines on the raw design.
    pub fn with_preprocess(mut self, preprocess: aig::passes::PassConfig) -> Options {
        self.preprocess = preprocess;
        self
    }

    /// Returns a copy with the given telemetry counter-sample interval
    /// in conflicts (see [`Options::probe_interval`]).
    pub fn with_probe_interval(mut self, probe_interval: u64) -> Options {
        self.probe_interval = probe_interval;
        self
    }

    /// Returns a copy with a fresh shared memory budget of `bytes` (see
    /// [`Options::memory_limit`]).  Clones of the returned options share
    /// the budget's accounting.
    pub fn with_memory_limit(mut self, bytes: u64) -> Options {
        self.memory_limit = Some(sat::MemoryBudget::new(bytes));
        self
    }

    /// Returns a copy with the given fault-injection plan (see
    /// [`Options::faults`]).
    pub fn with_faults(mut self, faults: sat::FaultPlan) -> Options {
        self.faults = faults;
        self
    }

    /// The worker-thread count with the `0 = auto` convention resolved.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            crate::engines::pool::default_threads()
        } else {
            self.threads
        }
    }
}

/// The verification engines evaluated in the paper, plus IC3/PDR.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Plain bounded model checking (falsification only).
    Bmc,
    /// Standard interpolation (Fig. 1).
    Itp,
    /// Parallel interpolation sequences (Fig. 2).
    ItpSeq,
    /// Serial interpolation sequences (Fig. 4).
    SerialItpSeq,
    /// Serial interpolation sequences with counterexample-based abstraction
    /// (Fig. 5).
    ItpSeqCba,
    /// Property-directed reachability (IC3/PDR) — the post-2011 competitor
    /// of the interpolation engines.
    Pdr,
    /// A racing portfolio: PDR, ITPSEQCBA and BMC run concurrently on
    /// worker threads, the first conclusive verdict wins and the losers
    /// are cancelled (the paper's own conclusion that no single engine
    /// dominates, turned into a mode).
    Portfolio,
}

impl Engine {
    /// All engines: the paper's five in presentation order, then PDR and
    /// the racing portfolio.
    pub const ALL: [Engine; 7] = [
        Engine::Bmc,
        Engine::Itp,
        Engine::ItpSeq,
        Engine::SerialItpSeq,
        Engine::ItpSeqCba,
        Engine::Pdr,
        Engine::Portfolio,
    ];

    /// The name used in reports and plots.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Bmc => "BMC",
            Engine::Itp => "ITP",
            Engine::ItpSeq => "ITPSEQ",
            Engine::SerialItpSeq => "SITPSEQ",
            Engine::ItpSeqCba => "ITPSEQCBA",
            Engine::Pdr => "PDR",
            Engine::Portfolio => "PORTFOLIO",
        }
    }

    /// Runs this engine on bad-state property `bad_index` of `aig`.
    pub fn verify(self, aig: &aig::Aig, bad_index: usize, options: &Options) -> EngineResult {
        self.verify_with_cancel(aig, bad_index, options, &CancelToken::new())
    }

    /// Runs this engine under a cancellation token: the run stops with
    /// [`Verdict::Inconclusive`] (reason `"cancelled"`) soon after
    /// [`CancelToken::cancel`] is called from any thread.
    ///
    /// This is the staged pipeline entry: the design is first reduced by
    /// the preprocessing passes ([`Options::preprocess`]), the engine
    /// runs on the reduced model, and the verdict, counterexample trace
    /// and certificate are reconstructed back to original-design
    /// coordinates (see [`crate::pipeline`]).
    pub fn verify_with_cancel(
        self,
        aig: &aig::Aig,
        bad_index: usize,
        options: &Options,
        cancel: &CancelToken,
    ) -> EngineResult {
        if !options.preprocess.enabled() {
            return self.dispatch(aig, bad_index, options, cancel);
        }
        let prepared = crate::pipeline::prepare_property(aig, bad_index, options);
        prepared.verify_with_cancel(self, 0, options, cancel)
    }

    /// Runs the engine directly on `aig`, with no preprocessing stage.
    /// Inner entry used by the staged pipeline (which already reduced
    /// the model) and the multi-property fallback loop.
    ///
    /// This is the panic-containment boundary: a panic anywhere inside
    /// the engine (including injected ones) is caught here and converted
    /// into [`Verdict::Inconclusive`] with a
    /// [`StopReason::Panic`] reason, so one faulted engine never takes
    /// down a portfolio race, a scheduler group or the process.
    pub(crate) fn dispatch(
        self,
        aig: &aig::Aig,
        bad_index: usize,
        options: &Options,
        cancel: &CancelToken,
    ) -> EngineResult {
        let faults_fired_before = options.faults.fired();
        let start = std::time::Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.dispatch_inner(aig, bad_index, options, cancel)
        }));
        let mut result = match outcome {
            Ok(result) => result,
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                options.telemetry.instant_args("fault", || {
                    vec![
                        ("engine", ArgValue::Str(self.name().to_string())),
                        ("panic", ArgValue::Str(msg.clone())),
                    ]
                });
                EngineResult {
                    verdict: Verdict::Inconclusive {
                        reason: StopReason::Panic(msg),
                        bound_reached: 0,
                    },
                    stats: EngineStats {
                        time: start.elapsed(),
                        panics_contained: 1,
                        ..EngineStats::default()
                    },
                    certificate: None,
                }
            }
        };
        if options.faults.fired() && !faults_fired_before {
            result.stats.faults_injected += 1;
        }
        if let Verdict::Inconclusive {
            reason: StopReason::MemLimit,
            ..
        } = &result.verdict
        {
            result.stats.memlimit_hits += 1;
            options.telemetry.instant_args("memlimit", || {
                vec![("engine", ArgValue::Str(self.name().to_string()))]
            });
        }
        result
    }

    fn dispatch_inner(
        self,
        aig: &aig::Aig,
        bad_index: usize,
        options: &Options,
        cancel: &CancelToken,
    ) -> EngineResult {
        match self {
            Engine::Bmc => crate::engines::bmc::verify_with_cancel(aig, bad_index, options, cancel),
            Engine::Itp => crate::engines::itp::verify_with_cancel(aig, bad_index, options, cancel),
            Engine::ItpSeq => {
                crate::engines::itpseq::verify_with_cancel(aig, bad_index, options, cancel)
            }
            Engine::SerialItpSeq => {
                crate::engines::sitpseq::verify_with_cancel(aig, bad_index, options, cancel)
            }
            Engine::ItpSeqCba => {
                crate::engines::itpseq_cba::verify_with_cancel(aig, bad_index, options, cancel)
            }
            Engine::Pdr => crate::engines::pdr::verify_with_cancel(aig, bad_index, options, cancel),
            Engine::Portfolio => {
                crate::engines::portfolio::verify_with_cancel(aig, bad_index, options, cancel)
            }
        }
    }

    /// Verifies *every* bad-state property of `aig` in one run and
    /// returns one [`PropertyStatus`] per property.
    ///
    /// For [`Engine::Bmc`], [`Engine::Pdr`] and [`Engine::Portfolio`] the
    /// run is genuinely amortized (see [`crate::multi`]): one unrolling /
    /// frame trace / scheduler serves all properties, with per-property
    /// retirement.  The remaining engines fall back to a per-property
    /// loop.  Verdict kinds and counterexample depths always match the
    /// per-property [`Engine::verify`] loop.
    pub fn verify_all(self, aig: &aig::Aig, options: &Options) -> crate::MultiResult {
        self.verify_all_with_cancel(aig, options, &CancelToken::new())
    }

    /// [`verify_all`](Self::verify_all) under a cancellation token.
    pub fn verify_all_with_cancel(
        self,
        aig: &aig::Aig,
        options: &Options,
        cancel: &CancelToken,
    ) -> crate::MultiResult {
        crate::multi::verify_all_with_engine(aig, self, options, cancel)
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Renders a caught panic payload as a message string (panics raise
/// `&str` or `String` payloads in practice; anything else gets a
/// placeholder).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Proved { k_fp: 3, j_fp: 2 }.is_proved());
        assert!(Verdict::Falsified { depth: 4 }.is_falsified());
        let inconclusive = Verdict::Inconclusive {
            reason: StopReason::Timeout,
            bound_reached: 7,
        };
        assert!(!inconclusive.is_conclusive());
        assert!(Verdict::Proved { k_fp: 1, j_fp: 1 }.is_conclusive());
    }

    #[test]
    fn verdict_display() {
        assert_eq!(
            Verdict::Proved { k_fp: 5, j_fp: 3 }.to_string(),
            "proved (k_fp=5, j_fp=3)"
        );
        assert_eq!(
            Verdict::Falsified { depth: 2 }.to_string(),
            "falsified at depth 2"
        );
        assert!(Verdict::Inconclusive {
            reason: StopReason::Timeout,
            bound_reached: 9
        }
        .to_string()
        .contains("bound 9"));
    }

    #[test]
    fn stop_reasons_render_and_compare_as_strings() {
        assert_eq!(StopReason::Timeout.to_string(), "timeout");
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
        assert_eq!(StopReason::MemLimit.to_string(), "memlimit");
        assert_eq!(StopReason::BoundExhausted.to_string(), "bound exhausted");
        assert_eq!(StopReason::Retired.to_string(), "retired");
        assert_eq!(StopReason::panic("boom").to_string(), "panic:boom");
        assert_eq!(StopReason::other("gave up").to_string(), "gave up");
        // String comparisons mirror Display exactly.
        assert_eq!(StopReason::Timeout, "timeout");
        assert_eq!(StopReason::panic("boom"), "panic:boom");
        assert!(StopReason::MemLimit != "timeout");
        assert!(StopReason::Timeout.is_budget_stop());
        assert!(StopReason::MemLimit.is_budget_stop());
        assert!(!StopReason::BoundExhausted.is_budget_stop());
        assert!(!StopReason::panic("x").is_budget_stop());
    }

    #[test]
    fn options_builders() {
        let o = Options::default()
            .with_max_bound(10)
            .with_timeout(Duration::from_millis(500))
            .with_check(BmcCheck::Exact)
            .with_alpha(0.25);
        assert_eq!(o.max_bound, 10);
        assert_eq!(o.timeout, Duration::from_millis(500));
        assert_eq!(o.check, BmcCheck::Exact);
        assert!((o.alpha_serial - 0.25).abs() < 1e-9);
    }

    #[test]
    fn engine_names_are_unique() {
        let names: Vec<&str> = Engine::ALL.iter().map(|e| e.name()).collect();
        let mut deduped = names.clone();
        deduped.dedup();
        assert_eq!(names.len(), deduped.len());
        assert_eq!(Engine::ItpSeqCba.to_string(), "ITPSEQCBA");
    }
}
