//! The verification engines evaluated in the paper, the IC3/PDR
//! competitor every modern checker ships, and the racing portfolio that
//! combines them.
//!
//! Every engine verifies one bad-state property per run
//! ([`Engine::verify`](crate::Engine::verify)); the multi-property
//! entry points that amortize one run across all properties of a design
//! live in [`crate::multi`].

pub mod bmc;
pub mod itp;
pub mod itpseq;
pub mod itpseq_cba;
pub mod pdr;
pub(crate) mod pool;
pub mod portfolio;
pub(crate) mod seq;
pub mod sitpseq;

use crate::types::StopReason;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use telemetry::{ArgValue, Telemetry};

/// The per-run progress publisher: periodic `"solver"` counter samples
/// *and* `"progress"` heartbeat instants on one telemetry track.
///
/// Every engine builds one of these per run and installs
/// [`probe`](Self::probe) on its long-lived solvers — that is how
/// restart/decision/propagation progress surfaces in a trace without a
/// single callback from the propagation inner loop.  The engine main loop
/// additionally publishes the bound/frame/level it is working on through
/// [`set_bound`](Self::set_bound); each heartbeat reads the cell at fire
/// time, so even solvers installed once and reused across bounds (PDR's
/// per-frame solvers, the incremental BMC solver) report the *current*
/// position, and a long run is observably alive mid-bound rather than
/// only post-hoc analyzable.
///
/// The sample cadence is `interval` conflicts
/// ([`Options::probe_interval`](crate::Options::probe_interval)); with
/// tracing disabled [`probe`](Self::probe) returns `None` and the solver
/// carries no probe at all — the hot path stays exactly as before.
pub(crate) struct EngineProbe {
    telemetry: Telemetry,
    interval: u64,
    bound: Arc<AtomicU64>,
}

impl EngineProbe {
    /// A publisher emitting on `telemetry`'s track every `interval`
    /// conflicts.
    pub fn new(telemetry: &Telemetry, interval: u64) -> EngineProbe {
        EngineProbe {
            telemetry: telemetry.clone(),
            interval,
            bound: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Publishes the bound/frame/level the engine is currently working
    /// on; the next heartbeat carries it.
    pub fn set_bound(&self, bound: usize) {
        self.bound.store(bound as u64, Ordering::Relaxed);
    }

    /// A [`sat::ProgressProbe`] for [`sat::Solver::set_progress_probe`],
    /// or `None` when tracing is disabled.
    pub fn probe(&self) -> Option<sat::ProgressProbe> {
        if !self.telemetry.is_enabled() {
            return None;
        }
        let telemetry = self.telemetry.clone();
        let bound = Arc::clone(&self.bound);
        Some(sat::ProgressProbe::new(self.interval, move |stats| {
            telemetry.counter("solver", || {
                vec![
                    ("conflicts", ArgValue::U64(stats.conflicts)),
                    ("decisions", ArgValue::U64(stats.decisions)),
                    ("propagations", ArgValue::U64(stats.propagations)),
                    ("restarts", ArgValue::U64(stats.restarts)),
                ]
            });
            telemetry.instant_args("progress", || {
                vec![
                    ("bound", ArgValue::U64(bound.load(Ordering::Relaxed))),
                    ("conflicts", ArgValue::U64(stats.conflicts)),
                ]
            });
        }))
    }
}

/// Cooperative cancellation token shared between an engine run and its
/// supervisor.
///
/// Every engine polls its token at the head of each major-loop iteration
/// and hands the underlying flag to its SAT solvers, so even a long
/// individual query stops within a bounded number of conflicts (see
/// [`sat::Solver::set_interrupt`]).  A cancelled run returns
/// [`Verdict::Inconclusive`](crate::Verdict::Inconclusive) with reason
/// `"cancelled"` — cancellation never fabricates a verdict.
///
/// Clones share the flag: [`Engine::Portfolio`](crate::Engine::Portfolio)
/// hands one token per entrant to its workers and cancels the losers as
/// soon as a conclusive verdict arrives.
///
/// ```
/// use mc::{CancelToken, Engine, Options, Verdict};
///
/// // A one-latch design whose property holds; a pre-cancelled run still
/// // refuses to answer.
/// let mut design = aig::Aig::new();
/// let latch = design.add_latch(false);
/// design.set_next(latch, aig::Lit::FALSE);
/// let bad = design.latch_lit(latch);
/// design.add_bad(bad);
///
/// let cancel = CancelToken::new();
/// cancel.cancel();
/// let result = Engine::Pdr.verify_with_cancel(&design, 0, &Options::default(), &cancel);
/// assert!(matches!(result.verdict, Verdict::Inconclusive { .. }));
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh (non-cancelled) token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag; every engine and solver holding this token (or a
    /// clone) stops at its next cancellation point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Returns `true` once [`cancel`](Self::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The shared flag in the form the SAT layer consumes
    /// ([`sat::Solver::set_interrupt`]).
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// The stop decision shared by the engine main loops: cancellation takes
/// precedence over the wall-clock budget, and the returned reason is the
/// `Verdict::Inconclusive` reason.
pub(crate) fn stop_reason(
    cancel: &CancelToken,
    start: std::time::Instant,
    timeout: std::time::Duration,
) -> Option<StopReason> {
    if cancel.is_cancelled() {
        Some(StopReason::Cancelled)
    } else if start.elapsed() > timeout {
        Some(StopReason::Timeout)
    } else {
        None
    }
}

/// How often the [`RunBudget`] watchdog re-examines the cancellation token
/// and the deadline.
const BUDGET_POLL: std::time::Duration = std::time::Duration::from_millis(5);

/// The per-run stop machinery of the bound-loop engines: a cancellation
/// token *and* a wall-clock deadline, both surfaced to the SAT layer
/// through one shared interrupt flag.
///
/// Checking `options.timeout` only between bounds lets a single long SAT
/// call overshoot the budget arbitrarily; a `RunBudget` instead arms a
/// watchdog thread that raises the interrupt flag as soon as either the
/// token is cancelled or the deadline passes, so every solve stops within
/// a bounded number of conflicts of the budget running out — exactly what
/// the portfolio's token already did for cancellation, extended to the
/// standalone timeout path.
///
/// The watchdog exits when the budget is dropped (the run finished) and
/// is joined there, so no thread outlives its engine run.
///
/// Beyond cancellation and the deadline, the budget carries the run's
/// resource-governance handles: the shared memory budget
/// ([`Options::memory_limit`](crate::Options::memory_limit)), whose hit
/// counter is snapshotted at arm time so a memory stop is attributable
/// even after the tripping solver was dropped, and the fault-injection
/// plan, whose `Phase` site ticks at every between-bounds stop check.
pub(crate) struct RunBudget {
    cancel: CancelToken,
    start: std::time::Instant,
    timeout: std::time::Duration,
    flag: Arc<AtomicBool>,
    memory: Option<sat::MemoryBudget>,
    /// Memory-budget hits at arm time; more hits than this means *this*
    /// run (or a concurrent sibling sharing the budget) stopped on memory.
    mem_hits_at_arm: u64,
    faults: sat::FaultPlan,
    stop: Option<std::sync::mpsc::Sender<()>>,
    watchdog: Option<std::thread::JoinHandle<()>>,
}

impl RunBudget {
    /// Arms a watchdog for a run that started at `start`, governed by
    /// `options` (wall-clock budget, memory budget, fault plan) and
    /// observing `cancel`.
    pub fn arm(
        cancel: &CancelToken,
        start: std::time::Instant,
        options: &crate::Options,
    ) -> RunBudget {
        let timeout = options.timeout;
        let flag = Arc::new(AtomicBool::new(cancel.is_cancelled()));
        let deadline = start.checked_add(timeout);
        let (stop, wake) = std::sync::mpsc::channel::<()>();
        let token = cancel.clone();
        let shared = Arc::clone(&flag);
        let watchdog = std::thread::spawn(move || loop {
            let now = std::time::Instant::now();
            if token.is_cancelled() || deadline.is_some_and(|d| now >= d) {
                shared.store(true, Ordering::Release);
                return;
            }
            let wait = deadline
                .map(|d| d.saturating_duration_since(now).min(BUDGET_POLL))
                .unwrap_or(BUDGET_POLL)
                .max(std::time::Duration::from_millis(1));
            match wake.recv_timeout(wait) {
                // The run finished (sender dropped or explicit stop).
                Ok(()) | Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
            }
        });
        RunBudget {
            cancel: cancel.clone(),
            start,
            timeout,
            flag,
            memory: options.memory_limit.clone(),
            mem_hits_at_arm: options
                .memory_limit
                .as_ref()
                .map_or(0, sat::MemoryBudget::hits),
            faults: options.faults.clone(),
            stop: Some(stop),
            watchdog: Some(watchdog),
        }
    }

    /// The shared interrupt flag, in the form the SAT layer consumes.
    pub fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }

    /// Installs the run's full governance on a solver: the interrupt
    /// flag, the shared memory budget and the fault-injection plan.
    pub fn govern(&self, solver: &mut sat::Solver) {
        solver.set_interrupt(Some(self.flag()));
        solver.set_memory_budget(self.memory.clone());
        solver.set_faults(self.faults.clone());
    }

    /// [`govern`](Self::govern) for an [`sat::IncrementalSolver`] (the
    /// settings additionally survive its recycling rebuilds).
    pub fn govern_incremental(&self, solver: &mut sat::IncrementalSolver) {
        solver.set_interrupt(Some(self.flag()));
        solver.set_memory_budget(self.memory.clone());
        solver.set_faults(self.faults.clone());
    }

    /// `true` when the shared memory budget recorded a hit since this
    /// budget was armed.
    fn memory_hit(&self) -> bool {
        self.memory
            .as_ref()
            .is_some_and(|m| m.hits() > self.mem_hits_at_arm)
    }

    /// The between-bounds stop decision (see [`stop_reason`]), extended
    /// with the memory budget — and the `Phase` fault-injection site: an
    /// injected phase fault panics here (to be contained at the dispatch
    /// boundary) or stops the run with a spurious-interrupt reason.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if let Some(kind) = self.faults.tick(sat::FaultSite::Phase) {
            match kind {
                sat::FaultKind::Panic => panic!("injected fault: panic at engine phase"),
                sat::FaultKind::AllocFail => {
                    panic!("injected fault: allocation failure at engine phase")
                }
                sat::FaultKind::Interrupt => {
                    // Stop the solvers too: the run is over.
                    self.flag.store(true, Ordering::Release);
                    return Some(StopReason::other("fault:interrupt"));
                }
            }
        }
        if self.memory_hit() && !self.cancel.is_cancelled() {
            return Some(StopReason::MemLimit);
        }
        stop_reason(&self.cancel, self.start, self.timeout)
    }

    /// The reason behind a [`sat::SolveResult::Interrupted`] answer:
    /// cancellation takes precedence, then a memory-budget hit, then an
    /// injected spurious interrupt; anything else was the deadline.
    pub fn interrupt_reason(&self) -> StopReason {
        if self.cancel.is_cancelled() {
            StopReason::Cancelled
        } else if self.memory_hit() {
            StopReason::MemLimit
        } else if self.faults.fired() && self.faults.kind() == Some(sat::FaultKind::Interrupt) {
            StopReason::other("fault:interrupt")
        } else {
            StopReason::Timeout
        }
    }
}

impl Drop for RunBudget {
    fn drop(&mut self) {
        drop(self.stop.take());
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_start_clear_and_latch_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        let clone = token.clone();
        token.cancel();
        assert!(token.is_cancelled());
        assert!(clone.is_cancelled(), "clones share the flag");
    }

    #[test]
    fn flag_view_matches_the_token() {
        let token = CancelToken::new();
        let flag = token.flag();
        token.cancel();
        assert!(flag.load(Ordering::Acquire));
    }

    #[test]
    fn run_budget_starts_raised_for_a_cancelled_token() {
        let token = CancelToken::new();
        token.cancel();
        let options = crate::Options::default().with_timeout(std::time::Duration::from_secs(600));
        let budget = RunBudget::arm(&token, std::time::Instant::now(), &options);
        assert!(budget.flag().load(Ordering::Acquire));
        assert_eq!(budget.interrupt_reason(), "cancelled");
        assert_eq!(budget.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn run_budget_raises_the_flag_at_the_deadline() {
        let options = crate::Options::default().with_timeout(std::time::Duration::from_millis(1));
        let budget = RunBudget::arm(&CancelToken::new(), std::time::Instant::now(), &options);
        let flag = budget.flag();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !flag.load(Ordering::Acquire) {
            assert!(
                std::time::Instant::now() < deadline,
                "watchdog must raise the flag promptly"
            );
            std::thread::yield_now();
        }
        assert_eq!(budget.interrupt_reason(), "timeout");
    }

    #[test]
    fn run_budget_watchdog_exits_on_drop() {
        // Arming and dropping immediately must not dead-lock the join.
        let options = crate::Options::default().with_timeout(std::time::Duration::from_secs(600));
        for _ in 0..8 {
            let budget = RunBudget::arm(&CancelToken::new(), std::time::Instant::now(), &options);
            drop(budget);
        }
    }

    #[test]
    fn run_budget_attributes_memory_hits() {
        let options = crate::Options::default()
            .with_timeout(std::time::Duration::from_secs(600))
            .with_memory_limit(1 << 20);
        let budget = RunBudget::arm(&CancelToken::new(), std::time::Instant::now(), &options);
        assert_eq!(budget.stop_reason(), None);
        // A hit on the shared budget — e.g. from a solver that has since
        // been dropped — re-attributes the stop to the memory limit.
        options
            .memory_limit
            .as_ref()
            .expect("limit set")
            .record_hit();
        assert_eq!(budget.interrupt_reason(), "memlimit");
        assert_eq!(budget.stop_reason(), Some(StopReason::MemLimit));
        // Cancellation still takes precedence.
        let token = CancelToken::new();
        let budget = RunBudget::arm(&token, std::time::Instant::now(), &options);
        token.cancel();
        assert_eq!(budget.interrupt_reason(), "cancelled");
    }

    #[test]
    fn run_budget_hits_before_arming_do_not_count() {
        let options = crate::Options::default()
            .with_timeout(std::time::Duration::from_secs(600))
            .with_memory_limit(1 << 20);
        options
            .memory_limit
            .as_ref()
            .expect("limit set")
            .record_hit();
        // The hit predates this run: a fresh budget must not blame memory.
        let budget = RunBudget::arm(&CancelToken::new(), std::time::Instant::now(), &options);
        assert_eq!(budget.stop_reason(), None);
        assert_eq!(budget.interrupt_reason(), "timeout");
    }

    #[test]
    fn run_budget_phase_fault_stops_the_run_once() {
        let options = crate::Options::default()
            .with_timeout(std::time::Duration::from_secs(600))
            .with_faults(sat::FaultPlan::inject(
                sat::FaultSite::Phase,
                sat::FaultKind::Interrupt,
                2,
            ));
        let budget = RunBudget::arm(&CancelToken::new(), std::time::Instant::now(), &options);
        assert_eq!(budget.stop_reason(), None, "first phase tick does not fire");
        let reason = budget.stop_reason().expect("second phase tick fires");
        assert_eq!(reason, "fault:interrupt");
        assert!(
            budget.flag().load(Ordering::Acquire),
            "the injected stop also interrupts the solvers"
        );
    }
}
