//! The property scheduler behind `Engine::Portfolio.verify_all`.
//!
//! Two observations shape the schedule:
//!
//! 1. Properties whose sequential cones of influence share no latches
//!    gain nothing from a shared frame trace or unrolling — their
//!    reachable-state facts are disjoint.  [`aig::coi::group_bads_by_coi`]
//!    partitions the properties into COI-overlap groups, and each group
//!    gets its own amortized engine instances over only its members'
//!    cones.
//! 2. Within a group, no single backend dominates (the portfolio
//!    argument): multi-BMC retires failing properties fastest, multi-PDR
//!    is the prover.  Each group therefore *races* the two on their own
//!    threads, connected by a retirement board: the moment one backend
//!    decides a property, the other sees the retirement at its next
//!    bound/level and stops spending work on it — per-property
//!    cancellation that never tears down the shared solver state the
//!    survivors depend on.
//!
//! Groups run concurrently, one pair of racing threads each, with at
//! most [`Options::effective_threads`] groups in flight at a time; the
//! outer [`CancelToken`] reaches every backend.  As with the single-property
//! portfolio, racing decides *when* backends stop, never *what* they
//! answer: status kinds and falsified depths are invariant (both
//! backends report structurally minimal depths), while proof bookkeeping
//! and counterexample traces depend on which backend wins the race.

use crate::engines::CancelToken;
use crate::multi::{bmc, RetireBoard};
use crate::{EngineStats, MultiResult, Options, PropertyStatus, StopReason};
use aig::Aig;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use telemetry::ArgValue;

/// A result standing in for a faulted (panicked) backend or group: every
/// property inconclusive with the contained panic as its reason.  The
/// healthy racing partner's statuses win the per-property adoption (a
/// panic carries `bound_reached` 0), so one faulted backend never costs
/// a group its conclusive answers.
fn faulted_result(n: usize, payload: &(dyn std::any::Any + Send)) -> MultiResult {
    let reason = StopReason::Panic(crate::types::panic_message(payload));
    MultiResult {
        statuses: (0..n)
            .map(|_| PropertyStatus::Inconclusive {
                reason: reason.clone(),
                bound_reached: 0,
            })
            .collect(),
        stats: EngineStats {
            panics_contained: 1,
            ..EngineStats::default()
        },
    }
}

/// Verifies every bad-state property of `aig`: COI grouping, then one
/// racing multi-PDR/multi-BMC pair per group.  `cois`, when given, are
/// the per-property sequential COIs of `aig` — the preprocessing
/// pipeline hands its COI-pass by-product over so the grouping does not
/// recompute them.
pub(crate) fn verify_all_with_cancel(
    aig: &Aig,
    options: &Options,
    cancel: &CancelToken,
    cois: Option<&[aig::coi::Coi]>,
) -> MultiResult {
    let start = Instant::now();
    let mut stats = EngineStats {
        visible_latches: aig.num_latches(),
        ..EngineStats::default()
    };
    let num_props = aig.num_bad();
    if num_props == 0 {
        stats.time = start.elapsed();
        return MultiResult {
            statuses: Vec::new(),
            stats,
        };
    }

    let telemetry = &options.telemetry;
    let _sched = telemetry.span_args("scheduler.run", || {
        vec![("props", ArgValue::U64(num_props as u64))]
    });
    let groups = match cois {
        Some(cois) => {
            debug_assert_eq!(cois.len(), num_props);
            aig::coi::group_bads_from_cois(cois)
        }
        None => aig::coi::group_bads_by_coi(aig),
    };
    debug_assert_eq!(groups.iter().map(Vec::len).sum::<usize>(), num_props);
    telemetry.instant_args("coi.groups", || {
        vec![
            ("groups", ArgValue::U64(groups.len() as u64)),
            (
                "largest",
                ArgValue::U64(groups.iter().map(Vec::len).max().unwrap_or(0) as u64),
            ),
        ]
    });

    // Each group races on its own pair of threads, and at most
    // `effective_threads` groups are in flight at once — a design with
    // hundreds of disjoint properties (hundreds of singleton groups)
    // must not fan out hundreds of solver instances simultaneously.
    // Chunking changes scheduling only, never statuses: kinds and depths
    // are deterministic per group.
    let concurrent_groups = options.effective_threads().max(1);
    let mut statuses: Vec<Option<PropertyStatus>> = vec![None; num_props];
    for batch in groups.chunks(concurrent_groups) {
        let batch_results: Vec<MultiResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = batch
                .iter()
                .map(|props| {
                    scope.spawn(move || {
                        // A panicking group must not tear down the whole
                        // schedule: contain it and report its properties
                        // inconclusive while the other groups finish.
                        catch_unwind(AssertUnwindSafe(|| race_group(aig, props, options, cancel)))
                            .unwrap_or_else(|payload| faulted_result(props.len(), payload.as_ref()))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("group panics are caught in the thread"))
                .collect()
        });
        for (props, result) in batch.iter().zip(batch_results) {
            stats.absorb(&result.stats);
            for (&slot, status) in props.iter().zip(result.statuses) {
                statuses[slot] = Some(status);
            }
        }
    }
    stats.time = start.elapsed();
    MultiResult {
        statuses: statuses
            .into_iter()
            .map(|slot| slot.expect("every property scheduled"))
            .collect(),
        stats,
    }
}

/// Races multi-PDR against multi-BMC on one COI group; statuses are
/// indexed like `props`.
fn race_group(aig: &Aig, props: &[usize], options: &Options, cancel: &CancelToken) -> MultiResult {
    let start = Instant::now();
    let board = RetireBoard::new(props.len());
    let telemetry = &options.telemetry;
    let group_id = props[0];
    telemetry.instant_args("group.dispatch", || {
        vec![
            ("group", ArgValue::U64(group_id as u64)),
            ("props", ArgValue::U64(props.len() as u64)),
        ]
    });
    // Each entrant runs its deterministic sequential internals (on its own
    // named telemetry track, so concurrent groups never interleave spans);
    // the scheduler's parallelism is groups × the two racing threads.
    let scoped = |backend: &str| {
        options
            .clone()
            .with_threads(1)
            .with_telemetry(telemetry.scoped(&format!("group{group_id}.{backend}")))
    };
    let pdr_options = scoped("PDR");
    let bmc_options = scoped("BMC");
    let (pdr, bmc) = std::thread::scope(|scope| {
        // Each entrant is its own containment domain: a panic in one is
        // caught at the thread boundary and the race goes on with the
        // survivor (its board publications up to the fault still stand).
        let pdr = scope.spawn(|| {
            catch_unwind(AssertUnwindSafe(|| {
                crate::engines::pdr::verify_all_with_cancel(
                    aig,
                    props,
                    &pdr_options,
                    cancel,
                    Some(&board),
                )
            }))
        });
        let bmc = scope.spawn(|| {
            catch_unwind(AssertUnwindSafe(|| {
                bmc::verify_all_with_cancel(aig, props, &bmc_options, cancel, Some(&board))
            }))
        });
        (
            pdr.join().expect("entrant panics are caught in the thread"),
            bmc.join().expect("entrant panics are caught in the thread"),
        )
    });
    let pdr = pdr.unwrap_or_else(|payload| faulted_result(props.len(), payload.as_ref()));
    let bmc = bmc.unwrap_or_else(|payload| faulted_result(props.len(), payload.as_ref()));

    let mut stats = EngineStats::default();
    stats.absorb(&pdr.stats);
    stats.absorb(&bmc.stats);
    let statuses = (0..props.len())
        .map(|i| {
            // The board holds whoever decided first; with nothing
            // published both entrants ran out of budget — adopt the one
            // that got further, PDR on ties (the portfolio's precedence).
            board.take(i).unwrap_or_else(|| {
                let bound = |status: &PropertyStatus| match status {
                    PropertyStatus::Inconclusive { bound_reached, .. } => *bound_reached,
                    _ => 0,
                };
                if bound(&bmc.statuses[i]) > bound(&pdr.statuses[i]) {
                    bmc.statuses[i].clone()
                } else {
                    pdr.statuses[i].clone()
                }
            })
        })
        .collect();
    stats.time = start.elapsed();
    MultiResult { statuses, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use std::time::Duration;

    fn options() -> Options {
        Options::default()
            .with_timeout(Duration::from_secs(20))
            .with_max_bound(40)
    }

    /// Two independent counters in one design: disjoint COIs, so the
    /// scheduler runs them as separate groups.
    fn two_counters() -> Aig {
        let mut aig = Aig::new();
        for (modulus, thresholds) in [(6u64, [2u64, 7]), (5, [6, 3])] {
            let (ids, bits) = aig::builder::latch_word(&mut aig, 3, 0);
            let wrap = aig::builder::word_equals_const(&mut aig, &bits, modulus - 1);
            let inc = aig::builder::word_increment(&mut aig, &bits, aig::Lit::TRUE);
            let zero = aig::builder::word_const(3, 0);
            let next = aig::builder::word_mux(&mut aig, wrap, &zero, &inc);
            for (id, n) in ids.iter().zip(next.iter()) {
                aig.set_next(*id, *n);
            }
            for threshold in thresholds {
                let bad = aig::builder::word_equals_const(&mut aig, &bits, threshold);
                aig.add_bad(bad);
            }
        }
        aig
    }

    #[test]
    fn disjoint_groups_are_scheduled_independently() {
        let aig = two_counters();
        assert_eq!(
            aig::coi::group_bads_by_coi(&aig),
            vec![vec![0, 1], vec![2, 3]]
        );
        let multi = Engine::Portfolio.verify_all(&aig, &options());
        assert_eq!(multi.statuses[0].depth(), Some(2));
        assert!(multi.statuses[1].is_proved(), "{}", multi.statuses[1]);
        assert!(multi.statuses[2].is_proved(), "{}", multi.statuses[2]);
        assert_eq!(multi.statuses[3].depth(), Some(3));
    }

    #[test]
    fn statuses_match_the_per_property_portfolio_loop() {
        let aig = workloads::counter::modular_multi(4, 10, &[3, 11, 7, 15]);
        let multi = Engine::Portfolio.verify_all(&aig, &options());
        for prop in 0..aig.num_bad() {
            let single = Engine::Portfolio.verify(&aig, prop, &options());
            assert!(
                multi.statuses[prop].agrees_with(&single.verdict),
                "property {prop}: {} vs {}",
                multi.statuses[prop],
                single.verdict
            );
        }
    }

    #[test]
    fn design_without_properties_yields_an_empty_result() {
        let mut aig = Aig::new();
        let l = aig.add_latch(false);
        aig.set_next(l, aig::Lit::FALSE);
        let multi = Engine::Portfolio.verify_all(&aig, &options());
        assert!(multi.statuses.is_empty());
        assert!(multi.all_conclusive(), "vacuously conclusive");
    }

    #[test]
    fn outer_cancellation_stops_every_group() {
        let aig = two_counters();
        let cancel = CancelToken::new();
        cancel.cancel();
        let multi = Engine::Portfolio.verify_all_with_cancel(&aig, &options(), &cancel);
        assert!(
            multi.statuses.iter().all(|s| !s.is_conclusive()),
            "{:?}",
            multi.statuses
        );
    }

    #[test]
    fn racing_is_deterministic_in_kind_and_depth() {
        let aig = workloads::arbiter::round_robin_multi(3, true);
        let reference: Vec<_> = Engine::Portfolio
            .verify_all(&aig, &options())
            .statuses
            .iter()
            .map(PropertyStatus::kind_and_depth)
            .map(|(kind, depth)| (kind.to_string(), depth))
            .collect();
        for _ in 0..3 {
            let again: Vec<_> = Engine::Portfolio
                .verify_all(&aig, &options())
                .statuses
                .iter()
                .map(PropertyStatus::kind_and_depth)
                .map(|(kind, depth)| (kind.to_string(), depth))
                .collect();
            assert_eq!(reference, again);
        }
    }
}
